"""EXP-F1 — Figure 1 of the paper: the worked calibrator example.

Figure 1a shows a 4-page dense file with d=2, D=3 and page occupancies
[3, 2, 1, 2]; Figure 1b annotates every calibrator node with its density
p(v).  This benchmark rebuilds the calibrator, regenerates the node
densities of Figure 1b, and checks BALANCE(d, 3).
"""

from bench_helpers import banner, emit, once

from repro import DensityParams
from repro.analysis import render_table
from repro.core.calibrator import CalibratorTree
from repro.core.invariants import balance_violations

OCCUPANCIES = [3, 2, 1, 2]
PARAMS = DensityParams(num_pages=4, d=2, D=3, j=1)

#: Figure 1b, read off the paper: densities at the root, its two
#: children, and the four leaves (node ranges in page numbers).
FIGURE_1B = {
    (1, 4): 2.0,
    (1, 2): 2.5,
    (3, 4): 1.5,
    (1, 1): 3.0,
    (2, 2): 2.0,
    (3, 3): 1.0,
    (4, 4): 2.0,
}


def build_calibrator() -> CalibratorTree:
    tree = CalibratorTree(4)
    for page, count in enumerate(OCCUPANCIES, start=1):
        tree.add(page, count)
    return tree


def test_figure_1_densities(benchmark):
    tree = once(benchmark, build_calibrator)
    rows = []
    measured = {}
    for node in tree.iter_nodes():
        lo, hi, depth, count = tree.describe(node)
        density = count / (hi - lo + 1)
        measured[(lo, hi)] = density
        rows.append([f"[{lo},{hi}]", depth, count, f"{density:.2f}"])
    from repro.analysis import render_calibrator

    emit(
        banner("EXP-F1: Figure 1 calibrator densities (d=2, D=3)"),
        render_table(["range", "depth", "N_v", "p(v)"], rows),
        "",
        "Figure 1b, redrawn:",
        render_calibrator(tree, width=56),
    )
    assert measured == FIGURE_1B


def test_figure_1_is_balanced(benchmark):
    tree = once(benchmark, build_calibrator)
    violations = balance_violations(tree, PARAMS)
    emit(f"EXP-F1: BALANCE(2,3) violations: {violations}")
    assert violations == []


def test_figure_1_density_conditions(benchmark):
    """The file is (2,3)-dense: <= d*M records, <= D per page."""

    def check():
        assert sum(OCCUPANCIES) <= PARAMS.max_records
        assert max(OCCUPANCIES) <= PARAMS.D
        return True

    assert once(benchmark, check)
