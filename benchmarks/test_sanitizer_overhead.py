"""EXP-S1 — the disabled sanitizer is free, the enabled one is honest.

The sanitizer PR adds an instrumentation seam to the stress harness:
with ``sanitize=True`` the stack is rebuilt around
:class:`~repro.sanitizer.SanitizedStore` / ``SanitizedRWLock``; with
``sanitize=False`` (the default) the harness constructs the exact
plain stack it always did — different *objects*, not a flag checked
per access.  That zero-cost-when-off claim is gated three ways:

* **by construction** — the off-mode stack contains no ``Sanitized*``
  wrapper anywhere in the store chain and no sanitizer counters in
  the report;
* **bit-identical logic** — schedule digest and logical operation
  counters match between off and on runs of the same seed, so the
  instrumentation observes the run without steering it;
* **wall-clock** — the off run stays inside the repo's standing 30%
  regression gate (:data:`repro.benchmark.DEFAULT_MAX_REGRESSION`)
  against an identically configured baseline run, which is exactly
  the gate a future hot-path ``if sanitize:`` conditional would trip.
"""

import time

from bench_helpers import banner, emit, once

from repro.analysis import render_table
from repro.benchmark import DEFAULT_MAX_REGRESSION
from repro.concurrent.harness import StressConfig, build_file, run_stress

SEED = 5
TOTAL_OPS = 160


def timed_run(sanitize: bool):
    config = StressConfig(seed=SEED, total_ops=TOTAL_OPS, sanitize=sanitize)
    started = time.perf_counter()
    report = run_stress(config)
    return report, time.perf_counter() - started


def test_off_mode_builds_the_plain_stack():
    # No-op by construction: with no runtime the builder returns the
    # bare stack — there is no disabled wrapper left in the chain to
    # pay for, and nothing sanitizer-shaped in the report.
    dense, _plan = build_file(StressConfig(seed=SEED, total_ops=TOTAL_OPS))
    chain = []
    store = getattr(dense.engine, "store", None)
    while store is not None:
        chain.append(type(store).__name__)
        store = getattr(store, "inner", None)
    assert all("Sanitized" not in name for name in chain), chain
    report = run_stress(StressConfig(seed=SEED, total_ops=40))
    assert report.sanitizer_counters is None


def test_sanitizer_off_overhead_within_gate(benchmark):
    def run():
        baseline = timed_run(sanitize=False)
        off = timed_run(sanitize=False)
        on = timed_run(sanitize=True)
        return baseline, off, on

    (base, base_s), (off, off_s), (on, on_s) = once(benchmark, run)
    # The logical run is the same run, bit for bit, in all three modes.
    for other in (off, on):
        assert other.schedule_digest == base.schedule_digest
        assert other.ops_executed == base.ops_executed
        assert other.batches == base.batches
    assert base.ok and off.ok and on.ok
    assert on.sanitizer_counters is not None
    assert on.sanitizer_counters["findings"] == 0
    emit(
        banner(
            f"EXP-S1: sanitizer overhead, {TOTAL_OPS} torture ops, "
            f"seed {SEED}"
        ),
        render_table(
            ["mode", "ops", "seconds"],
            [
                ["plain (baseline)", base.ops_executed, f"{base_s:.3f}"],
                ["sanitize=False", off.ops_executed, f"{off_s:.3f}"],
                ["sanitize=True", on.ops_executed, f"{on_s:.3f}"],
            ],
        ),
    )
    # The standing bench gate: 30% (plus a constant-time floor so a
    # sub-second run's scheduler jitter cannot flake the assertion).
    ceiling = base_s * (1.0 + DEFAULT_MAX_REGRESSION / 100.0) + 0.25
    assert off_s < ceiling, (
        f"sanitizer-off run regressed past the {DEFAULT_MAX_REGRESSION:.0f}% "
        f"gate: {base_s:.3f}s -> {off_s:.3f}s"
    )
