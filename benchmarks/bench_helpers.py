"""Shared helpers for the benchmark harness.

Each benchmark file reproduces one experiment id from DESIGN.md and
prints the regenerated table through :mod:`repro.analysis.report`
(visible with ``pytest benchmarks/ --benchmark-only -s``).  The helpers
here keep the per-experiment files small and uniform.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro import Control1Engine, Control2Engine, DensityParams
from repro.workloads import Operation, run_workload


def drive(engine, operations: Sequence[Operation]):
    """Run a workload and return its RunResult (with per-op log)."""
    return run_workload(engine, operations)


def fresh_engines(params: DensityParams) -> Dict[str, object]:
    """Both dense-file engines on identical geometry."""
    return {
        "CONTROL 1": Control1Engine(params),
        "CONTROL 2": Control2Engine(params),
    }


def per_op_worst_and_mean(engine, operations) -> Dict[str, float]:
    result = run_workload(engine, operations)
    return {
        "worst": float(result.log.worst_case_accesses),
        "mean": result.log.amortized_accesses,
        "worst_moved": float(result.log.worst_case_moved),
        "mean_moved": result.log.amortized_moved,
    }


def once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"


def emit(*chunks: str) -> None:
    """Print the reproduced table(s) for -s runs."""
    print()
    for chunk in chunks:
        print(chunk)
