"""EXP-W6 — Section 5's closing claim ([HKW86]): expected O(1) behaviour.

"Hofri-Konheim-Willard show that an expected time O(1) is possible under
similar procedures": under uniformly random insertions the expected
*maintenance* work per command (everything beyond the O(log M) search)
is constant — in fact, with slack D - d > 3 log M it is essentially
zero, because a uniform workload never pushes any calibrator node's
local density across its warning threshold g(v, 2/3).  We preload to 90%
of the cardinality cap, push to 97% with random inserts, and measure
records moved and page accesses per command across file sizes.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_comparison
from repro.workloads import run_workload, uniform_random_inserts

SIZES = [128, 512, 2048]
KEY_SPACE = 1 << 30


def mean_moves_for(num_pages: int) -> tuple:
    """Steady-state measurement at high fill (90% -> 97% of d*M)."""
    params = DensityParams(num_pages=num_pages, d=8, D=64)
    engine = Control2Engine(params)
    base = int(0.90 * params.max_records)
    # Offset preloaded keys by 0.5 so random integer inserts never collide.
    engine.bulk_load(k + 0.5 for k in range(0, KEY_SPACE, KEY_SPACE // base))
    operations = uniform_random_inserts(
        int(0.07 * params.max_records), key_space=KEY_SPACE, seed=41
    )
    result = run_workload(engine, operations)
    engine.validate()
    search_overhead = 3  # locate read + the mutation's read/write
    return (
        result.log.amortized_moved,
        result.log.amortized_accesses,
        result.log.amortized_accesses - search_overhead,
    )


def test_expected_constant_maintenance(benchmark):
    def sweep():
        moved, accesses, maintenance = [], [], []
        for num_pages in SIZES:
            mean_moved, mean_accesses, mean_maintenance = mean_moves_for(
                num_pages
            )
            moved.append(mean_moved)
            accesses.append(mean_accesses)
            maintenance.append(mean_maintenance)
        return moved, accesses, maintenance

    moved, accesses, maintenance = once(benchmark, sweep)
    emit(
        banner(
            "EXP-W6: random inserts at 90->97% fill — expected maintenance "
            "work per command vs M"
        ),
        render_comparison(
            "",
            "M",
            SIZES,
            [
                ("mean records moved", moved),
                ("mean page accesses", accesses),
                ("accesses beyond the search", maintenance),
            ],
        ),
        "(per-command accesses are flat in M: the search runs in-core "
        "and maintenance never triggers under uniform traffic)",
    )
    # Expected-O(1) shape: maintenance work per command is a small
    # constant, independent of M — here it is essentially zero because
    # uniform traffic never concentrates density locally.
    assert all(m < 0.5 for m in moved)
    assert all(extra < 2.0 for extra in maintenance)
    # The total per-command accesses are flat across a 16x size range.
    assert max(accesses) - min(accesses) <= 1.0
