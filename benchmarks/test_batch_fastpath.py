"""Microbenchmarks: the batched write fast paths vs. per-record loops.

Wall-clock companion to ``tests/test_batch_operations.py``'s I/O-count
assertions — the grouped ``insert_many`` touches each destination page
once per run of same-page records, so both the physical work and the
Python overhead drop.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro import Control2Engine, DensityParams

from bench_helpers import banner, emit, once


def _params(num_pages=1024):
    return DensityParams(num_pages=num_pages, d=8, D=48)


@pytest.mark.parametrize("batch", [True, False],
                         ids=["batched", "per-record"])
def test_sorted_burst(benchmark, batch):
    """10k-record sorted burst through both insert paths."""
    engine = Control2Engine(_params(2048))
    keys = list(range(10_000))

    once(benchmark, lambda: engine.insert_many(keys, batch=batch))
    engine.validate()
    store = engine.store.stats()
    emit(
        banner(f"sorted burst, batch={batch}"),
        f"logical page accesses: {engine.stats.page_accesses}",
        f"physical gets+puts:    {store['gets'] + store['puts']}",
    )


@pytest.mark.parametrize("batch", [True, False],
                         ids=["batched", "per-record"])
def test_clustered_burst_into_loaded_file(benchmark, batch):
    """2k inserts landing between existing records (the hinted path)."""
    engine = Control2Engine(_params())
    engine.bulk_load(range(0, 8_000, 4))
    burst = [k + 1 for k in range(0, 8_000, 4)]

    once(benchmark, lambda: engine.insert_many(burst, batch=batch))
    engine.validate()


@pytest.mark.parametrize("batch", [True, False],
                         ids=["batched", "per-record"])
def test_range_delete(benchmark, batch):
    """Bulk delete of the middle half of a loaded file."""
    engine = Control2Engine(_params())
    engine.bulk_load(range(8_000))

    once(benchmark, lambda: engine.delete_range(2_000, 5_999, batch=batch))
    engine.validate()


def test_readahead_stream_scan(benchmark):
    """Stream scan with the prefetch window on the buffered stack."""
    from repro import DenseSequentialFile

    dense = DenseSequentialFile(
        num_pages=1024, d=8, D=48,
        backend="buffered", cache_pages=64, readahead=8,
    )
    dense.bulk_load(range(6_000))
    dense.flush()

    total = once(benchmark, lambda: sum(1 for _ in dense.range(0, 6_000)))
    assert total == 6_000
    stats = dense.store_stats()
    emit(
        banner("stream scan with readahead=8"),
        f"prefetches: {stats['prefetches']}, "
        f"prefetch hits: {stats['prefetch_hits']}, "
        f"demand misses: {stats['misses']}",
    )
