"""EXP-W5 — Theorem 5.7: macro-blocks remove the slack condition.

When D - d <= 3*ceil(log2 M), CONTROL 2 runs over macro-blocks of K
pages against the (K*d, K*D)-dense constraint.  The translated cost is
O(log^2 M / (D - d)) in ordinary page units.  We drive the adversary at
a geometry where the plain algorithm is inapplicable and check both
correctness (density maintained) and the bounded-cost shape.
"""

from bench_helpers import banner, emit, once

from repro import DensityParams, MacroBlockControl2Engine, macro_params
from repro.analysis import render_table
from repro.workloads import converging_inserts, mixed_workload, run_workload

GEOMETRIES = [
    # (M, d, D): all with D - d <= 3*ceil(log2 M).
    (64, 8, 12),
    (256, 8, 16),
    (1024, 8, 24),
]


def run_geometry(num_pages, d, cap_d):
    engine = MacroBlockControl2Engine(num_pages=num_pages, d=d, D=cap_d)
    operations = converging_inserts(min(3 * num_pages, 2000))
    result = run_workload(engine, operations)
    engine.validate()
    return engine, result.log


def test_macroblock_maintenance_and_cost(benchmark):
    def sweep():
        rows = []
        for num_pages, d, cap_d in GEOMETRIES:
            engine, log = run_geometry(num_pages, d, cap_d)
            factor = engine.block_factor
            rows.append(
                [
                    f"{num_pages}",
                    f"{cap_d - d}",
                    f"{factor}",
                    f"{engine.params.num_pages}",
                    f"{log.worst_case_accesses * factor}",
                    f"{log.amortized_accesses * factor:.1f}",
                    f"{engine.stuck_shifts}",
                ]
            )
        return rows

    rows = once(benchmark, sweep)
    emit(
        banner("EXP-W5: macro-block CONTROL 2 where D-d <= 3 log M"),
        render_table(
            [
                "M", "D-d", "K", "macro blocks",
                "worst phys accesses/op", "mean phys accesses/op", "stuck",
            ],
            rows,
        ),
    )
    for row in rows:
        assert int(row[-1]) == 0  # no defensive fallbacks
    # Worst physical accesses stay bounded by K * (3J + search) per op.
    for (num_pages, d, cap_d), row in zip(GEOMETRIES, rows):
        params = macro_params(num_pages, d, cap_d)
        factor = int(row[2])
        bound = factor * (3 * params.shift_budget + 2 * params.log_m + 4)
        assert int(row[4]) <= bound


def test_macroblock_mixed_workload_correctness(benchmark):
    def run():
        engine = MacroBlockControl2Engine(num_pages=256, d=8, D=16)
        run_workload(engine, mixed_workload(1500, seed=31), validate_every=250)
        return engine

    engine = once(benchmark, run)
    keys = [record.key for record in engine.pagefile.iter_all()]
    assert keys == sorted(keys)
    emit(
        f"EXP-W5b: mixed workload on macro-blocks: size={len(engine)}, "
        f"K={engine.block_factor}, validations passed"
    )
