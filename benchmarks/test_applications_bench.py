"""EXP-A8 — application-level costs: the [IKR80] priority-queue pattern.

Itai, Konheim and Rodeh's motivating application for sparse tables was
priority queues.  This benchmark measures the event-loop pattern on the
dense-file queue — pushes mixed with deadline drains — against a
B+-tree-based queue, and quantifies the bulk-drain advantage: popping k
due events one by one costs ~3 accesses each, while ``drain_until``
streams one sequential page run and removes them in a single bulk pass.
"""

from bench_helpers import banner, emit, once

from repro.analysis import render_table
from repro.applications import DensePriorityQueue
from repro.baselines.btree import BPlusTree

EVENTS = 2000
WINDOW = 100


class BTreeQueue:
    """Minimal B+-tree priority queue for comparison."""

    def __init__(self):
        self._tree = BPlusTree(
            fanout=16, leaf_capacity=48, cache_internal_nodes=True
        )
        self._ticket = 0

    def push(self, priority, item=None):
        self._tree.insert((priority, self._ticket), item)
        self._ticket += 1

    def pop(self):
        record = self._tree.scan_count((float("-inf"), -1), 1)[0]
        self._tree.delete(record.key)
        return record.key[0], record.value

    def drain_until(self, deadline):
        drained = []
        while len(self._tree):
            record = self._tree.scan_count((float("-inf"), -1), 1)[0]
            if record.key[0] > deadline:
                break
            self._tree.delete(record.key)
            drained.append((record.key[0], record.value))
        return drained

    def __len__(self):
        return len(self._tree)

    @property
    def stats(self):
        return self._tree.stats


def event_loop_cost(queue) -> dict:
    """Push EVENTS events, then drain them in WINDOW-sized deadlines."""
    for priority in range(EVENTS):
        queue.push(priority)
    queue.stats.checkpoint("drain")
    drained = 0
    deadline = WINDOW - 1
    while drained < EVENTS:
        due = queue.drain_until(deadline)
        drained += len(due)
        deadline += WINDOW
    delta = queue.stats.delta("drain")
    return {"accesses": delta.page_accesses, "drained": drained}


def per_pop_cost() -> float:
    """Mean accesses per single pop on the dense queue."""
    queue = DensePriorityQueue(num_pages=256, d=8, D=48)
    for priority in range(EVENTS):
        queue.push(priority)
    queue.stats.checkpoint("pops")
    for _ in range(EVENTS):
        queue.pop()
    return queue.stats.delta("pops").page_accesses / EVENTS


def test_priority_queue_event_loop(benchmark):
    def run():
        dense = event_loop_cost(DensePriorityQueue(num_pages=256, d=8, D=48))
        tree = event_loop_cost(BTreeQueue())
        return dense, tree, per_pop_cost()

    dense, tree, pop_mean = once(benchmark, run)
    dense_per_event = dense["accesses"] / EVENTS
    tree_per_event = tree["accesses"] / EVENTS
    emit(
        banner(
            f"EXP-A8: event-loop drains ({EVENTS} events, "
            f"{WINDOW}-event deadlines)"
        ),
        render_table(
            ["queue", "drain accesses", "accesses/event"],
            [
                ["dense file (drain_until)", dense["accesses"],
                 f"{dense_per_event:.2f}"],
                ["B+-tree (pop loop)", tree["accesses"],
                 f"{tree_per_event:.2f}"],
                ["dense file (pop loop)", f"~{pop_mean * EVENTS:.0f}",
                 f"{pop_mean:.2f}"],
            ],
        ),
    )
    assert dense["drained"] == tree["drained"] == EVENTS
    # The bulk drain amortizes to well under one access per event...
    assert dense_per_event < 1.0
    # ...beating both pop loops by a wide margin.
    assert dense_per_event * 3 < tree_per_event
    assert dense_per_event * 3 < pop_mean
