"""EXP-R1 — the disabled fault layer is free.

The robustness PR wraps every production stack in
``RetryingStore(FaultyStore(inner))``.  That is only acceptable if a
*disabled* fault plan is invisible: the logical page-access counters
the paper bounds must be byte-identical to the bare backend's, and the
wall-clock overhead of the two pass-through decorators must stay in
the noise next to the engine work itself.

Two meters, one workload: the same adversarial insert/delete mix runs
on a bare :class:`MemoryStore` and on the decorated stack, and every
counter the engine exposes is compared field for field.
"""

import time

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_table
from repro.storage.backend import MemoryStore
from repro.storage.faults import FaultPlan, fault_tolerant_stack
from repro.workloads import converging_inserts, run_workload

NUM_PAGES = 256
OPERATIONS = 1500
PARAMS = dict(num_pages=NUM_PAGES, d=8, D=48)


def run_stack(decorated: bool):
    """Drive the workload; returns (engine stats, seconds, store stats)."""
    inner = MemoryStore(NUM_PAGES)
    if decorated:
        store = fault_tolerant_stack(inner, FaultPlan(seed=0))
        assert not store.inner.plan.enabled
    else:
        store = inner
    engine = Control2Engine(DensityParams(**PARAMS), store=store)
    started = time.perf_counter()
    run_workload(engine, converging_inserts(OPERATIONS))
    elapsed = time.perf_counter() - started
    engine.validate()
    return engine.stats, elapsed, store.stats()


def test_disabled_fault_layer_is_free(benchmark):
    def run():
        return run_stack(decorated=False), run_stack(decorated=True)

    (bare, bare_s, bare_stats), (deco, deco_s, deco_stats) = once(
        benchmark, run
    )
    # The logical counters the paper bounds: identical, not merely close.
    for field in ("reads", "writes", "seeks"):
        assert getattr(bare, field) == getattr(deco, field), (
            f"disabled fault layer changed logical {field}: "
            f"{getattr(bare, field)} vs {getattr(deco, field)}"
        )
    # The retrying layer absorbed nothing because nothing was injected.
    assert deco_stats["retries"] == 0
    assert deco_stats["giveups"] == 0
    assert deco_stats["inner"]["plan"]["transients_injected"] == 0
    emit(
        banner(
            f"EXP-R1: disabled FaultyStore+RetryingStore overhead, "
            f"{OPERATIONS} adversarial updates on {NUM_PAGES} pages"
        ),
        render_table(
            ["stack", "reads", "writes", "seconds"],
            [
                ["bare MemoryStore", bare.reads, bare.writes,
                 f"{bare_s:.3f}"],
                ["retrying(faulty(memory))", deco.reads, deco.writes,
                 f"{deco_s:.3f}"],
                ["overhead", 0, 0, f"{deco_s - bare_s:+.3f}"],
            ],
        ),
    )
    # Two Python method hops per access: generous ceiling, loud failure.
    assert deco_s < bare_s * 4 + 0.25, (
        f"pass-through overhead blew up: {bare_s:.3f}s -> {deco_s:.3f}s"
    )
