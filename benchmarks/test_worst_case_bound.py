"""EXP-W1 — Theorem 5.5 / Corollary 5.6: the worst-case bound.

The headline claim: CONTROL 2 serves every insertion/deletion in
O(log^2 M / (D - d)) page accesses, where CONTROL 1's worst case grows
with the file size M (its step B rewrites a whole subtree range).

We drive both engines with the converging-insert adversary (the "surge
of insertions in a small portion of the file" from the introduction)
across increasing M, and report the worst single-command page-access
count.  Expected shape: CONTROL 2 flat (it tracks J ~ log^2 M / (D-d)),
CONTROL 1 growing roughly linearly in M.
"""

import pytest
from bench_helpers import banner, emit, once

from repro import Control1Engine, Control2Engine, DensityParams
from repro.analysis import growth_exponent, render_comparison
from repro.workloads import converging_inserts, run_workload

SIZES = [64, 256, 1024]
SLACK_D = 8


def params_for(num_pages: int) -> DensityParams:
    # Keep D - d comfortably above 3*log2(M) at every size.
    return DensityParams(num_pages=num_pages, d=SLACK_D, D=SLACK_D + 56)


def run_adversary(engine_cls, num_pages: int):
    params = params_for(num_pages)
    engine = engine_cls(params)
    operations = converging_inserts(min(4 * num_pages, 4000))
    result = run_workload(engine, operations)
    engine.validate()
    return result.log


@pytest.mark.parametrize("engine_cls", [Control1Engine, Control2Engine])
def test_adversary_run(benchmark, engine_cls):
    """Timed single-size run (M=256) for pytest-benchmark's table."""
    log = once(benchmark, lambda: run_adversary(engine_cls, 256))
    assert log.worst_case_accesses > 0


def test_worst_case_scaling(benchmark):
    def sweep():
        table = {}
        for engine_cls in (Control1Engine, Control2Engine):
            worsts, means = [], []
            for num_pages in SIZES:
                log = run_adversary(engine_cls, num_pages)
                worsts.append(float(log.worst_case_accesses))
                means.append(log.amortized_accesses)
            table[engine_cls.__name__] = (worsts, means)
        return table

    table = once(benchmark, sweep)
    c1_worst, c1_mean = table["Control1Engine"]
    c2_worst, c2_mean = table["Control2Engine"]
    bounds = [
        float(3 * params_for(m).shift_budget + 2 * params_for(m).log_m + 4)
        for m in SIZES
    ]
    emit(
        banner("EXP-W1: worst-case page accesses per command (adversarial surge)"),
        render_comparison(
            "",
            "M",
            SIZES,
            [
                ("CONTROL1 worst", c1_worst),
                ("CONTROL2 worst", c2_worst),
                ("CONTROL2 bound(J)", bounds),
                ("CONTROL1 mean", c1_mean),
                ("CONTROL2 mean", c2_mean),
            ],
        ),
        f"growth exponent of worst case vs M: "
        f"CONTROL1={growth_exponent(SIZES, c1_worst):.2f}, "
        f"CONTROL2={growth_exponent(SIZES, c2_worst):.2f}",
    )
    # Shape assertions: who wins, and how the curves scale.
    for index in range(len(SIZES)):
        assert c2_worst[index] < c1_worst[index]
        # CONTROL 2 honours the O(J) = O(log^2 M / (D-d)) ceiling.
        assert c2_worst[index] <= bounds[index]
    # CONTROL 1's spike grows roughly linearly with M; CONTROL 2's grows
    # only with J ~ log^2 M, i.e. with a much smaller power of M.
    c1_exp = growth_exponent(SIZES, c1_worst)
    c2_exp = growth_exponent(SIZES, c2_worst)
    assert c1_exp > 0.8
    assert c2_exp < c1_exp - 0.3
    # At the largest size the deamortization gap is at least ~4x.
    assert c1_worst[-1] > 4 * c2_worst[-1]
