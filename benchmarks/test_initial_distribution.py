"""EXP-A4 — ablation: Theorem 5.5's initial-distribution precondition.

Theorem 5.5 requires "a (d,D)-dense file whose records are initially
distributed with a uniform density over the address space".  This
ablation shows the precondition is load-bearing: loading the same
records packed into the leftmost pages (a classic sequential-file dump)
starts the calibrator with BALANCE(d, D) already violated, and CONTROL 2
— whose correctness argument assumes violations never arise — does not
repair the skew; subsequent inserts make it worse, eventually pushing
pages beyond D.  The uniform bulk loader keeps violations at zero
forever under the same insert stream.

The remedy matches the paper: one up-front uniform redistribution
(CONTROL 1's primitive over the whole file) re-establishes the
precondition.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_comparison
from repro.core.invariants import balance_violations
from repro.workloads import uniform_random_inserts

NUM_PAGES = 128
PARAMS = DensityParams(num_pages=NUM_PAGES, d=8, D=48)
PRELOAD = PARAMS.max_records // 2
CHECK_EVERY = 100
COMMANDS = 450
KEY_SPACE = PRELOAD * 200


def packed_left_engine():
    engine = Control2Engine(PARAMS)
    occupancies = []
    left = PRELOAD
    for _ in range(NUM_PAGES):
        take = min(PARAMS.D - 1, left)
        occupancies.append(take)
        left -= take
    engine.load_occupancies(occupancies, key_start=0, key_gap=100)
    return engine


def uniform_engine():
    engine = Control2Engine(PARAMS)
    engine.bulk_load(k * 100 for k in range(PRELOAD))
    return engine


def violation_series(engine):
    series = [len(balance_violations(engine.calibrator, PARAMS))]
    operations = uniform_random_inserts(
        COMMANDS, key_space=KEY_SPACE, seed=5
    )
    peak_fill = max(engine.occupancies())
    for index, operation in enumerate(operations):
        engine.insert(operation.key + 0.5)  # avoid preloaded-key collisions
        peak_fill = max(peak_fill, max(engine.occupancies()))
        if (index + 1) % CHECK_EVERY == 0:
            series.append(len(balance_violations(engine.calibrator, PARAMS)))
    return series, peak_fill


def test_initial_distribution_matters(benchmark):
    def run():
        packed_series, packed_peak = violation_series(packed_left_engine())
        uniform_series, uniform_peak = violation_series(uniform_engine())
        repaired = packed_left_engine()
        repaired.pagefile.redistribute(1, NUM_PAGES)
        from repro.core.control1 import Control1Engine

        # Reuse CONTROL 1's counter-rebuild helper for the full range.
        Control1Engine._recount_range(repaired, 1, NUM_PAGES)
        repaired_series, repaired_peak = violation_series(repaired)
        return (
            packed_series, packed_peak,
            uniform_series, uniform_peak,
            repaired_series, repaired_peak,
        )

    (packed, packed_peak, uniform, uniform_peak,
     repaired, repaired_peak) = once(benchmark, run)
    checkpoints = [i * CHECK_EVERY for i in range(len(packed))]
    emit(
        banner(
            "EXP-A4: BALANCE(d,D) violations over time by initial layout "
            f"(M={NUM_PAGES}, d=8, D=48, {PRELOAD} preloaded records)"
        ),
        render_comparison(
            "",
            "commands",
            checkpoints,
            [
                ("packed-left load", [float(v) for v in packed]),
                ("uniform load (Thm 5.5)", [float(v) for v in uniform]),
                ("packed + one redistribution", [float(v) for v in repaired]),
            ],
        ),
        f"peak page fill: packed={packed_peak} (D=48!), "
        f"uniform={uniform_peak}, repaired={repaired_peak}",
    )
    # The precondition is violated from the start under a packed dump...
    assert packed[0] > 0
    # ...and the algorithm does not repair it (it may get worse).
    assert packed[-1] > 0
    # The packed layout eventually breaks the physical capacity bound.
    assert packed_peak > PARAMS.D
    # A uniform load keeps BALANCE(d,D) at zero violations throughout...
    assert all(v == 0 for v in uniform)
    assert uniform_peak <= PARAMS.D
    # ...and a single up-front redistribution is a sufficient remedy.
    assert all(v == 0 for v in repaired)
    assert repaired_peak <= PARAMS.D
