"""EXP-W3 — Section 1's motivation: insertion bursts vs overflow chains.

Wiederhold's observation, restated by the paper: overflow mechanisms
"become especially unmanageable when a large surge of insertions is
attempted in a relatively small portion of the sequential file", because
overflow records can no longer be stored near their intended locations.

We preload an overflow-chained file and a CONTROL 2 dense file with the
same records, fire the same burst at both (interleaved across four hot
key points, so each home page's chain interleaves *physically* with the
others in the overflow area), then stream-scan across the burst region.

The decisive variable is how expensive a disk seek is relative to a
sequential transfer, so the experiment sweeps the seek cost: with free
seeks the two files read similar page counts; as seeks grow costlier the
chained file falls behind, because every chained page is a seek while
the dense file remains one sequential sweep.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_comparison, render_table
from repro.baselines.overflow_file import OverflowChainFile
from repro.storage.cost import CostModel, DISK_ARM_MODEL
from repro.workloads import converging_inserts, interleaved_point_inserts

NUM_PAGES = 64
CAPACITY = 40  # page capacity D; dense slack D - d = 24 > 3*log2(64) = 18
PRELOAD = list(range(0, 12_000, 30))  # 400 records
BURST = 560
HOT_POINTS = [2_000, 5_000, 8_000, 11_000]
SEEK_COSTS = [0.0, 10.0, 30.0]


def build_and_burst(model: CostModel):
    dense = Control2Engine(
        DensityParams(num_pages=NUM_PAGES, d=16, D=CAPACITY), model=model
    )
    dense.bulk_load(PRELOAD)
    overflow = OverflowChainFile(
        num_primary_pages=NUM_PAGES, capacity=CAPACITY, model=model
    )
    overflow.bulk_load(PRELOAD)
    for operation in interleaved_point_inserts(BURST, points=HOT_POINTS):
        dense.insert(operation.key)
        overflow.insert(operation.key)
    dense.validate()
    return dense, overflow


def scan_cost(structure, lo, hi) -> tuple:
    structure.stats.checkpoint("scan")
    found = sum(1 for _ in structure.range_scan(lo, hi))
    delta = structure.stats.delta("scan")
    return found, delta.cost, delta.page_accesses


def test_burst_resilience_across_seek_costs(benchmark):
    def sweep():
        rows = []
        for seek in SEEK_COSTS:
            model = CostModel(seek_base=seek, seek_per_page=0.01, seek_max=2 * seek)
            dense, overflow = build_and_burst(model)
            window = (HOT_POINTS[0] - 200, HOT_POINTS[-1] + 200)
            dense_found, dense_cost, dense_accesses = scan_cost(dense, *window)
            over_found, over_cost, over_accesses = scan_cost(overflow, *window)
            assert dense_found == over_found  # same logical contents
            rows.append(
                (
                    seek,
                    dense_cost,
                    over_cost,
                    dense_accesses,
                    over_accesses,
                    overflow.longest_chain(),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    ratios = [over / dense for _, dense, over, _, _, _ in rows]
    emit(
        banner(
            f"EXP-W3: {BURST}-insert burst into {len(HOT_POINTS)} key points, "
            "then a stream scan across them"
        ),
        render_comparison(
            "",
            "seek cost",
            [row[0] for row in rows],
            [
                ("dense scan cost", [row[1] for row in rows]),
                ("overflow scan cost", [row[2] for row in rows]),
                ("overflow/dense ratio", ratios),
            ],
        ),
        f"chain length per hot page: {rows[-1][5]} overflow pages",
    )
    # Chains actually formed.
    assert rows[-1][5] >= (BURST // len(HOT_POINTS)) // CAPACITY
    # The overflow file reads more pages regardless of the cost model...
    assert all(over_acc > dense_acc for _, _, _, dense_acc, over_acc, _ in rows)
    # ...and its disadvantage grows with the seek cost, passing 2x under
    # a realistic seek premium.  (The paper's qualitative claim.)
    assert ratios == sorted(ratios)
    assert ratios[-1] > 2.0


def test_burst_update_cost_stays_bounded(benchmark):
    """During the burst, CONTROL 2's per-command cost honours its bound
    (the overflow file's insert is cheap but defers the pain to scans)."""

    def run():
        dense = Control2Engine(
            DensityParams(num_pages=NUM_PAGES, d=16, D=CAPACITY),
            model=DISK_ARM_MODEL,
        )
        dense.bulk_load(PRELOAD)
        log = dense.enable_operation_log()
        for operation in converging_inserts(BURST, lo=7_000, hi=7_001):
            dense.insert(operation.key)
        dense.validate()
        return log

    log = once(benchmark, run)
    params = DensityParams(num_pages=NUM_PAGES, d=16, D=CAPACITY)
    bound = 3 * params.shift_budget + 2 * params.log_m + 4
    emit(
        f"EXP-W3b: dense-file worst per-op accesses during burst: "
        f"{log.worst_case_accesses} (bound {bound})"
    )
    assert log.worst_case_accesses <= bound
