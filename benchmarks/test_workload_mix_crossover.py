"""EXP-A5 — ablation: where does the dense file beat the B+-tree overall?

The paper's positioning is conditional: CONTROL 2 is "desirable in those
applications where frequent stream retrieval requests make the reduced
disk-arm movement a significant savings", while B-trees keep the cheaper
updates.  This ablation quantifies the condition: for sessions mixing
updates with 256-record stream scans, sweep the scan share and measure
total modelled cost per structure.  The crossover share — above which
the dense file wins the whole session — is the experiment's output.
"""

import random

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_comparison
from repro.baselines.btree import BPlusTree
from repro.storage.cost import DISK_ARM_MODEL
from repro.workloads import uniform_random_inserts

NUM_PAGES = 512
D_CAP = 48
KEY_SPACE = 1 << 20
SESSION_OPS = 1200
SCAN_LENGTH = 256
SCAN_SHARES = [0.0, 0.02, 0.05, 0.10, 0.25, 0.50]


def build_pair():
    # Cached internal nodes for the tree (see EXP-W4's rationale), and a
    # shared scattering history: 1500 bulk-loaded seeds plus 1500 random
    # inserts so the tree's leaf chain is realistically fragmented
    # before the session being measured starts.
    dense = Control2Engine(
        DensityParams(num_pages=NUM_PAGES, d=8, D=D_CAP), model=DISK_ARM_MODEL
    )
    tree = BPlusTree(
        fanout=16,
        leaf_capacity=D_CAP,
        model=DISK_ARM_MODEL,
        cache_internal_nodes=True,
    )
    seed_records = [(k, None) for k in range(0, KEY_SPACE, KEY_SPACE // 1500)]
    dense.bulk_load(seed_records)
    tree.bulk_load(seed_records)
    for operation in uniform_random_inserts(1500, key_space=KEY_SPACE, seed=5):
        dense.insert(operation.key + 0.75)
        tree.insert(operation.key + 0.75)
    dense.stats.reset()
    tree.stats.reset()
    return dense, tree


def session_cost(structure, share: float) -> float:
    rng = random.Random(77)
    inserts = iter(
        uniform_random_inserts(SESSION_OPS, key_space=KEY_SPACE, seed=88)
    )
    structure.stats.checkpoint("session")
    for _ in range(SESSION_OPS):
        if rng.random() < share:
            start = rng.randrange(KEY_SPACE)
            structure.scan_count(start, SCAN_LENGTH)
        else:
            operation = next(inserts)
            try:
                structure.insert(operation.key + 0.25)  # dodge seed keys
            except Exception:
                continue
    return structure.stats.delta("session").cost / SESSION_OPS


def test_workload_mix_crossover(benchmark):
    def sweep():
        dense_costs, tree_costs = [], []
        for share in SCAN_SHARES:
            dense, tree = build_pair()
            dense_costs.append(session_cost(dense, share))
            tree_costs.append(session_cost(tree, share))
        return dense_costs, tree_costs

    dense_costs, tree_costs = once(benchmark, sweep)
    winners = [
        "dense" if d < t else "B+-tree"
        for d, t in zip(dense_costs, tree_costs)
    ]
    crossover = next(
        (share for share, who in zip(SCAN_SHARES, winners) if who == "dense"),
        None,
    )
    emit(
        banner(
            "EXP-A5: mean session cost per op vs scan share "
            f"({SCAN_LENGTH}-record streams, disk-arm model)"
        ),
        render_comparison(
            "",
            "scan share",
            SCAN_SHARES,
            [
                ("dense file", dense_costs),
                ("B+-tree", tree_costs),
            ],
        ),
        f"winner per share: {winners}; crossover at scan share {crossover}",
    )
    # Pure updates: the B+-tree wins, as the paper concedes.
    assert winners[0] == "B+-tree"
    # Scan-heavy sessions: the dense file wins, as the paper claims.
    assert winners[-1] == "dense"
    # There is a crossover inside the swept range.
    assert crossover is not None and 0 < crossover <= SCAN_SHARES[-1]
