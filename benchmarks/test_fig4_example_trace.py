"""EXP-F4 — Figure 4 / Example 5.2: the paper's full worked trace.

Runs CONTROL 2 on the 8-page file (d=9, D=18, J=3) of Example 5.2
through the two insertion commands Z1 (into page 8) and Z2 (into
page 1), and regenerates Figure 4's occupancy table for the flag-stable
moments t0..t8, asserting every row bit for bit.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams, MomentRecorder
from repro.analysis import render_table

FIGURE_4_ROWS = [
    ("t0", (16, 1, 0, 1, 9, 9, 9, 16)),
    ("t1", (16, 1, 0, 1, 9, 9, 9, 17)),
    ("t2", (16, 1, 0, 1, 9, 9, 15, 11)),
    ("t3", (16, 1, 0, 1, 9, 9, 15, 11)),
    ("t4", (16, 2, 0, 0, 9, 9, 15, 11)),
    ("t5", (17, 2, 0, 0, 9, 9, 15, 11)),
    ("t6", (4, 15, 0, 0, 9, 9, 15, 11)),
    ("t7", (15, 4, 0, 0, 9, 9, 15, 11)),
    ("t8", (15, 9, 0, 0, 4, 9, 15, 11)),
]


def run_example():
    params = DensityParams(num_pages=8, d=9, D=18, j=3)
    engine = Control2Engine(params)
    engine.load_occupancies([16, 1, 0, 1, 9, 9, 9, 16], key_start=0, key_gap=10)
    recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)
    rows = [("t0", tuple(engine.occupancies()))]
    engine.insert_at_page(8, 10_000)   # Z1
    engine.insert_at_page(1, -10_000)  # Z2
    rows.extend(
        (f"t{index}", moment.occupancies)
        for index, moment in enumerate(recorder.moments, start=1)
    )
    engine.validate()
    return engine, rows


def test_figure_4_trace(benchmark):
    engine, rows = once(benchmark, run_example)
    emit(
        banner("EXP-F4: Figure 4 — record distribution over time (Example 5.2)"),
        render_table(
            ["time"] + [f"L{j}" for j in range(1, 9)],
            [[label] + list(occupancies) for label, occupancies in rows],
        ),
    )
    assert rows == FIGURE_4_ROWS
    assert engine.stuck_shifts == 0


def test_example_52_pointer_narrative(benchmark):
    """The DEST assignments and the roll-back narrated in Section 5."""

    def run():
        params = DensityParams(num_pages=8, d=9, D=18, j=3)
        engine = Control2Engine(params)
        engine.load_occupancies(
            [16, 1, 0, 1, 9, 9, 9, 16], key_start=0, key_gap=10
        )
        recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)
        engine.insert_at_page(8, 10_000)
        engine.insert_at_page(1, -10_000)
        return engine, recorder

    engine, recorder = once(benchmark, run)
    tree = engine.calibrator
    l8 = tree.leaf_of_page[8]
    l1 = tree.leaf_of_page[1]
    v3 = tree.right[tree.root]
    t1, t3, t5, t7 = (
        recorder.moments[0],
        recorder.moments[2],
        recorder.moments[4],
        recorder.moments[6],
    )
    narrative = [
        ("t1: DEST(L8)", t1.destination_of(l8), 7),
        ("t1: DEST(v3)", t1.destination_of(v3), 1),
        ("t3: DEST(v3) advanced", t3.destination_of(v3), 2),
        ("t5: DEST(L1)", t5.destination_of(l1), 2),
        ("t5: DEST(v3) rolled back", t5.destination_of(v3), 1),
        ("t7: DEST(v3) advanced again", t7.destination_of(v3), 2),
    ]
    emit(
        banner("EXP-F4: Example 5.2 pointer narrative"),
        "\n".join(
            f"  {label}: measured={measured} paper={expected}"
            for label, measured, expected in narrative
        ),
    )
    for label, measured, expected in narrative:
        assert measured == expected, label
