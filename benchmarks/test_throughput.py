"""Microbenchmarks: wall-clock throughput of the core operations.

Unlike the EXP-* experiments (which measure *modelled page accesses*),
these time the Python implementation itself across multiple rounds, so
regressions in the hot paths (insert with maintenance, point search,
stream scan, order statistics) show up in the pytest-benchmark table.
"""

import pytest

from repro import Control2Engine, DensityParams
from repro.workloads import uniform_random_inserts


def loaded_engine(num_pages=512, fill=0.5):
    params = DensityParams(num_pages=num_pages, d=8, D=48)
    engine = Control2Engine(params)
    count = int(params.max_records * fill)
    engine.bulk_load(k * 7 + 0.5 for k in range(count))
    return engine, count


def test_insert_throughput(benchmark):
    engine, count = loaded_engine()
    keys = iter(range(10**9))

    def insert_one():
        engine.insert(next(keys) * 7 + 0.25)

    benchmark.pedantic(insert_one, rounds=300, iterations=1)
    engine.validate()


def test_adversarial_insert_throughput(benchmark):
    from fractions import Fraction

    engine, count = loaded_engine()
    state = {"lo": Fraction(1000), "hi": Fraction(1001)}

    def insert_converging():
        mid = (state["lo"] + state["hi"]) / 2
        engine.insert(mid)
        state["hi"] = mid

    benchmark.pedantic(insert_converging, rounds=300, iterations=1)
    engine.validate()


def test_search_throughput(benchmark):
    engine, count = loaded_engine()
    keys = [k * 7 + 0.5 for k in range(0, count, 97)]
    cursor = {"index": 0}

    def search_one():
        key = keys[cursor["index"] % len(keys)]
        cursor["index"] += 1
        assert engine.search(key) is not None

    benchmark.pedantic(search_one, rounds=300, iterations=1)


def test_scan_throughput(benchmark):
    engine, count = loaded_engine()

    def scan_thousand():
        return len(engine.scan_count(0, 1000))

    result = benchmark.pedantic(scan_thousand, rounds=50, iterations=1)
    assert result == 1000


def test_order_statistics_throughput(benchmark):
    engine, count = loaded_engine()
    cursor = {"probe": 0}

    def rank_and_count():
        probe = cursor["probe"] % (count * 7)
        cursor["probe"] += 997
        engine.rank(probe)
        engine.count_range(probe, probe + 10_000)

    benchmark.pedantic(rank_and_count, rounds=200, iterations=1)
