"""EXP-A2 — the cost law: maintenance cost ~ log^2(M) / (D - d).

At fixed M, widening the density slack D - d should reduce per-command
maintenance cost inversely: double the slack, halve the shifting.  We
sweep D at fixed d and M under the adversary and fit the exponent of
worst-case cost against slack (expected near -1, since J ~ 1/(D-d)).
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import growth_exponent, render_comparison
from repro.workloads import converging_inserts, run_workload

NUM_PAGES = 512
D_SMALL = 8
SLACKS = [32, 64, 128, 256]


def cost_for(slack: int):
    params = DensityParams(num_pages=NUM_PAGES, d=D_SMALL, D=D_SMALL + slack)
    engine = Control2Engine(params)
    result = run_workload(engine, converging_inserts(2000))
    engine.validate()
    return (
        float(result.log.worst_case_accesses),
        result.log.amortized_accesses,
        float(params.shift_budget),
    )


def test_slack_sweep(benchmark):
    def sweep():
        worst, mean, budgets = [], [], []
        for slack in SLACKS:
            w, m, j = cost_for(slack)
            worst.append(w)
            mean.append(m)
            budgets.append(j)
        return worst, mean, budgets

    worst, mean, budgets = once(benchmark, sweep)
    exponent = growth_exponent(SLACKS, worst)
    emit(
        banner(
            f"EXP-A2: cost vs slack D-d (M={NUM_PAGES}, d={D_SMALL}, "
            "converging adversary)"
        ),
        render_comparison(
            "",
            "D-d",
            SLACKS,
            [
                ("J (default)", budgets),
                ("worst accesses/op", worst),
                ("mean accesses/op", mean),
            ],
        ),
        f"fit: worst ~ slack^{exponent:.2f} (theory: -1)",
    )
    # Inverse shape: cost strictly decreases as slack grows...
    assert all(worst[i] >= worst[i + 1] for i in range(len(worst) - 1))
    # ...roughly like 1/slack.
    assert exponent < -0.5
