"""EXP-W4 — Sections 4-5: stream retrieval vs a B+-tree.

The paper's positioning: "the retrieval of a stream of records with
consecutive key values will be faster in a sequential file than in a
B-tree (because the latter entails much disk arm movement)", while
"update costs are probably somewhat higher under CONTROL 2 than under
B-tree algorithms".  We measure both halves under the disk-arm cost
model:

* both structures take the same mixed update history (which scatters
  the B+-tree's leaf chain physically);
* then streams of increasing length are scanned from random start keys.

Expected shape: B+-tree cheaper per update; dense file cheaper per
scanned record, increasingly so for longer streams.
"""

import random

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_comparison
from repro.baselines.btree import BPlusTree
from repro.storage.cost import DISK_ARM_MODEL
from repro.workloads import run_workload, uniform_random_inserts

NUM_PAGES = 512
D_CAP = 48
KEY_SPACE = 1 << 20
STREAM_LENGTHS = [16, 64, 256, 1024]


def build_both():
    # The B+-tree gets its internal nodes cached in core — the same
    # assumption under which the dense file's calibrator/directory live
    # in memory — so both comparisons below are leaf-I/O against
    # page-I/O, which is the paper's framing.
    dense = Control2Engine(
        DensityParams(num_pages=NUM_PAGES, d=8, D=D_CAP), model=DISK_ARM_MODEL
    )
    tree = BPlusTree(
        fanout=16,
        leaf_capacity=D_CAP,
        model=DISK_ARM_MODEL,
        cache_internal_nodes=True,
    )
    operations = uniform_random_inserts(3000, key_space=KEY_SPACE, seed=17)
    dense_updates = run_workload(dense, operations)
    tree_updates = run_workload(tree, operations)
    return dense, tree, dense_updates, tree_updates


def stream_cost_per_record(structure, length: int, rng) -> float:
    """Mean modelled cost per record over several random streams."""
    total_cost = 0.0
    total_records = 0
    for _ in range(8):
        start = rng.randrange(KEY_SPACE)
        structure.stats.checkpoint("stream")
        got = structure.scan_count(start, length)
        total_cost += structure.stats.delta("stream").cost
        total_records += max(1, len(got))
    return total_cost / total_records


def test_stream_retrieval_crossover(benchmark):
    dense, tree, dense_updates, tree_updates = once(benchmark, build_both)
    rng = random.Random(5)
    dense_costs, tree_costs = [], []
    for length in STREAM_LENGTHS:
        dense_costs.append(stream_cost_per_record(dense, length, rng))
        tree_costs.append(stream_cost_per_record(tree, length, rng))
    emit(
        banner(
            "EXP-W4: stream retrieval cost per record (disk-arm model) "
            "after 3000 random updates"
        ),
        render_comparison(
            "",
            "stream length",
            STREAM_LENGTHS,
            [
                ("dense file", dense_costs),
                ("B+-tree", tree_costs),
                (
                    "btree/dense ratio",
                    [t / d for t, d in zip(tree_costs, dense_costs)],
                ),
            ],
        ),
        f"update cost means: dense={dense_updates.log.costs and sum(dense_updates.log.costs)/len(dense_updates.log.costs):.1f}, "
        f"btree={sum(tree_updates.log.costs)/len(tree_updates.log.costs):.1f}",
    )
    # Long streams: the dense file wins clearly.
    assert dense_costs[-1] < tree_costs[-1]
    assert tree_costs[-1] / dense_costs[-1] > 2.0
    # The advantage grows with stream length.
    ratios = [t / d for t, d in zip(tree_costs, dense_costs)]
    assert ratios[-1] > ratios[0]


def test_update_cost_favors_btree(benchmark):
    """The flip side the paper concedes: B-tree updates are cheaper."""
    dense, tree, dense_updates, tree_updates = once(benchmark, build_both)
    dense_mean = sum(dense_updates.log.costs) / len(dense_updates.log.costs)
    tree_mean = sum(tree_updates.log.costs) / len(tree_updates.log.costs)
    emit(
        banner("EXP-W4b: mean update cost (disk-arm model)"),
        f"  dense file (CONTROL 2): {dense_mean:.1f}",
        f"  B+-tree:                {tree_mean:.1f}",
    )
    assert tree_mean < dense_mean


def test_dense_updates_are_physically_sequential(benchmark):
    """Willard's aside: CONTROL 2 touches consecutive pages "in one fell
    swoop"; its access trace coalesces into long runs, unlike a B-tree's."""

    def run():
        dense = Control2Engine(DensityParams(num_pages=128, d=8, D=48))
        dense.disk.trace.enable()
        tree = BPlusTree(fanout=16, leaf_capacity=48)
        tree.disk.trace.enable()
        operations = uniform_random_inserts(800, key_space=KEY_SPACE, seed=23)
        run_workload(dense, operations)
        run_workload(tree, operations)
        return dense.disk.trace.mean_run_length(), tree.disk.trace.mean_run_length()

    dense_run, tree_run = once(benchmark, run)
    emit(
        f"EXP-W4c: mean sequential run length in the update access trace: "
        f"dense={dense_run:.2f}, btree={tree_run:.2f}"
    )
    assert dense_run > tree_run
