"""EXP-A1 — the J parameter: "typically J should be about 18".

The paper proves J = 90*ceil(log^2 M)/(D-d) suffices, remarks the proof
is loose by at least an order of magnitude ("and probably by 1 1/2
magnitudes"), and says J ~ 18 is typical.  This ablation sweeps J on two
geometries (comfortable slack, and slack barely above 3 log M) under
high-fill adversaries, reporting per J: commands that ended with
BALANCE(d, D) violated, the maximum page fill reached, and the worst
per-command page-access cost (the price of a larger budget).

Measured finding: the smallest violation-free J is 1 on every adversary
we could construct — each SHIFT moves up to a page-sized batch while a
command inserts a single record, so the budget outpaces the inflow by
construction.  The paper's prediction that its constant is loose by
1-1.5 orders of magnitude is confirmed (and then some): the proven
constant is ~2 orders above the measured threshold.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_table
from repro.core.invariants import balance_violations
from repro.workloads import converging_inserts, interleaved_point_inserts

NUM_PAGES = 256
J_VALUES = [1, 2, 3, 4, 6, 8, 12, 18, 27]
COMMANDS = 1500

#: (label, d, D, preload fraction, hot points or None for one point)
SCENARIOS = [
    ("slack 40, one hot point", 8, 48, 0.0, None),
    ("slack 25 (near 3logM=24), 80% full, 8 hot points", 8, 33, 0.80,
     [(1 << 30) * i // 8 + 12345 for i in range(8)]),
]


def violations_for(j: int, d: int, cap_d: int, preload: float, points):
    params = DensityParams(num_pages=NUM_PAGES, d=d, D=cap_d, j=j)
    engine = Control2Engine(params)
    key_space = 1 << 30
    if preload:
        base = int(preload * params.max_records)
        engine.bulk_load(
            k + 0.5 for k in range(0, key_space, key_space // base)
        )
    budget = params.max_records - engine.size - 2
    count = min(COMMANDS, budget)
    if points is None:
        operations = converging_inserts(count)
    else:
        operations = interleaved_point_inserts(count, points=points)
    log = engine.enable_operation_log()
    bad_commands = 0
    max_fill = 0
    for operation in operations:
        engine.insert(operation.key)
        if balance_violations(engine.calibrator, params):
            bad_commands += 1
        max_fill = max(max_fill, max(engine.occupancies()))
    return bad_commands, max_fill, log.worst_case_accesses


def test_j_sweep(benchmark):
    def sweep():
        results = {}
        for label, d, cap_d, preload, points in SCENARIOS:
            results[label] = {
                j: violations_for(j, d, cap_d, preload, points)
                for j in J_VALUES
            }
        return results

    results = once(benchmark, sweep)
    chunks = [banner("EXP-A1: J sweep under high-fill adversaries")]
    for label, d, cap_d, preload, points in SCENARIOS:
        table = results[label]
        rows = [
            [j, bad, fill, worst, "yes" if bad == 0 else "no"]
            for j, (bad, fill, worst) in table.items()
        ]
        chunks.append(
            render_table(
                ["J", "unbalanced commands", "max page fill",
                 "worst accesses/op", "safe"],
                rows,
                title=f"scenario: {label} (d={d}, D={cap_d})",
            )
        )
    params = DensityParams(NUM_PAGES, 8, 48)
    paper_bound = 90 * (params.log_m ** 2) / 40
    chunks.append(
        f"paper's proven-sufficient J: {paper_bound:.0f}; "
        f"paper's 'typical' J: 18; measured violation-free threshold: 1"
    )
    emit(*chunks)

    for label in results:
        table = results[label]
        # Every tested J is violation-free (the measured threshold is 1),
        # confirming the paper's constants are conservative...
        assert all(bad == 0 for bad, _, _ in table.values())
        # ...while larger J monotonically (weakly) raises the worst-case
        # cost ceiling actually paid.
        worsts = [worst for _, _, worst in table.values()]
        assert worsts[-1] >= worsts[0]
        # And no page ever exceeded its capacity D.
        for (scenario_label, d, cap_d, _, _) in SCENARIOS:
            if scenario_label == label:
                assert all(fill <= cap_d for _, fill, _ in table.values())


def test_capacity_respected_at_recommended_j(benchmark):
    """With the default J no page ever exceeds D at command end."""

    def run():
        params = DensityParams(num_pages=NUM_PAGES, d=8, D=48)
        engine = Control2Engine(params)
        worst_fill = 0
        for operation in converging_inserts(COMMANDS):
            engine.insert(operation.key)
            worst_fill = max(worst_fill, max(engine.occupancies()))
        return worst_fill

    worst_fill = once(benchmark, run)
    emit(
        f"EXP-A1b: max page fill at command ends with default J: "
        f"{worst_fill} (D = 48)"
    )
    assert worst_fill <= 48
