"""EXP-A6 — extension ablation: the adaptive shift budget.

Not in the paper: :class:`~repro.core.adaptive.AdaptiveControl2Engine`
spends a small base budget per command and escalates to the full paper
budget only while some warning node sits in the upper half of its
``[g(v, 2/3), g(v, 1)]`` corridor.  This benchmark runs a surge-then-calm
session and compares, against fixed budgets:

* safety — BALANCE violations (must stay 0);
* mean per-command cost in the calm phase (the drain after the surge is
  where the fixed budget over-pays);
* worst per-command cost (the adaptive engine keeps the paper ceiling).
"""

from bench_helpers import banner, emit, once

from repro import AdaptiveControl2Engine, Control2Engine, DensityParams
from repro.analysis import render_table
from repro.core.invariants import balance_violations
from repro.workloads import converging_inserts, uniform_random_inserts

PARAMS = DensityParams(num_pages=256, d=8, D=48)
SURGE = 800
CALM = 800


def run_session(engine):
    log = engine.enable_operation_log()
    violations = 0
    for operation in converging_inserts(SURGE):
        engine.insert(operation.key)
        if balance_violations(engine.calibrator, PARAMS):
            violations += 1
    surge_end = len(log)
    for operation in uniform_random_inserts(CALM, seed=2):
        engine.insert(float(operation.key) + 0.3)
        if balance_violations(engine.calibrator, PARAMS):
            violations += 1
    calm_costs = log.page_accesses[surge_end:]
    return {
        "violations": violations,
        "surge_mean": sum(log.page_accesses[:surge_end]) / surge_end,
        "calm_mean": sum(calm_costs) / len(calm_costs),
        "worst": log.worst_case_accesses,
    }


def test_adaptive_budget(benchmark):
    def sweep():
        contenders = {
            f"fixed J={PARAMS.shift_budget} (paper default)": Control2Engine(
                PARAMS
            ),
            "adaptive (base 1)": AdaptiveControl2Engine(PARAMS, base_budget=1),
            "adaptive (base 2)": AdaptiveControl2Engine(PARAMS, base_budget=2),
        }
        return {name: run_session(engine) for name, engine in contenders.items()}

    results = once(benchmark, sweep)
    rows = [
        [
            name,
            outcome["violations"],
            f"{outcome['surge_mean']:.2f}",
            f"{outcome['calm_mean']:.2f}",
            outcome["worst"],
        ]
        for name, outcome in results.items()
    ]
    emit(
        banner(
            f"EXP-A6 (extension): adaptive vs fixed shift budget "
            f"(M=256, d=8, D=48, {SURGE} surge + {CALM} calm inserts)"
        ),
        render_table(
            ["engine", "violations", "surge mean", "calm mean", "worst"],
            rows,
        ),
    )
    fixed = results[f"fixed J={PARAMS.shift_budget} (paper default)"]
    adaptive = results["adaptive (base 1)"]
    # Everybody stays safe.
    assert all(outcome["violations"] == 0 for outcome in results.values())
    # The adaptive engine is cheaper in the calm/drain phase...
    assert adaptive["calm_mean"] <= fixed["calm_mean"]
    # ...and never exceeds the paper's per-command ceiling.
    bound = 3 * PARAMS.shift_budget + 2 * PARAMS.log_m + 4
    assert adaptive["worst"] <= bound
