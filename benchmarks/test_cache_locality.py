"""EXP-A7 — ablation: update locality under a buffer pool.

Willard's aside that CONTROL 2 "can be programmed to access consecutive
pages in one fell swoop" implies its update traffic should cache far
better than a B-tree's: the SHIFT sweeps touch runs of adjacent pages,
while B-tree updates hop root-to-leaf across scattered node pages.

We record the full page-access trace of the same adversarial update
workload on both structures and replay it through write-back LRU pools
of increasing size, reporting hit rate and effective physical I/O.

The replay methodology itself is validated live: the second experiment
runs the identical workload through a :class:`BufferedStore` — the same
``BufferPool`` promoted into the hot path — and asserts the in-line
counters agree field for field with a replay of the recorded trace.
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import render_table
from repro.baselines.btree import BPlusTree
from repro.storage.backend import BufferedStore, MemoryStore
from repro.storage.bufferpool import miss_curve, replay
from repro.workloads import converging_inserts, run_workload

POOL_SIZES = [2, 4, 8, 16, 32]
OPERATIONS = 1200


def record_traces():
    dense = Control2Engine(DensityParams(num_pages=256, d=8, D=48))
    dense.disk.trace.enable()
    tree = BPlusTree(fanout=16, leaf_capacity=48)
    tree.disk.trace.enable()
    operations = converging_inserts(OPERATIONS)
    run_workload(dense, operations)
    run_workload(tree, operations)
    dense.validate()
    return list(dense.disk.trace), list(tree.disk.trace)


def test_update_cache_locality(benchmark):
    def run():
        dense_trace, tree_trace = record_traces()
        return (
            miss_curve(dense_trace, POOL_SIZES),
            miss_curve(tree_trace, POOL_SIZES),
            len(dense_trace),
            len(tree_trace),
        )

    dense_curve, tree_curve, dense_len, tree_len = once(benchmark, run)
    rows = []
    for size, dense_stats, tree_stats in zip(
        POOL_SIZES, dense_curve, tree_curve
    ):
        rows.append(
            [
                size,
                f"{dense_stats.hit_rate:.3f}",
                f"{tree_stats.hit_rate:.3f}",
                dense_stats.physical_io,
                tree_stats.physical_io,
            ]
        )
    emit(
        banner(
            f"EXP-A7: LRU replay of {OPERATIONS} adversarial updates "
            f"(dense trace {dense_len} accesses, B+-tree {tree_len})"
        ),
        render_table(
            [
                "pool frames",
                "dense hit rate",
                "btree hit rate",
                "dense phys I/O",
                "btree phys I/O",
            ],
            rows,
        ),
    )
    # The fell-swoop effect lives in the minimal-cache regime: with just
    # two frames the dense file's sequential sweeps already hit >90%,
    # while the B+-tree still faults on most leaf hops.
    assert dense_curve[0].hit_rate > 0.9
    assert dense_curve[0].hit_rate > tree_curve[0].hit_rate + 0.2
    assert dense_curve[0].physical_io * 4 < tree_curve[0].physical_io
    # With a handful of frames this adversary lets both structures cache
    # their hot path; the honest observation is that the dense file
    # needs almost no cache at all to get there.
    assert all(stats.hit_rate > 0.9 for stats in dense_curve)
    # Hit rates improve monotonically with pool size for both.
    for curve in (dense_curve, tree_curve):
        rates = [stats.hit_rate for stats in curve]
        assert rates == sorted(rates)


def test_live_cache_agrees_with_replay(benchmark):
    """The live BufferedStore and the trace replay are the same model.

    One run, two meters: the engine executes on a live write-back cache
    while its logical trace is recorded; replaying that trace through a
    fresh pool of the same capacity must land on identical counters.
    Any drift would mean the replay curves above are fiction.
    """

    def run():
        results = []
        for capacity in POOL_SIZES:
            store = BufferedStore(MemoryStore(256), capacity=capacity)
            dense = Control2Engine(
                DensityParams(num_pages=256, d=8, D=48), store=store
            )
            dense.disk.trace.enable()
            run_workload(dense, converging_inserts(OPERATIONS))
            dense.validate()
            store.flush()  # replay() ends with a flush; match it
            replayed = replay(list(dense.disk.trace), capacity)
            results.append((capacity, store.pool_stats, replayed))
        return results

    results = once(benchmark, run)
    rows = []
    for capacity, live, replayed in results:
        for field in (
            "hits", "misses", "evictions", "physical_reads",
            "physical_writes",
        ):
            assert getattr(live, field) == getattr(replayed, field), (
                f"{capacity} frames: live {field}={getattr(live, field)} "
                f"!= replayed {getattr(replayed, field)}"
            )
        rows.append(
            [
                capacity,
                f"{live.hit_rate:.3f}",
                live.physical_io,
                replayed.physical_io,
            ]
        )
    emit(
        banner(
            f"EXP-A7b: live BufferedStore vs trace replay, "
            f"{OPERATIONS} adversarial updates"
        ),
        render_table(
            ["pool frames", "hit rate", "live phys I/O", "replay phys I/O"],
            rows,
        ),
    )
