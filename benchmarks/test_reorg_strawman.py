"""EXP-A3 — Section 1's strawman: complete reorganization per update.

"The main disadvantage of conventional sequential files is ... that they
require complete reorganization after the insertion or deletion of a
single record."  We measure the per-insert page accesses of a fully
packed sequential file as the record count n grows (front-of-file
inserts) against CONTROL 2 at the same page capacity.

Expected shape: packed-file cost grows linearly in n (exponent ~ 1);
CONTROL 2 stays flat (exponent ~ 0).
"""

from bench_helpers import banner, emit, once

from repro import Control2Engine, DensityParams
from repro.analysis import growth_exponent, render_comparison
from repro.baselines.sequential_file import PackedSequentialFile

CAPACITY = 32
SIZES = [256, 1024, 4096]  # records preloaded before the probe inserts
PROBES = 20


def packed_cost(preloaded: int) -> float:
    pages_needed = preloaded // CAPACITY + PROBES + 2
    packed = PackedSequentialFile(num_pages=pages_needed, capacity=CAPACITY)
    packed.bulk_load(range(0, preloaded * 10, 10))
    packed.stats.checkpoint("probe")
    for index in range(PROBES):
        packed.insert(index * 10 + 1)  # near the front: full ripple
    return packed.stats.delta("probe").page_accesses / PROBES


def dense_cost(preloaded: int) -> float:
    num_pages = max(64, preloaded // 8)
    params = DensityParams(num_pages=num_pages, d=16, D=16 + CAPACITY)
    engine = Control2Engine(params)
    engine.bulk_load(range(0, preloaded * 10, 10))
    engine.stats.checkpoint("probe")
    for index in range(PROBES):
        engine.insert(index * 10 + 1)
    engine.validate()
    return engine.stats.delta("probe").page_accesses / PROBES


def test_reorganization_strawman(benchmark):
    def sweep():
        return (
            [packed_cost(n) for n in SIZES],
            [dense_cost(n) for n in SIZES],
        )

    packed, dense = once(benchmark, sweep)
    packed_exp = growth_exponent(SIZES, packed)
    dense_exp = growth_exponent(SIZES, dense)
    emit(
        banner("EXP-A3: per-insert page accesses vs file size n (front inserts)"),
        render_comparison(
            "",
            "n records",
            SIZES,
            [
                ("packed sequential file", packed),
                ("CONTROL 2 dense file", dense),
            ],
        ),
        f"growth exponents: packed={packed_exp:.2f} (theory 1), "
        f"dense={dense_exp:.2f} (theory 0)",
    )
    assert packed_exp > 0.8
    assert dense_exp < 0.3
    assert packed[-1] > 10 * dense[-1]
