"""EXP-W2 — Sections 2-3: amortized parity with the prior art.

The paper's design goal: CONTROL 2's *amortized* time matches the
amortized algorithms of [IKR80, MG78, MG80, Wi81] (represented here by
CONTROL 1 and by a classical packed-memory array) while adding the
worst-case guarantee.  Under uniform random insertions all three should
have comparable mean per-operation cost; only the max column should
differ.
"""

from bench_helpers import banner, emit, once

from repro import Control1Engine, Control2Engine, DensityParams
from repro.analysis import SUMMARY_HEADERS, render_table, summarize
from repro.baselines.pma import PackedMemoryArray
from repro.workloads import run_workload, uniform_random_inserts

NUM_PAGES = 256
D_VALUE = 48
D_SMALL = 8


def build_structures():
    params = DensityParams(num_pages=NUM_PAGES, d=D_SMALL, D=D_VALUE)
    return {
        "CONTROL 1": Control1Engine(params),
        "CONTROL 2": Control2Engine(params),
        "PMA (amortized)": PackedMemoryArray(
            num_pages=NUM_PAGES, capacity=D_VALUE
        ),
    }


def run_parity():
    operations = uniform_random_inserts(1500, seed=21)
    rows = {}
    for name, structure in build_structures().items():
        result = run_workload(structure, operations)
        rows[name] = summarize(result.log.page_accesses)
    return rows


def test_amortized_parity(benchmark):
    rows = once(benchmark, run_parity)
    emit(
        banner(
            "EXP-W2: per-op page accesses, uniform random inserts "
            f"(M={NUM_PAGES}, d={D_SMALL}, D={D_VALUE})"
        ),
        render_table(
            ["structure"] + SUMMARY_HEADERS,
            [[name] + summary.as_row() for name, summary in rows.items()],
        ),
    )
    c1 = rows["CONTROL 1"]
    c2 = rows["CONTROL 2"]
    pma = rows["PMA (amortized)"]
    # Amortized parity: means within a small constant factor of each other.
    assert c2.mean < 4 * c1.mean + 4
    assert c1.mean < 4 * c2.mean + 4
    assert pma.mean < 6 * c2.mean + 6
    # The worst-case column is where CONTROL 2 differs.
    assert c2.maximum <= c1.maximum


def test_amortized_cost_tracks_the_formula(benchmark):
    """Mean cost stays near O(log^2 M / (D - d)) + search overhead."""

    def sweep():
        means = []
        sizes = [64, 256, 1024]
        for num_pages in sizes:
            params = DensityParams(num_pages=num_pages, d=32, D=88)
            engine = Control2Engine(params)
            result = run_workload(
                engine, uniform_random_inserts(1200, seed=3)
            )
            means.append(result.log.amortized_accesses)
        return sizes, means

    sizes, means = once(benchmark, sweep)
    formula = [
        (DensityParams(m, 32, 88).log_m ** 2) / (88 - 32) for m in sizes
    ]
    emit(
        banner("EXP-W2b: amortized accesses vs log^2(M)/(D-d)"),
        "\n".join(
            f"  M={m:>5}  mean={mean:.2f}  log^2M/(D-d)={f:.2f}"
            for m, mean, f in zip(sizes, means, formula)
        ),
    )
    # The mean is dominated by the O(log M) search; the maintenance part
    # should stay within a small constant of the formula.
    for mean, params_m in zip(means, sizes):
        params = DensityParams(params_m, 32, 88)
        search = params.log_m + 2
        maintenance = mean - search
        assert maintenance < 10 * (params.log_m ** 2) / params.slack + 6
