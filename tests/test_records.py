"""Unit tests for the record model."""

import pytest

from repro.records import Record, ensure_record


class TestRecord:
    def test_key_and_value_fields(self):
        record = Record(5, "payload")
        assert record.key == 5
        assert record.value == "payload"

    def test_value_defaults_to_none(self):
        assert Record(1).value is None

    def test_records_are_immutable(self):
        record = Record(1, "a")
        with pytest.raises(AttributeError):
            record.key = 2

    def test_equality_is_structural(self):
        assert Record(1, "a") == Record(1, "a")
        assert Record(1, "a") != Record(1, "b")

    def test_records_unpack_like_tuples(self):
        key, value = Record(3, "x")
        assert (key, value) == (3, "x")


class TestEnsureRecord:
    def test_passes_records_through(self):
        record = Record(1, "a")
        assert ensure_record(record) is record

    def test_coerces_pairs(self):
        assert ensure_record((2, "b")) == Record(2, "b")

    def test_coerces_bare_keys(self):
        assert ensure_record(7) == Record(7, None)

    def test_coerces_string_keys(self):
        assert ensure_record("key").key == "key"

    def test_three_tuples_are_treated_as_bare_keys(self):
        # Only 2-tuples are (key, value) pairs; anything else is a key.
        triple = (1, 2, 3)
        assert ensure_record(triple) == Record(triple, None)
