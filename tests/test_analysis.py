"""Tests for the analysis and reporting helpers."""

import pytest

from repro.analysis import (
    SUMMARY_HEADERS,
    growth_exponent,
    percentile,
    render_comparison,
    render_series,
    render_table,
    summarize,
    tail_profile,
)


class TestSummarize:
    def test_empty_series(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.maximum == 0.0

    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.maximum == 4.0

    def test_percentiles_nearest_rank(self):
        values = list(range(1, 101))
        summary = summarize(values)
        assert summary.p50 == 50.0
        assert summary.p90 == 90.0
        assert summary.p99 == 99.0

    def test_as_row_matches_headers(self):
        row = summarize([1.0, 2.0]).as_row()
        assert len(row) == len(SUMMARY_HEADERS)

    def test_percentile_of_singleton(self):
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([], 0.5) == 0.0


class TestTailProfile:
    def test_uniform_mass(self):
        histogram = tail_profile([1, 2, 3, 4, 5], bins=5)
        assert sum(histogram) == 5

    def test_spike_lands_in_last_bin(self):
        histogram = tail_profile([1] * 99 + [100], bins=10)
        assert histogram[-1] == 1
        assert histogram[0] == 99

    def test_empty_and_zero_series(self):
        assert tail_profile([], bins=4) == [0, 0, 0, 0]
        assert tail_profile([0, 0], bins=4)[0] == 2


class TestGrowthExponent:
    def test_linear_series_has_exponent_one(self):
        xs = [2**k for k in range(4, 10)]
        assert growth_exponent(xs, xs) == pytest.approx(1.0)

    def test_flat_series_has_exponent_zero(self):
        xs = [2**k for k in range(4, 10)]
        assert growth_exponent(xs, [7] * len(xs)) == pytest.approx(0.0)

    def test_quadratic_series(self):
        xs = [2**k for k in range(4, 10)]
        ys = [x * x for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(2.0)

    def test_degenerate_inputs(self):
        assert growth_exponent([1], [1]) == 0.0
        assert growth_exponent([0, 0], [1, 2]) == 0.0


class TestRendering:
    def test_table_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_series_bars_scale(self):
        text = render_series("s", ["x", "y"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_series_with_zero_max(self):
        text = render_series("s", ["x"], [0.0])
        assert "#" not in text

    def test_comparison_columns(self):
        text = render_comparison(
            "cmp", "M", [64, 128], [("a", [1.0, 2.0]), ("b", [3.0, 4.0])]
        )
        header = text.splitlines()[1]
        assert "M" in header and "a" in header and "b" in header
