"""Integration tests: CONTROL 2 under sustained workloads.

Every test drives hundreds of commands and asserts the paper's
guarantees at end-of-command moments: BALANCE(d, D) (hence
(d, D)-density), sequential order, bounded per-command page accesses,
and the absence of defensive fallbacks (stuck shifts).
"""

import pytest

from repro import Control2Engine, DensityParams
from repro.workloads import (
    ascending_inserts,
    converging_inserts,
    descending_inserts,
    interleaved_point_inserts,
    mixed_workload,
    run_workload,
    sawtooth_workload,
    uniform_random_inserts,
    zipf_region_inserts,
)

WORKLOADS = {
    "uniform": lambda n: uniform_random_inserts(n, seed=1),
    "ascending": lambda n: ascending_inserts(n),
    "descending": lambda n: descending_inserts(n),
    "converging": lambda n: converging_inserts(n),
    "converging_below": lambda n: converging_inserts(n, from_above=False),
    "mixed": lambda n: mixed_workload(n, seed=2),
    "sawtooth": lambda n: sawtooth_workload(n, seed=3),
    "zipf": lambda n: zipf_region_inserts(n, seed=4),
    "two_hot_points": lambda n: interleaved_point_inserts(
        n, points=[100, 900]
    ),
    "four_hot_points": lambda n: interleaved_point_inserts(
        n, points=[100, 300, 600, 900], seed=5
    ),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_invariants_hold_throughout(name):
    params = DensityParams(num_pages=64, d=8, D=40)
    engine = Control2Engine(params)
    operations = WORKLOADS[name](min(500, params.max_records))
    result = run_workload(engine, operations, validate_every=50)
    assert result.validations > 0
    assert engine.stuck_shifts == 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_per_command_cost_is_bounded(name):
    """Worst-case accesses stay O(J): each of the J shifts touches O(1)
    pages and the search adds O(log M)."""
    params = DensityParams(num_pages=64, d=8, D=40)
    engine = Control2Engine(params)
    operations = WORKLOADS[name](min(500, params.max_records))
    result = run_workload(engine, operations)
    bound = 3 * params.shift_budget + 2 * params.log_m + 4
    assert result.log.worst_case_accesses <= bound


def test_fill_to_exact_capacity_and_drain():
    params = DensityParams(num_pages=16, d=4, D=20)
    engine = Control2Engine(params)
    for key in range(params.max_records):
        engine.insert(key)
    engine.validate()
    assert len(engine) == params.max_records
    for key in range(params.max_records):
        engine.delete(key)
    engine.validate()
    assert len(engine) == 0
    assert engine.warning_nodes() == []


def test_insert_beyond_capacity_raises():
    from repro.core.errors import FileFullError

    params = DensityParams(num_pages=16, d=4, D=20)
    engine = Control2Engine(params)
    for key in range(params.max_records):
        engine.insert(key)
    with pytest.raises(FileFullError):
        engine.insert(10**9)


def test_delete_missing_key_raises_and_leaves_state_clean():
    from repro.core.errors import RecordNotFoundError

    params = DensityParams(num_pages=16, d=4, D=20)
    engine = Control2Engine(params)
    engine.insert(1)
    with pytest.raises(RecordNotFoundError):
        engine.delete(2)
    engine.validate()
    assert len(engine) == 1


def test_duplicate_insert_raises():
    from repro.core.errors import DuplicateKeyError

    params = DensityParams(num_pages=16, d=4, D=20)
    engine = Control2Engine(params)
    engine.insert(5)
    with pytest.raises(DuplicateKeyError):
        engine.insert(5)


def test_set_semantics_match_a_model():
    """Model-based check against a plain Python set/sorted list."""
    import random

    params = DensityParams(num_pages=32, d=4, D=24)
    engine = Control2Engine(params)
    rng = random.Random(99)
    model = set()
    for _ in range(600):
        key = rng.randrange(200)
        if key in model:
            if rng.random() < 0.5:
                engine.delete(key)
                model.discard(key)
            continue
        if len(model) >= params.max_records:
            continue
        engine.insert(key)
        model.add(key)
    stored = [record.key for record in engine.pagefile.iter_all()]
    assert stored == sorted(model)
    engine.validate()


def test_search_and_scans_agree_with_contents():
    params = DensityParams(num_pages=32, d=4, D=24)
    engine = Control2Engine(params)
    keys = list(range(0, 100, 3))
    for key in keys:
        engine.insert(key, value=key * 2)
    assert engine.search(9).value == 18
    assert engine.search(10) is None
    assert [r.key for r in engine.range_scan(10, 30)] == [12, 15, 18, 21, 24, 27, 30]
    assert [r.key for r in engine.scan_count(50, 4)] == [51, 54, 57, 60]


def test_worst_case_below_control1_on_adversary():
    """The headline contrast, in miniature."""
    from repro import Control1Engine

    params = DensityParams(num_pages=128, d=8, D=48)
    adversary = converging_inserts(700)
    worst = {}
    for cls in (Control1Engine, Control2Engine):
        engine = cls(params)
        result = run_workload(engine, adversary)
        worst[cls.__name__] = result.log.worst_case_accesses
    assert worst["Control2Engine"] < worst["Control1Engine"]


def test_moments_fire_in_figure2_order():
    params = DensityParams(num_pages=16, d=4, D=20, j=2)
    engine = Control2Engine(params)
    seen = []
    engine.moment_listener = lambda kind, _: seen.append(kind)
    engine.insert(1)
    assert seen[:3] == ["1", "2", "3"]
    iteration = seen[3:]
    # Each executed iteration appends "4a"; "4b"/"4c" only when a target
    # was selected.
    assert iteration[0] == "4a"


def test_operation_log_moved_counts_records():
    params = DensityParams(num_pages=64, d=8, D=40)
    engine = Control2Engine(params)
    log = engine.enable_operation_log()
    for op in converging_inserts(200):
        engine.insert(op.key)
    assert sum(log.records_moved) == engine.records_moved_total
    assert engine.records_moved_total > 0
