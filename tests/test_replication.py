"""Replication contracts: WAL shipping, replay, promote-on-crash.

Five contracts, the central one swept with Hypothesis-drawn crash
schedules:

* **Log format** — v2 journal frames carry a durable LSN that survives
  commit, apply-retirement and recovery (including torn tails).
* **Transport** — both transports (in-process queue, shipping
  directory) deliver committed records in order exactly once, and the
  directory transport refuses undecodable frames loudly.
* **Replica replay** — shipped records apply crash-atomically under
  the primary's sequence numbers; duplicates are idempotent, gaps are
  refused with :class:`StaleReplicaError`, and a replica that died
  mid-apply recovers on construction.
* **Promote-on-crash** (the property harness) — for *every* seeded
  crash point of the primary, promoting the replica yields a file
  whose record stream equals a committed prefix of the primary's
  history, verified against the commit-time digest recorder, and the
  promoted file is immediately writable and valid.
* **SLO soak** — a short :func:`repro.replication.run_soak` run under
  forced failovers finishes clean and emits a valid repro-bench/1
  report; the ``repro soak`` CLI wraps it with exit codes.
"""

import io
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.errors import ReplicationError, StaleReplicaError
from repro.persistent import JournaledDenseFile
from repro.replication import (
    DirectoryTransport,
    Failover,
    QueueTransport,
    Replica,
    SoakConfig,
    bootstrap_replica,
    run_soak,
)
from repro.replication.failover import file_digest, records_digest
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.ondisk import StorageError
from repro.storage.wal import (
    TransactionJournal,
    TransactionRecord,
    journal_state,
)

GEOMETRY = dict(num_pages=16, d=8, D=28)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def make_transport(kind, tmp_path):
    if kind == "queue":
        return QueueTransport()
    return DirectoryTransport(str(tmp_path / "ship"))


def make_pair(tmp_path, transport, seed_keys=range(0, 40, 2), injector=None):
    primary = JournaledDenseFile.create(
        str(tmp_path / "a.dsf"), injector=injector, **GEOMETRY
    )
    primary.insert_many(seed_keys)
    replica = bootstrap_replica(primary, str(tmp_path / "b.dsf"))
    return primary, replica, Failover(primary, replica, transport)


# ---------------------------------------------------------------------------
# log format: LSNs in the v2 journal
# ---------------------------------------------------------------------------


class TestTransactionRecord:
    def test_encode_decode_roundtrip(self):
        record = TransactionRecord(7, {3: b"abc", 1: b"xyzzy"})
        assert TransactionRecord.decode(record.encode()) == record

    def test_decode_refuses_torn_frame(self):
        encoded = TransactionRecord(7, {3: b"abc"}).encode()
        with pytest.raises(StorageError):
            TransactionRecord.decode(encoded[:-3])

    def test_encode_matches_journal_bytes(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j.journal"))
        journal.write_transaction({5: b"hello", 2: b"world"})
        with open(journal.path, "rb") as handle:
            raw = handle.read()
        record = TransactionRecord.decode(raw)
        assert record.sequence == 1
        assert record.pages == {5: b"hello", 2: b"world"}
        assert record.encode() == raw


class TestJournalSequence:
    def test_sequence_advances_and_survives_retirement(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j.journal"))
        assert journal.sequence == 0
        journal.write_transaction({0: b"a"})
        journal.write_transaction({1: b"b"})
        assert journal.sequence == 2
        journal.mark_applied()
        assert not journal.exists()
        # The applied image keeps the LSN durable across reopen.
        assert TransactionJournal(journal.path).sequence == 2

    def test_recover_pending_keeps_sequence(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j.journal"))
        journal.write_transaction({0: b"a"})
        reopened = TransactionJournal(journal.path)
        assert reopened.sequence == 1
        assert reopened.recover() == {0: b"a"}

    def test_torn_tail_recovers_to_previous_lsn(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j.journal"))
        journal.write_transaction({0: b"a"})
        journal.mark_applied()
        journal.write_transaction({1: b"b"})
        with open(journal.path, "r+b") as handle:
            handle.truncate(os.path.getsize(journal.path) - 4)
        reopened = TransactionJournal(journal.path)
        assert reopened.recover() is None  # torn tail discarded
        assert reopened.sequence == 1  # ...but the LSN did not rewind
        assert not reopened.exists()

    def test_stamp_applied_never_rewinds(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j.journal"))
        journal.stamp_applied(9)
        journal.stamp_applied(4)
        assert TransactionJournal(journal.path).sequence == 9

    def test_journal_state_describes_lifecycle(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "f.dsf.journal"))
        path = str(tmp_path / "f.dsf")
        assert journal_state(path).clean
        journal.write_transaction({0: b"a"})
        state = journal_state(path)
        assert state.pending and state.durable_sequence == 1
        assert "pending replay" in state.describe()
        journal.mark_applied()
        state = journal_state(path)
        assert state.clean and state.applied_retained
        assert "durable LSN 1" in state.describe()


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["queue", "directory"])
class TestTransports:
    def test_publish_poll_ack_ordering(self, kind, tmp_path):
        transport = make_transport(kind, tmp_path)
        records = [TransactionRecord(n, {0: bytes([n])}) for n in (1, 2, 3)]
        for record in records:
            transport.publish(record)
        assert transport.latest_sequence() == 3
        assert transport.poll(0) == records
        assert transport.poll(1, limit=1) == [records[1]]
        transport.ack(2)
        assert transport.poll(0) == [records[2]]
        transport.ack(3)
        assert transport.poll(0) == []


class TestDirectoryTransport:
    def test_undecodable_frame_is_refused(self, tmp_path):
        transport = DirectoryTransport(str(tmp_path / "ship"))
        transport.publish(TransactionRecord(1, {0: b"a"}))
        with open(os.path.join(str(tmp_path / "ship"), f"{2:020d}.txn"), "wb") as f:
            f.write(b"garbage")
        with pytest.raises(ReplicationError):
            transport.poll(0)

    def test_survives_process_restart(self, tmp_path):
        directory = str(tmp_path / "ship")
        DirectoryTransport(directory).publish(TransactionRecord(1, {0: b"a"}))
        fresh = DirectoryTransport(directory)
        assert fresh.poll(0)[0].sequence == 1


# ---------------------------------------------------------------------------
# replica replay
# ---------------------------------------------------------------------------


class TestReplicaReplay:
    def test_ship_apply_read(self, tmp_path):
        primary, replica, pair = make_pair(tmp_path, QueueTransport())
        primary.insert(777, "shipped")
        assert pair.lag() == 1
        pair.sync()
        assert pair.lag() == 0
        assert replica.search(777).value == "shipped"
        sequence, records = replica.snapshot()
        assert sequence == primary.durable_sequence
        assert records_digest(records) == file_digest(primary)
        replica.close()
        primary.close()

    def test_duplicates_are_idempotent_and_gaps_refused(self, tmp_path):
        primary, replica, pair = make_pair(tmp_path, QueueTransport())
        primary.insert(100)
        record = pair.transport.poll(0)[0]
        assert replica.apply(record) is True
        assert replica.apply(record) is False
        assert replica.duplicates_skipped == 1
        gap = TransactionRecord(record.sequence + 5, record.pages)
        with pytest.raises(StaleReplicaError):
            replica.apply(gap)
        replica.close()
        primary.close()

    def test_bootstrap_refuses_dirty_primary(self, tmp_path):
        primary = JournaledDenseFile.create(str(tmp_path / "a.dsf"), **GEOMETRY)
        with primary.transaction():
            primary.insert(1)
            with pytest.raises(ReplicationError):
                bootstrap_replica(primary, str(tmp_path / "b.dsf"))
        primary.close()

    def test_replica_crash_mid_apply_recovers(self, tmp_path):
        primary, replica, pair = make_pair(tmp_path, QueueTransport())
        primary.insert(500, "durable")
        record = pair.transport.poll(0)[0]
        # Simulate a replica that journaled the shipped record and died
        # before touching its store: the pages sit committed in its own
        # journal, nothing applied.
        replica.journal.write_transaction(
            record.pages, sequence=record.sequence
        )
        replica.close()
        recovered = Replica(replica.path)
        assert recovered.applied_sequence == record.sequence
        assert recovered.search(500).value == "durable"
        recovered.close()
        primary.close()

    def test_promoted_handle_is_retired(self, tmp_path):
        primary, replica, pair = make_pair(tmp_path, QueueTransport())
        pair.sync()
        promoted = replica.promote()
        with pytest.raises(StaleReplicaError):
            replica.search(0)
        with pytest.raises(StaleReplicaError):
            replica.snapshot()
        promoted.insert(990)  # promoted primary is writable
        promoted.validate()
        promoted.close()
        primary.close()


# ---------------------------------------------------------------------------
# promote-on-crash: the crash/recovery property harness
# ---------------------------------------------------------------------------


def _crash_workload(primary, plan):
    """Drive mixed writes until the seeded crash fires (or they finish)."""
    try:
        for key in range(100, 160, 4):
            primary.insert(key)
        for key in range(0, 40, 8):
            primary.delete(key)
        with primary.transaction():
            primary.insert(701)
            primary.insert(702)
            primary.delete_range(20, 30)
    except SimulatedCrash:
        return True
    return False


@pytest.mark.parametrize("kind", ["queue", "directory"])
class TestPromoteOnCrash:
    @given(crash_point=st.integers(0, 90), seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_promoted_state_is_a_committed_prefix(
        self, kind, crash_point, seed, tmp_path_factory
    ):
        """At every seeded crash boundary the promoted replica equals
        the primary's committed state at the promoted LSN — the
        digest recorder proves it, and the promoted file is writable."""
        tmp_path = tmp_path_factory.mktemp("crash")
        plan = FaultPlan(seed=seed)
        transport = make_transport(kind, tmp_path)
        primary, replica, pair = make_pair(
            tmp_path, transport, injector=plan
        )
        pair.sync()
        synced_lsn = replica.applied_sequence
        plan.arm(crash_point)
        crashed = _crash_workload(primary, plan)
        plan.disarm()
        primary._raw.close()

        result = pair.promote_after_crash()
        assert result.finding is None, result.finding
        assert result.verified
        assert result.sequence >= synced_lsn
        if not crashed:
            # No crash: every commit shipped, nothing may be lost.
            assert result.sequence == primary.durable_sequence
        promoted = result.promoted
        promoted.validate()
        promoted.insert(99_991)
        promoted.validate()
        promoted.close()
        assert plan.crashes == (1 if crashed else 0)


# ---------------------------------------------------------------------------
# the SLO soak + CLI
# ---------------------------------------------------------------------------


class TestSoak:
    def test_short_soak_with_forced_failovers_is_clean(self, tmp_path):
        report = run_soak(
            SoakConfig(
                workdir=str(tmp_path),
                seconds=2.5,
                seed=11,
                crash_every=30,
            )
        )
        assert report.clean, report.findings
        assert report.failovers >= 1
        assert report.primary_writes > 0 and report.replica_reads > 0
        assert report.consistency_checks > 0

    def test_bench_report_is_valid_and_serializable(self, tmp_path):
        from repro.benchmark import validate_report

        report = run_soak(
            SoakConfig(workdir=str(tmp_path), seconds=1.0, seed=3)
        )
        payload = report.to_bench_report()
        assert validate_report(payload) == []
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schema"] == "repro-bench/1"
        assert {cell["scenario"] for cell in payload["results"]} == {
            "soak-primary-write", "soak-primary-read", "soak-replica-read",
        }

    def test_config_validation(self, tmp_path):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SoakConfig(workdir=str(tmp_path), transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            SoakConfig(workdir=str(tmp_path), seconds=0)

    def test_cli_soak_writes_report(self, tmp_path):
        out_path = str(tmp_path / "soak.json")
        code, text = run_cli(
            "soak", "--seconds", "1", "--seed", "5",
            "--workdir", str(tmp_path / "work"), "--out", out_path,
        )
        assert code == 0
        assert "soak verdict: clean" in text
        payload = json.load(open(out_path))
        assert payload["schema"] == "repro-bench/1"


class TestReplicaReadsStress:
    def test_schedule_is_prefix_consistent(self, tmp_path):
        from repro.concurrent.harness import (
            ReplicaStressConfig,
            run_replica_stress,
        )

        report = run_replica_stress(
            ReplicaStressConfig(
                path=str(tmp_path / "p.dsf"), total_ops=80, seed=5
            )
        )
        assert report.ok, report.violations
        assert report.snapshots_checked > 0
        assert report.final_lag == 0
        assert report.records_applied == report.records_shipped

    def test_cli_replica_reads(self):
        code, text = run_cli(
            "stress", "--replica-reads", "--ops", "60", "--seed", "1"
        )
        assert code == 0
        assert "replica-stress" in text and "CLEAN" in text


# ---------------------------------------------------------------------------
# CLI state reporting (info / verify)
# ---------------------------------------------------------------------------


class TestCliJournalState:
    @pytest.fixture
    def journaled(self, tmp_path):
        path = str(tmp_path / "f.dsf")
        code, _ = run_cli(
            "create", path, "--pages", "32", "--low-density", "4",
            "--capacity", "24",
        )
        assert code == 0
        code, _ = run_cli("put", path, "42", "answer")
        assert code == 0
        return path

    def test_verify_reports_durable_lsn(self, journaled):
        code, text = run_cli("verify", journaled)
        assert code == 0
        assert "ok:" in text
        assert "durable LSN 1" in text

    def test_info_reports_wal_state(self, journaled):
        code, text = run_cli("info", journaled)
        assert code == 0
        assert "durable LSN 1" in text

    def test_pending_replay_reported_not_errored(self, journaled):
        # A committed-but-unapplied journal: the plain backend cannot
        # replay it, but must *report* that instead of the error path.
        TransactionJournal(journaled + ".journal").write_transaction(
            {0: b"x" * 32}
        )
        for command in ("verify", "info"):
            code, text = run_cli(command, journaled, "--backend", "disk")
            assert code == 6
            assert "pending replay" in text
            assert "journaled backend" in text
