"""Tests for the CLI's order-statistics, compact and atomicity behavior."""

import io
import os

import pytest

from repro.cli import main


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def created(tmp_path):
    path = str(tmp_path / "cli-ext.dsf")
    code, _ = run(
        "create", path, "--pages", "64", "--low-density", "8",
        "--capacity", "40",
    )
    assert code == 0
    run("load", path, "--keys", "0:100:2")
    return path


class TestOrderStatisticsCommands:
    def test_rank(self, created):
        code, output = run("rank", created, "10")
        assert code == 0
        assert output.strip() == "5"

    def test_rank_of_absent_key(self, created):
        code, output = run("rank", created, "11")
        assert output.strip() == "6"

    def test_count(self, created):
        code, output = run("count", created, "--lo", "10", "--hi", "20")
        assert code == 0
        assert output.strip() == "6"

    def test_count_empty_window(self, created):
        code, output = run("count", created, "--lo", "1000", "--hi", "2000")
        assert output.strip() == "0"


class TestCompactCommand:
    def test_compact_reports_pages(self, created):
        run("delete-range", created, "--lo", "0", "--hi", "60")
        code, output = run("compact", created)
        assert code == 0
        assert "rewrote 64 pages" in output
        code, _ = run("verify", created)
        assert code == 0

    def test_compact_preserves_contents(self, created):
        _, before = run("range", created, "--lo", "0", "--hi", "98")
        run("compact", created)
        _, after = run("range", created, "--lo", "0", "--hi", "98")
        assert after == before


class TestCrashSafetyOfCli:
    def test_cli_files_carry_no_journal_after_clean_ops(self, created):
        run("put", created, "1001", "x")
        assert not os.path.exists(created + ".journal")

    def test_committed_journal_recovered_transparently(self, created):
        """A leftover committed journal is replayed by the next command."""
        from repro.persistent import JournaledDenseFile
        from repro.storage.packed import encode_records_image

        with JournaledDenseFile.open(created) as dense:
            page = dense.engine.pagefile.nonempty_pages()[0]
            victims = dense.engine.pagefile.page(page).records()
            dense.journal.write_transaction(
                {page: encode_records_image([])}
            )
        # The journal says "that page is now empty" and is committed;
        # the next CLI command must replay it before serving.
        code, output = run("rank", created, str(10**9))
        assert code == 0
        assert int(output.strip()) == 50 - len(victims)

    def test_plain_persistent_refuses_pending_journal(self, created):
        from repro.core.errors import ReproError
        from repro.persistent import JournaledDenseFile, PersistentDenseFile
        from repro.storage.packed import encode_records_image

        with JournaledDenseFile.open(created) as dense:
            dense.journal.write_transaction(
                {1: encode_records_image([])}
            )
        with pytest.raises(ReproError, match="journal"):
            PersistentDenseFile.open(created)
        # Cleanup so other tests can reopen.
        os.unlink(created + ".journal")
