"""Unit tests for the in-memory page."""

import pytest

from repro.core.errors import DuplicateKeyError, RecordNotFoundError
from repro.records import Record
from repro.storage.page import Page


def make_page(*keys):
    return Page(Record(key) for key in keys)


class TestPageBasics:
    def test_starts_empty(self):
        page = Page()
        assert page.is_empty
        assert len(page) == 0

    def test_insert_keeps_key_order(self):
        page = make_page(5, 1, 3)
        assert [record.key for record in page] == [1, 3, 5]

    def test_min_and_max_key(self):
        page = make_page(4, 2, 9)
        assert page.min_key == 2
        assert page.max_key == 9

    def test_duplicate_insert_raises(self):
        page = make_page(1)
        with pytest.raises(DuplicateKeyError):
            page.insert(Record(1))

    def test_contains_and_get(self):
        page = make_page(1, 2)
        assert page.contains(2)
        assert not page.contains(3)
        assert page.get(2) == Record(2)
        assert page.get(3) is None

    def test_remove_returns_the_record(self):
        page = Page([Record(1, "a"), Record(2, "b")])
        assert page.remove(1) == Record(1, "a")
        assert [record.key for record in page] == [2]

    def test_remove_missing_raises(self):
        page = make_page(1)
        with pytest.raises(RecordNotFoundError):
            page.remove(99)

    def test_replace_swaps_value_in_place(self):
        page = Page([Record(1, "old")])
        old = page.replace(Record(1, "new"))
        assert old.value == "old"
        assert page.get(1).value == "new"

    def test_replace_missing_raises(self):
        page = make_page(1)
        with pytest.raises(RecordNotFoundError):
            page.replace(Record(2, "x"))

    def test_records_returns_a_copy(self):
        page = make_page(1)
        snapshot = page.records()
        snapshot.append(Record(99))
        assert len(page) == 1


class TestPageBatchMoves:
    def test_take_lowest(self):
        page = make_page(1, 2, 3, 4)
        taken = page.take_lowest(2)
        assert [record.key for record in taken] == [1, 2]
        assert [record.key for record in page] == [3, 4]

    def test_take_highest(self):
        page = make_page(1, 2, 3, 4)
        taken = page.take_highest(3)
        assert [record.key for record in taken] == [2, 3, 4]
        assert [record.key for record in page] == [1]

    def test_take_more_than_available(self):
        page = make_page(1, 2)
        assert len(page.take_lowest(10)) == 2
        assert page.is_empty

    def test_take_zero(self):
        page = make_page(1)
        assert page.take_highest(0) == []
        assert len(page) == 1

    def test_extend_low_prepends(self):
        page = make_page(10, 20)
        page.extend_low([Record(1), Record(2)])
        assert [record.key for record in page] == [1, 2, 10, 20]

    def test_extend_high_appends(self):
        page = make_page(1, 2)
        page.extend_high([Record(10), Record(20)])
        assert [record.key for record in page] == [1, 2, 10, 20]

    def test_extend_low_rejects_order_violation(self):
        page = make_page(5)
        with pytest.raises(ValueError):
            page.extend_low([Record(7)])

    def test_extend_high_rejects_order_violation(self):
        page = make_page(5)
        with pytest.raises(ValueError):
            page.extend_high([Record(3)])

    def test_extend_into_empty_page(self):
        page = Page()
        page.extend_high([Record(1)])
        page.extend_low([Record(0)])
        assert [record.key for record in page] == [0, 1]

    def test_clear_returns_everything(self):
        page = make_page(3, 1)
        cleared = page.clear()
        assert [record.key for record in cleared] == [1, 3]
        assert page.is_empty
