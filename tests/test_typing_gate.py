"""The strict-typing ratchet stays ratcheted.

``storage/`` and ``concurrent/`` are the strict packages (see
``[tool.mypy]`` in pyproject.toml); the AST gate in tools/typecheck.py
enforces annotation completeness there without needing mypy installed.
When mypy *is* available (the CI lint job installs it), the full
checker runs too.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
TOOLS = os.path.join(REPO, "tools")

sys.path.insert(0, TOOLS)
import typecheck  # noqa: E402

sys.path.remove(TOOLS)


def test_strict_packages_are_fully_annotated():
    problems = typecheck.ast_gate()
    assert problems == [], "\n".join(problems)


def test_ast_gate_catches_missing_annotations(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bad.py").write_text(
        "def incomplete(x) -> int:\n    return x\n"
        "def no_return(y: int):\n    return y\n"
    )
    problems = typecheck.ast_gate(packages=("pkg",), repo=str(tmp_path))
    assert len(problems) == 2
    assert "missing annotations for x" in problems[0]
    assert "missing a return annotation" in problems[1]


def test_typecheck_cli_is_clean_in_ast_mode():
    result = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "typecheck.py"), "--ast-only"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "AST gate clean" in result.stdout


@pytest.mark.skipif(
    not typecheck.mypy_available(), reason="mypy not installed here; CI runs it"
)
def test_mypy_passes_the_configured_strictness():
    assert typecheck.run_mypy() == 0
