"""Unit tests for the invariant checkers (including failure detection)."""

import pytest

from repro import Control2Engine, DensityParams
from repro.core.errors import InvariantViolationError
from repro.core.invariants import (
    balance_violations,
    check_balance,
    check_counters,
    check_density,
    check_directory,
    check_engine,
    check_sequential_order,
    check_warning_flags,
)
from repro.records import Record
from repro.storage.pagefile import PageFile


@pytest.fixture
def params():
    return DensityParams(num_pages=8, d=9, D=18, j=3)


class TestSequentialOrder:
    def test_accepts_ordered_file(self):
        pf = PageFile(4)
        pf.load_page(1, [Record(1), Record(2)])
        pf.load_page(3, [Record(5)])
        check_sequential_order(pf)

    def test_detects_cross_page_inversion(self):
        pf = PageFile(4)
        pf.load_page(1, [Record(10)])
        pf.load_page(3, [Record(5)])
        with pytest.raises(InvariantViolationError, match="sequential order"):
            check_sequential_order(pf)

    def test_detects_duplicate_keys_across_pages(self):
        pf = PageFile(4)
        pf.load_page(1, [Record(5)])
        pf.load_page(2, [Record(5)])
        with pytest.raises(InvariantViolationError):
            check_sequential_order(pf)

    def test_empty_file_is_ordered(self):
        check_sequential_order(PageFile(4))


class TestDensity:
    def test_accepts_within_bounds(self, params):
        pf = PageFile(8)
        pf.load_page(1, [Record(k) for k in range(18)])
        check_density(pf, params)

    def test_detects_page_over_capacity(self, params):
        pf = PageFile(8)
        pf.load_page(1, [Record(k) for k in range(19)])
        with pytest.raises(InvariantViolationError, match="exceeding D"):
            check_density(pf, params)

    def test_detects_total_over_cap(self):
        params = DensityParams(num_pages=2, d=1, D=5)
        pf = PageFile(2)
        pf.load_page(1, [Record(1), Record(2)])
        pf.load_page(2, [Record(3)])
        with pytest.raises(InvariantViolationError, match="d\\*M"):
            check_density(pf, params)


class TestBalance:
    def test_accepts_balanced_tree(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([9] * 8)
        check_balance(engine.calibrator, params)

    def test_detects_leaf_violation(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([9] * 8)
        # Force a leaf counter over g(leaf, 1) = D = 18 behind the
        # algorithm's back.
        engine.calibrator.add(1, 10)
        violations = balance_violations(engine.calibrator, params)
        assert violations
        with pytest.raises(InvariantViolationError, match="BALANCE"):
            check_balance(engine.calibrator, params)

    def test_figure_1_example_is_balanced(self):
        """The paper's Figure 1: 4 pages, d=2, D=3, counts [3,2,1,2]."""
        params = DensityParams(num_pages=4, d=2, D=3, j=1)
        from repro.core.calibrator import CalibratorTree

        tree = CalibratorTree(4)
        for page, count in enumerate([3, 2, 1, 2], start=1):
            tree.add(page, count)
        assert balance_violations(tree, params) == []


class TestCounters:
    def test_detects_desync(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([9] * 8)
        engine.calibrator.count[engine.calibrator.root] += 1
        with pytest.raises(InvariantViolationError, match="rank counter"):
            check_counters(engine.pagefile, engine.calibrator)


class TestDirectory:
    def test_detects_stale_directory(self):
        pf = PageFile(4)
        pf.load_page(2, [Record(1)])
        pf._nonempty.append(4)  # sabotage
        pf._mins.append(99)
        with pytest.raises(InvariantViolationError, match="directory"):
            check_directory(pf)


class TestWarningFlags:
    def test_fact_51a_detected(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([2] * 8)
        leaf = engine.calibrator.leaf_of_page[1]
        engine.calibrator.set_flag(leaf, True)
        engine.destinations[leaf] = 2
        with pytest.raises(InvariantViolationError, match="5.1\\(a\\)"):
            check_warning_flags(engine)

    def test_fact_51b_detected(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([17, 0, 0, 0, 0, 0, 0, 0])
        # p(L1) = 17 >= g(L1, 2/3) = 17 but no warning raised.
        with pytest.raises(InvariantViolationError, match="5.1\\(b\\)"):
            check_warning_flags(engine)

    def test_warning_without_dest_detected(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([17, 0, 0, 0, 0, 0, 0, 0])
        leaf = engine.calibrator.leaf_of_page[1]
        engine.calibrator.set_flag(leaf, True)
        with pytest.raises(InvariantViolationError, match="DEST"):
            check_warning_flags(engine)

    def test_dest_outside_father_range_detected(self, params):
        engine = Control2Engine(params)
        engine.load_occupancies([17, 0, 0, 0, 0, 0, 0, 0])
        leaf = engine.calibrator.leaf_of_page[1]
        engine.calibrator.set_flag(leaf, True)
        engine.destinations[leaf] = 7  # f(L1) = [1,2]
        with pytest.raises(InvariantViolationError, match="outside RANGE"):
            check_warning_flags(engine)


class TestCheckEngine:
    def test_accepts_a_live_engine(self, params):
        engine = Control2Engine(params)
        for key in range(40):
            engine.insert(key)
        check_engine(engine)

    def test_detects_size_desync(self, params):
        engine = Control2Engine(params)
        engine.insert(1)
        engine.size += 1
        with pytest.raises(InvariantViolationError, match="size"):
            check_engine(engine)
