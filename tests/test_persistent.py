"""Tests for the durable dense sequential file."""

import pytest

from repro.core.errors import ConfigurationError, InvariantViolationError
from repro.persistent import PersistentDenseFile
from repro.storage.ondisk import HEADER, SLOT_HEADER
from repro.workloads import converging_inserts, mixed_workload


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "dense.dsf")


class TestLifecycle:
    def test_create_insert_reopen_search(self, path):
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            f.insert(1, "one")
            f.insert(2, "two")
        with PersistentDenseFile.open(path) as f:
            assert f.search(1).value == "one"
            assert f.search(2).value == "two"
            assert len(f) == 2

    def test_geometry_survives_reopen(self, path):
        PersistentDenseFile.create(path, num_pages=64, d=8, D=40, j=21).close()
        with PersistentDenseFile.open(path) as f:
            assert f.params.num_pages == 64
            assert f.params.d == 8
            assert f.params.D == 40
            assert f.params.shift_budget == 21

    def test_default_j_survives_as_default(self, path):
        PersistentDenseFile.create(path, num_pages=64, d=8, D=40).close()
        with PersistentDenseFile.open(path) as f:
            from repro.core.params import recommended_j

            assert f.params.shift_budget == recommended_j(64, 32)

    def test_control1_files(self, path):
        with PersistentDenseFile.create(
            path, num_pages=64, d=8, D=40, algorithm="control1"
        ) as f:
            f.insert(5)
        with PersistentDenseFile.open(path) as f:
            assert f.engine.algorithm_name == "CONTROL 1"
            assert 5 in f

    def test_slack_condition_enforced(self, path):
        with pytest.raises(ConfigurationError):
            PersistentDenseFile.create(path, num_pages=64, d=8, D=12)

    def test_unknown_algorithm_rejected(self, path):
        with pytest.raises(ConfigurationError):
            PersistentDenseFile.create(
                path, num_pages=64, d=8, D=40, algorithm="btree"
            )


class TestDurability:
    def test_full_workload_roundtrip(self, path):
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            for op in mixed_workload(400, seed=3):
                if op.kind == "insert":
                    f.insert(op.key, op.key * 2)
                else:
                    f.delete(op.key)
            f.validate()
            expected = [(r.key, r.value) for r in f.range(-1, 1 << 62)]
            occupancies = f.occupancies()
        with PersistentDenseFile.open(path) as f:
            f.validate()
            assert f.occupancies() == occupancies
            assert [(r.key, r.value) for r in f.range(-1, 1 << 62)] == expected

    def test_updates_continue_after_reopen(self, path):
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            for key in range(100):
                f.insert(key)
        with PersistentDenseFile.open(path) as f:
            for key in range(100, 200):
                f.insert(key)
            for key in range(0, 100, 2):
                f.delete(key)
            f.validate()
            assert len(f) == 150

    def test_warning_flags_rebuilt_on_open(self, path):
        """A file closed mid-surge reopens with Fact 5.1(b) satisfied."""
        with PersistentDenseFile.create(
            path, num_pages=64, d=8, D=40, j=1
        ) as f:
            for op in converging_inserts(300):
                f.insert(op.key)
            had_warnings = bool(f.engine.warning_nodes())
        with PersistentDenseFile.open(path) as f:
            f.validate()  # includes the Fact 5.1 checks
            if had_warnings:
                assert f.engine.warning_nodes()
            for op in converging_inserts(100, lo=50, hi=51):
                f.insert(op.key)
            f.validate()

    def test_update_in_place_is_durable(self, path):
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            f.insert(7, "old")
            f.update(7, "new")
        with PersistentDenseFile.open(path) as f:
            assert f.search(7).value == "new"

    def test_bulk_load_is_durable(self, path):
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            f.bulk_load(range(200))
        with PersistentDenseFile.open(path) as f:
            assert len(f) == 200
            assert [r.key for r in f.scan(195, 10)] == [195, 196, 197, 198, 199]


class TestIntegrity:
    def test_validate_detects_disk_divergence(self, path):
        f = PersistentDenseFile.create(path, num_pages=64, d=8, D=40)
        f.insert(1)
        # Sabotage the store behind the engine's back.
        f._raw.write_page(f.engine.pagefile.nonempty_pages()[0], [])
        with pytest.raises(InvariantViolationError, match="diverge"):
            f.validate()
        f.close()

    def test_checksums_detect_flipped_byte(self, path):
        with PersistentDenseFile.create(path, num_pages=8, d=8, D=40) as f:
            f.insert(1, "payload")
            page = f.engine.pagefile.nonempty_pages()[0]
            slot = f._raw.slot_capacity
        offset = HEADER.size + (page - 1) * slot + SLOT_HEADER.size + 1
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\xee")
        from repro.storage.ondisk import DiskPagedStore

        with DiskPagedStore.open(path) as store:
            assert store.verify_all() == [page]
