"""Hypothesis-driven linearizability checks via the torture harness.

Each example runs seeded client threads racing mixed insert/delete/scan
batches against one :class:`~repro.concurrent.ThreadSafeDenseFile` and
asserts every batch has a sequential witness (see
:mod:`repro.concurrent.harness`).  Examples are deliberately small —
real thread contention per example makes big ones expensive — and the
deep soak lives in ``tools/stress.py`` / the CI ``stress-smoke`` job.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent.harness import StressConfig, run_stress

SEEDS = st.integers(min_value=0, max_value=2**20)


def run_clean(stack, seed, threads=3, total_ops=60, **overrides):
    path = None
    if stack in ("disk", "buffered"):
        path = os.path.join(tempfile.mkdtemp(prefix="repro-lin-"), "f.dsf")
    config = StressConfig(
        threads=threads,
        total_ops=total_ops,
        seed=seed,
        stack=stack,
        path=path,
        **overrides,
    )
    report = run_stress(config)
    assert report.ok, report.summary()
    return report


class TestLinearizableStacks:
    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, threads=st.integers(2, 4))
    def test_memory_stack(self, seed, threads):
        run_clean("memory", seed, threads=threads)

    @settings(max_examples=4, deadline=None)
    @given(seed=SEEDS)
    def test_disk_stack(self, seed):
        run_clean("disk", seed)

    @settings(max_examples=4, deadline=None)
    @given(seed=SEEDS)
    def test_buffered_stack(self, seed):
        run_clean("buffered", seed)

    @settings(max_examples=4, deadline=None)
    @given(seed=SEEDS, rate=st.sampled_from([0.02, 0.1]))
    def test_faulty_stack_absorbs_transients(self, seed, rate):
        report = run_clean("faulty", seed, transient_rate=rate)
        # Deadlines are generous here, so every injected transient must
        # be absorbed by retries — none may surface or give up.
        assert report.retry_counters["giveups"] == 0
        assert report.retry_counters["deadline_giveups"] == 0
        assert report.retry_counters["retries"] == report.faults_injected


class TestLinearizableUnderAdmission:
    @settings(max_examples=6, deadline=None)
    @given(seed=SEEDS, cap=st.integers(1, 3))
    def test_bounded_gate_stays_linearizable(self, seed, cap):
        """Rejections (overloads) are fine; executed ops must still have
        a sequential witness."""
        report = run_clean("memory", seed, max_in_flight=cap)
        assert report.gate_stats is not None
        assert report.gate_stats["peak_in_flight"] <= cap

    @settings(max_examples=6, deadline=None)
    @given(seed=SEEDS)
    def test_shed_load_stays_linearizable(self, seed):
        report = run_clean(
            "memory", seed, max_in_flight=1, shed_load=True, threads=4
        )
        assert report.gate_stats is not None
        # Whatever was shed is accounted for, never silently dropped.
        assert report.overloads == report.gate_stats["rejected"]
