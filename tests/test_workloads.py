"""Tests for the workload generators and the driver."""

from fractions import Fraction

import pytest

from repro import Control2Engine, DensityParams
from repro.workloads import (
    DELETE,
    INSERT,
    Operation,
    ZipfSampler,
    ascending_inserts,
    converging_inserts,
    descending_inserts,
    hotspot_inserts,
    interleaved_point_inserts,
    keys_of,
    mixed_workload,
    run_workload,
    sawtooth_workload,
    uniform_random_inserts,
    zipf_region_inserts,
)


class TestOperation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Operation("upsert", 1)

    def test_fields(self):
        op = Operation(INSERT, 5, "v")
        assert (op.kind, op.key, op.value) == (INSERT, 5, "v")


class TestGenerators:
    def test_uniform_is_deterministic_per_seed(self):
        a = uniform_random_inserts(50, seed=1)
        b = uniform_random_inserts(50, seed=1)
        c = uniform_random_inserts(50, seed=2)
        assert a == b
        assert a != c

    def test_uniform_keys_are_unique(self):
        ops = uniform_random_inserts(1000, seed=3)
        keys = list(keys_of(ops))
        assert len(set(keys)) == len(keys)

    def test_ascending_and_descending(self):
        up = [op.key for op in ascending_inserts(5, start=10, gap=2)]
        down = [op.key for op in descending_inserts(3, start=10)]
        assert up == [10, 12, 14, 16, 18]
        assert down == [10, 9, 8]

    def test_converging_keys_strictly_decrease_toward_lo(self):
        keys = [op.key for op in converging_inserts(60)]
        assert all(isinstance(key, Fraction) for key in keys)
        assert all(keys[i] > keys[i + 1] for i in range(len(keys) - 1))
        assert all(Fraction(0) < key < Fraction(1) for key in keys)

    def test_converging_from_below_increases(self):
        keys = [op.key for op in converging_inserts(10, from_above=False)]
        assert all(keys[i] < keys[i + 1] for i in range(len(keys) - 1))

    def test_hotspot_mostly_in_window(self):
        ops = hotspot_inserts(200, center=1000, width=10, seed=1)
        hot = sum(1 for op in ops if 1000 <= op.key <= 1010)
        assert hot >= 150

    def test_mixed_deletes_only_live_keys(self):
        ops = mixed_workload(300, seed=5)
        live = set()
        for op in ops:
            if op.kind == INSERT:
                assert op.key not in live
                live.add(op.key)
            else:
                assert op.key in live
                live.remove(op.key)

    def test_sawtooth_alternates_phases(self):
        ops = sawtooth_workload(200, period=10, seed=1)
        kinds = [op.kind for op in ops[:20]]
        assert kinds[:10] == [INSERT] * 10
        assert DELETE in kinds[10:]

    def test_interleaved_points_round_robin(self):
        ops = interleaved_point_inserts(6, points=[0, 100])
        regions = [0 if op.key < 50 else 100 for op in ops]
        assert regions == [0, 100, 0, 100, 0, 100]

    def test_interleaved_points_unique_keys(self):
        ops = interleaved_point_inserts(100, points=[0, 100, 200], seed=1)
        keys = [op.key for op in ops]
        assert len(set(keys)) == len(keys)


class TestZipf:
    def test_sampler_bounds(self):
        sampler = ZipfSampler(10, s=1.2, seed=1)
        draws = [sampler.sample() for _ in range(500)]
        assert all(0 <= draw < 10 for draw in draws)

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(100, s=1.5, seed=2)
        draws = [sampler.sample() for _ in range(2000)]
        head = sum(1 for draw in draws if draw < 10)
        assert head > len(draws) // 2

    def test_zero_exponent_is_uniform_ish(self):
        sampler = ZipfSampler(4, s=0.0, seed=3)
        draws = [sampler.sample() for _ in range(4000)]
        counts = [draws.count(rank) for rank in range(4)]
        assert min(counts) > 700

    def test_region_inserts_unique_and_executable(self):
        ops = zipf_region_inserts(300, seed=6)
        keys = [op.key for op in ops]
        assert len(set(keys)) == len(keys)

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-1)


class TestDriver:
    def test_run_workload_logs_every_operation(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        ops = uniform_random_inserts(100, seed=9)
        result = run_workload(engine, ops)
        assert len(result.log) == 100
        assert result.final_size == 100
        assert result.structure_name == "CONTROL 2"

    def test_validation_cadence(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        result = run_workload(
            engine, uniform_random_inserts(100, seed=9), validate_every=30
        )
        # 3 periodic validations + 1 final.
        assert result.validations == 4

    def test_progress_callback(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        seen = []
        run_workload(
            engine,
            uniform_random_inserts(10, seed=9),
            on_progress=seen.append,
        )
        assert seen == list(range(10))

    def test_driver_works_on_structures_without_validate(self):
        from repro.baselines.btree import BPlusTree

        tree = BPlusTree()
        result = run_workload(
            tree, uniform_random_inserts(50, seed=9), validate_every=10
        )
        assert result.validations == 0
        assert result.final_size == 50

    def test_per_operation_costs_are_positive(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        result = run_workload(engine, uniform_random_inserts(20, seed=9))
        assert all(cost > 0 for cost in result.log.page_accesses)
