"""Unit tests for the PageFile physical layer."""

import pytest

from repro.records import Record
from repro.storage.pagefile import PageFile


def load(pagefile, layout):
    """layout: {page: [keys]}"""
    for page, keys in layout.items():
        pagefile.load_page(page, [Record(key) for key in keys])


class TestDirectory:
    def test_nonempty_pages_track_mutations(self):
        pf = PageFile(8)
        load(pf, {2: [10], 5: [20, 21]})
        assert pf.nonempty_pages() == [2, 5]
        pf.remove_record(2, 10)
        assert pf.nonempty_pages() == [5]
        pf.insert_record(7, Record(30))
        assert pf.nonempty_pages() == [5, 7]

    def test_next_nonempty_right_and_left(self):
        pf = PageFile(8)
        load(pf, {2: [10], 5: [20]})
        assert pf.next_nonempty_right(2) == 5
        assert pf.next_nonempty_right(5) is None
        assert pf.next_nonempty_left(5) == 2
        assert pf.next_nonempty_left(2) is None

    def test_occupancies_vector(self):
        pf = PageFile(4)
        load(pf, {1: [1, 2], 3: [3]})
        assert pf.occupancies() == [2, 0, 1, 0]

    def test_total_records(self):
        pf = PageFile(4)
        load(pf, {1: [1, 2], 4: [9]})
        assert pf.total_records() == 3


class TestLocate:
    def test_empty_file_returns_none(self):
        assert PageFile(4).locate(5) is None

    def test_locates_owning_page(self):
        pf = PageFile(8)
        load(pf, {2: [10, 19], 5: [20, 29], 7: [30]})
        assert pf.locate(15) == 2
        assert pf.locate(20) == 5
        assert pf.locate(25) == 5
        assert pf.locate(99) == 7

    def test_key_below_everything_returns_first_nonempty(self):
        pf = PageFile(8)
        load(pf, {3: [10]})
        assert pf.locate(-5) == 3

    def test_locate_charges_one_verification_read(self):
        pf = PageFile(64)
        load(pf, {page: [page * 100] for page in range(1, 65)})
        pf.disk.stats.reset()
        pf.locate(3200)
        # The directory search is in-core; only the candidate page is read.
        assert pf.disk.stats.reads == 1

    def test_locate_in_core_is_free(self):
        pf = PageFile(64)
        load(pf, {page: [page * 100] for page in range(1, 65)})
        pf.disk.stats.reset()
        assert pf.locate_in_core(3200) == pf.locate(3200)
        assert pf.disk.stats.reads == 1  # only the charged variant read

    def test_locate_skips_empty_pages(self):
        pf = PageFile(16)
        load(pf, {1: [10], 16: [20]})
        assert pf.locate(15) == 1
        assert pf.locate(20) == 16


class TestMoveRecords:
    def test_move_left_takes_lowest_keys(self):
        pf = PageFile(4)
        load(pf, {3: [10, 20, 30]})
        moved = pf.move_records(3, 1, 2)
        assert moved == 2
        assert [r.key for r in pf.read_page(1)] == [10, 20]
        assert [r.key for r in pf.read_page(3)] == [30]

    def test_move_right_takes_highest_keys(self):
        pf = PageFile(4)
        load(pf, {1: [10, 20, 30]})
        pf.move_records(1, 4, 2)
        assert [r.key for r in pf.read_page(1)] == [10]
        assert [r.key for r in pf.read_page(4)] == [20, 30]

    def test_move_into_populated_page_preserves_order(self):
        pf = PageFile(4)
        load(pf, {1: [1, 2], 3: [5, 6]})
        pf.move_records(3, 1, 1)
        assert [r.key for r in pf.read_page(1)] == [1, 2, 5]

    def test_move_charges_three_accesses(self):
        pf = PageFile(4)
        load(pf, {3: [10, 20]})
        pf.disk.stats.reset()
        pf.move_records(3, 1, 1)
        assert pf.disk.stats.reads == 1
        assert pf.disk.stats.writes == 2

    def test_move_zero_or_negative_is_noop(self):
        pf = PageFile(4)
        load(pf, {3: [10]})
        assert pf.move_records(3, 1, 0) == 0

    def test_move_to_same_page_rejected(self):
        pf = PageFile(4)
        with pytest.raises(ValueError):
            pf.move_records(2, 2, 1)

    def test_move_caps_at_source_size(self):
        pf = PageFile(4)
        load(pf, {3: [10, 20]})
        assert pf.move_records(3, 1, 99) == 2
        assert pf.is_empty_page(3)


class TestRedistribute:
    def test_even_spread(self):
        pf = PageFile(4)
        load(pf, {1: list(range(10))})
        pf.redistribute(1, 4)
        assert pf.occupancies() == [3, 3, 2, 2]

    def test_spread_preserves_global_order(self):
        pf = PageFile(4)
        load(pf, {2: [5, 6, 7, 8], 3: [9]})
        pf.redistribute(1, 4)
        collected = [r.key for _, records in pf.snapshot() for r in records]
        assert collected == [5, 6, 7, 8, 9]

    def test_partial_range(self):
        pf = PageFile(6)
        load(pf, {1: [0], 3: [10, 11, 12, 13], 6: [99]})
        pf.redistribute(3, 4)
        assert pf.occupancies() == [1, 0, 2, 2, 0, 1]

    def test_redistribute_charges_per_page(self):
        pf = PageFile(8)
        load(pf, {1: [1, 2, 3]})
        pf.disk.stats.reset()
        pf.redistribute(1, 4)
        assert pf.disk.stats.reads == 4
        assert pf.disk.stats.writes == 4

    def test_empty_range_rejected(self):
        pf = PageFile(4)
        with pytest.raises(ValueError):
            pf.redistribute(3, 2)


class TestScans:
    def test_scan_range_inclusive_bounds(self):
        pf = PageFile(4)
        load(pf, {1: [1, 2], 2: [3, 4], 4: [5]})
        assert [r.key for r in pf.scan_range(2, 4)] == [2, 3, 4]

    def test_scan_range_empty_file(self):
        assert list(PageFile(4).scan_range(0, 10)) == []

    def test_scan_range_is_sequential(self):
        pf = PageFile(8)
        load(pf, {page: [page * 10, page * 10 + 1] for page in range(1, 9)})
        pf.disk.trace.enable()
        pf.disk.stats.reset()
        list(pf.scan_range(10, 81))
        pages = pf.disk.trace.pages()
        # After the binary search settles, the sweep visits ascending pages.
        sweep = pages[-8:]
        assert sweep == sorted(sweep)

    def test_scan_count_limits_results(self):
        pf = PageFile(4)
        load(pf, {1: [1, 2, 3], 2: [4, 5]})
        result = pf.scan_count(2, 3)
        assert [r.key for r in result] == [2, 3, 4]

    def test_scan_count_past_end(self):
        pf = PageFile(4)
        load(pf, {1: [1]})
        assert [r.key for r in pf.scan_count(0, 10)] == [1]

    def test_iter_all_yields_key_order(self):
        pf = PageFile(4)
        load(pf, {2: [3, 4], 1: [1, 2]})
        assert [r.key for r in pf.iter_all()] == [1, 2, 3, 4]


class TestGuards:
    def test_needs_at_least_one_page(self):
        with pytest.raises(ValueError):
            PageFile(0)

    def test_disk_smaller_than_file_rejected(self):
        from repro.storage.disk import SimulatedDisk

        with pytest.raises(ValueError):
            PageFile(10, disk=SimulatedDisk(5))
