"""Unit tests for the scrub/repair ladder and its CLI surface.

``scrub`` walks detect → repair (journal redo) → quarantine → verify;
these tests pin each rung, the idempotence of the whole ladder, and
the exit codes / operator guidance the CLI prints around it.
"""

import io

import pytest

from repro import PersistentDenseFile
from repro.cli import main
from repro.storage.ondisk import DiskPagedStore
from repro.storage.packed import encode_records_image
from repro.storage.scrub import ScrubReport, scrub
from repro.storage.wal import TransactionJournal


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def populated(tmp_path):
    """A healthy closed file with 120 records, plus its page payloads."""
    path = str(tmp_path / "scrub.dsf")
    payloads = {}
    with PersistentDenseFile.create(path, num_pages=32, d=8, D=40) as dense:
        dense.insert_many(range(120))
        for page in dense.engine.pagefile.nonempty_pages():
            payloads[page] = encode_records_image(
                list(dense.engine.pagefile.read_page(page))
            )
    return path, payloads


def corrupt_slot(path: str, page: int) -> None:
    """Clobber the slot's length field: a guaranteed CRC failure."""
    with DiskPagedStore.open(path) as raw:
        offset = raw._slot_offset(page)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(b"\xff\xff\xff\xff")


class TestScrubLadder:
    def test_healthy_file_is_a_verified_noop(self, populated):
        path, _ = populated
        report = scrub(path)
        assert report.healthy and not report.degraded
        assert report.pages_checked == 32
        assert report.corrupt == ()
        assert report.repaired == () and report.quarantined == ()
        assert not report.journal_replayed
        assert "structural pass" in report.summary()
        # And the file still opens and validates normally afterwards.
        with PersistentDenseFile.open(path) as dense:
            assert len(dense) == 120
            dense.validate()

    def test_journal_repairs_corrupt_page(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[1]
        corrupt_slot(path, victim)
        # A committed journal holding the victim's last good image is
        # exactly what a crash between commit and apply leaves behind.
        TransactionJournal(path + ".journal").write_transaction(
            {victim: payloads[victim]}
        )
        report = scrub(path)
        assert report.healthy
        assert report.corrupt == (victim,)
        assert report.journal_replayed
        assert report.repaired == (victim,)
        assert report.quarantined == ()
        assert not TransactionJournal(path + ".journal").exists()
        with PersistentDenseFile.open(path) as dense:
            assert [r.key for r in dense.range(-1, 10**9)] == list(range(120))
            dense.validate()

    def test_unrepairable_page_is_quarantined(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        report = scrub(path)
        assert report.degraded and not report.healthy
        assert report.quarantined == (victim,)
        assert report.repaired == ()
        assert "DEGRADED" in report.summary()
        # Idempotent: a second pass reports the same quarantine set.
        again = scrub(path)
        assert again.quarantined == (victim,)
        # The plain open still refuses; the degraded open works.
        with pytest.raises(Exception):
            PersistentDenseFile.open(path)
        with PersistentDenseFile.open(
            path, on_corruption="degrade"
        ) as dense:
            assert dense.read_only
            assert dense.quarantined == (victim,)
            survivors = [r.key for r in dense.range(-1, 10**9)]
            assert set(survivors) < set(range(120))

    def test_torn_journal_is_discarded_not_replayed(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        journal = TransactionJournal(path + ".journal")
        journal.write_transaction({victim: payloads[victim]})
        # Tear the commit marker off: the image must NOT be trusted.
        import os

        with open(journal.path, "r+b") as handle:
            handle.truncate(os.path.getsize(journal.path) - 4)
        report = scrub(path)
        assert not report.journal_replayed
        assert report.quarantined == (victim,)
        assert not journal.exists()  # torn journal cleaned up

    def test_partial_repair_mixed_outcome(self, populated):
        """Two corrupt pages, one journaled image: repair one,
        quarantine the other."""
        path, payloads = populated
        saved, lost = sorted(payloads)[:2]
        corrupt_slot(path, saved)
        corrupt_slot(path, lost)
        TransactionJournal(path + ".journal").write_transaction(
            {saved: payloads[saved]}
        )
        report = scrub(path)
        assert report.corrupt == (saved, lost)
        assert report.repaired == (saved,)
        assert report.quarantined == (lost,)
        assert report.degraded

    def test_report_dataclass_defaults(self, tmp_path):
        report = ScrubReport(path="x")
        assert report.healthy and not report.degraded
        assert "verdict: healthy" in report.summary()


class TestCliSurface:
    def test_scrub_exit_0_on_healthy(self, populated):
        path, _ = populated
        code, output = run_cli("scrub", path)
        assert code == 0
        assert "healthy" in output

    def test_scrub_exit_0_after_repair(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        TransactionJournal(path + ".journal").write_transaction(
            {victim: payloads[victim]}
        )
        code, output = run_cli("scrub", path)
        assert code == 0
        assert f"repaired pages [{victim}]" in output

    def test_scrub_exit_3_on_quarantine(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        code, output = run_cli("scrub", path)
        assert code == 3
        assert "DEGRADED" in output and str(victim) in output

    def test_verify_names_the_repair_path(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        TransactionJournal(path + ".journal").write_transaction(
            {victim: payloads[victim]}
        )
        code, output = run_cli("verify", path)
        assert code == 3
        assert "repairable from the journal" in output
        assert "repro scrub" in output

    def test_verify_warns_about_quarantine(self, populated):
        path, payloads = populated
        corrupt_slot(path, sorted(payloads)[0])
        code, output = run_cli("verify", path)
        assert code == 3
        assert "no journaled image" in output
        assert "read-only" in output

    def test_info_falls_back_to_degraded_view(self, populated):
        path, payloads = populated
        victim = sorted(payloads)[0]
        corrupt_slot(path, victim)
        code, output = run_cli("info", path)
        assert code == 5
        assert "DEGRADED (read-only)" in output
        assert str(victim) in output

    def test_end_to_end_operator_story(self, populated):
        """verify (red) -> scrub (degraded) -> info still works ->
        mutation via CLI fails cleanly."""
        path, payloads = populated
        corrupt_slot(path, sorted(payloads)[0])
        assert run_cli("verify", path)[0] == 3
        assert run_cli("scrub", path)[0] == 3
        code, output = run_cli("info", path)
        assert code == 5 and "DEGRADED" in output
        # A mutating command surfaces the corruption as a CLI error
        # rather than silently writing through a broken page.
        code, output = run_cli("put", path, "999")
        assert code == 1
        assert "error" in output
