"""Bit-exact reproduction of the paper's Example 5.2 / Figure 4.

The example runs CONTROL 2 on an 8-page file with d=9, D=18, J=3,
initial occupancies [16,1,0,1,9,9,9,16], and two insertion commands:
Z1 into page 8, then Z2 into page 1.  The paper tabulates the page
occupancies at the flag-stable moments t0..t8 (Figure 4) and narrates
every pointer assignment.  These tests assert all of it.
"""

import pytest

from repro import MomentRecorder

FIGURE_4 = {
    "t0": (16, 1, 0, 1, 9, 9, 9, 16),
    "t1": (16, 1, 0, 1, 9, 9, 9, 17),
    "t2": (16, 1, 0, 1, 9, 9, 15, 11),
    "t3": (16, 1, 0, 1, 9, 9, 15, 11),
    "t4": (16, 2, 0, 0, 9, 9, 15, 11),
    "t5": (17, 2, 0, 0, 9, 9, 15, 11),
    "t6": (4, 15, 0, 0, 9, 9, 15, 11),
    "t7": (15, 4, 0, 0, 9, 9, 15, 11),
    "t8": (15, 9, 0, 0, 4, 9, 15, 11),
}


@pytest.fixture
def example(paper_engine):
    """The engine plus the node ids the paper names."""
    tree = paper_engine.calibrator
    nodes = {
        "v1": tree.root,
        "v2": tree.left[tree.root],
        "v3": tree.right[tree.root],
        "L1": tree.leaf_of_page[1],
        "L2": tree.leaf_of_page[2],
        "L7": tree.leaf_of_page[7],
        "L8": tree.leaf_of_page[8],
    }
    return paper_engine, nodes


class TestInitialState:
    def test_t0_distribution(self, example):
        engine, _ = example
        assert tuple(engine.occupancies()) == FIGURE_4["t0"]

    def test_all_nodes_start_non_warning(self, example):
        engine, _ = example
        # Legitimate per Fact 5.1: every node has p < g(., 2/3) at t0.
        assert engine.warning_nodes() == []
        for node in engine.calibrator.iter_nodes():
            assert not engine._density_at_least(node, 2)

    def test_t0_satisfies_all_invariants(self, example):
        engine, _ = example
        engine.validate()


class TestCommandZ1:
    """Insert into page 8: the paper's first command."""

    @pytest.fixture
    def recorder(self, example):
        engine, nodes = example
        recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)
        engine.insert_at_page(8, 10_000)
        return engine, nodes, recorder

    def test_step3_raises_L8_and_v3(self, recorder):
        engine, nodes, rec = recorder
        t1 = rec.moments[0]
        assert set(t1.warnings) == {nodes["L8"], nodes["v3"]}

    def test_step3_initial_dest_pointers(self, recorder):
        engine, nodes, rec = recorder
        t1 = rec.moments[0]
        assert t1.destination_of(nodes["L8"]) == 7
        assert t1.destination_of(nodes["v3"]) == 1

    def test_first_shift_moves_six_records_from_8_to_7(self, recorder):
        engine, nodes, rec = recorder
        assert rec.moments[1].occupancies == FIGURE_4["t2"]

    def test_L8_lowered_after_first_shift(self, recorder):
        engine, nodes, rec = recorder
        assert nodes["L8"] not in rec.moments[1].warnings
        assert nodes["v3"] in rec.moments[1].warnings

    def test_second_shift_moves_nothing_but_advances_dest(self, recorder):
        engine, nodes, rec = recorder
        t3 = rec.moments[2]
        assert t3.occupancies == FIGURE_4["t3"]
        assert t3.destination_of(nodes["v3"]) == 2

    def test_third_shift_moves_one_record_from_4_to_2(self, recorder):
        engine, nodes, rec = recorder
        assert rec.moments[3].occupancies == FIGURE_4["t4"]

    def test_v3_still_warning_at_end_of_z1(self, recorder):
        engine, nodes, rec = recorder
        assert nodes["v3"] in rec.moments[3].warnings

    def test_all_moments_of_z1_match_figure4(self, recorder):
        engine, nodes, rec = recorder
        rows = [m.occupancies for m in rec.moments]
        assert rows == [FIGURE_4[t] for t in ("t1", "t2", "t3", "t4")]

    def test_invariants_hold_after_z1(self, recorder):
        engine, _, _ = recorder
        engine.validate()


class TestCommandZ2:
    """Insert into page 1: the paper's second command (with roll-back)."""

    @pytest.fixture
    def recorder(self, example):
        engine, nodes = example
        engine.insert_at_page(8, 10_000)  # Z1
        recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)
        engine.insert_at_page(1, -10_000)  # Z2
        return engine, nodes, recorder

    def test_activate_L1_sets_dest_2(self, recorder):
        engine, nodes, rec = recorder
        t5 = rec.moments[0]
        assert nodes["L1"] in t5.warnings
        assert t5.destination_of(nodes["L1"]) == 2

    def test_rollback_rule1_resets_dest_v3_to_1(self, recorder):
        """The first roll-back in the example: DEST(v3) 2 -> 1."""
        engine, nodes, rec = recorder
        t5 = rec.moments[0]
        assert t5.destination_of(nodes["v3"]) == 1

    def test_t5_occupancies(self, recorder):
        engine, nodes, rec = recorder
        assert rec.moments[0].occupancies == FIGURE_4["t5"]

    def test_first_shift_moves_thirteen_records_right(self, recorder):
        engine, nodes, rec = recorder
        t6 = rec.moments[1]
        assert t6.occupancies == FIGURE_4["t6"]
        assert nodes["L1"] not in t6.warnings

    def test_second_shift_moves_eleven_records_left(self, recorder):
        engine, nodes, rec = recorder
        t7 = rec.moments[2]
        assert t7.occupancies == FIGURE_4["t7"]
        assert t7.destination_of(nodes["v3"]) == 2

    def test_third_shift_moves_five_records_from_5_to_2(self, recorder):
        engine, nodes, rec = recorder
        assert rec.moments[3].occupancies == FIGURE_4["t8"]

    def test_all_warnings_cleared_at_t8(self, recorder):
        engine, nodes, rec = recorder
        assert rec.moments[3].warnings == ()
        assert engine.warning_nodes() == []

    def test_full_trace_matches_figure4(self, recorder):
        engine, nodes, rec = recorder
        rows = [m.occupancies for m in rec.moments]
        assert rows == [FIGURE_4[t] for t in ("t5", "t6", "t7", "t8")]

    def test_no_stuck_shifts_in_the_example(self, recorder):
        engine, _, _ = recorder
        assert engine.stuck_shifts == 0

    def test_invariants_hold_after_z2(self, recorder):
        engine, _, _ = recorder
        engine.validate()


class TestKeysSurviveTheExample:
    def test_record_set_preserved_and_ordered(self, example):
        engine, _ = example
        before = {record.key for record in engine.pagefile.iter_all()}
        engine.insert_at_page(8, 10_000)
        engine.insert_at_page(1, -10_000)
        after = [record.key for record in engine.pagefile.iter_all()]
        assert set(after) == before | {10_000, -10_000}
        assert after == sorted(after)
