"""Tests for the ASCII occupancy visualizations."""

from repro.analysis.heatmap import (
    GLYPHS,
    OVERFULL,
    fill_summary,
    occupancy_bar,
    occupancy_history,
    occupancy_legend,
)


class TestOccupancyBar:
    def test_empty_pages_render_blank(self):
        assert occupancy_bar([0, 0, 0], capacity=8) == "   "

    def test_full_pages_render_densest_glyph(self):
        assert occupancy_bar([8, 8], capacity=8) == GLYPHS[-1] * 2

    def test_partial_fill_uses_intermediate_glyphs(self):
        bar = occupancy_bar([4], capacity=8)
        assert bar != " " and bar != GLYPHS[-1]

    def test_nonzero_fill_never_renders_blank(self):
        assert occupancy_bar([1], capacity=100) != " "

    def test_over_capacity_flagged(self):
        assert occupancy_bar([9], capacity=8) == OVERFULL

    def test_bucketing_to_width(self):
        bar = occupancy_bar([8] * 100, capacity=8, width=10)
        assert len(bar) == 10

    def test_width_capped_at_page_count(self):
        assert len(occupancy_bar([1, 2], capacity=8, width=64)) == 2

    def test_bucket_with_one_overfull_page_is_flagged(self):
        occupancies = [2] * 9 + [99]
        bar = occupancy_bar(occupancies, capacity=8, width=2)
        assert bar[1] == OVERFULL

    def test_empty_input(self):
        assert occupancy_bar([], capacity=8) == ""


class TestHistoryAndSummary:
    def test_history_one_row_per_snapshot(self):
        text = occupancy_history(
            [[1, 2], [2, 1]], capacity=4, labels=["t0", "t1"]
        )
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("t0")

    def test_history_default_labels(self):
        text = occupancy_history([[1], [1], [1]], capacity=4)
        assert "t2" in text

    def test_fill_summary_counts(self):
        text = fill_summary([0, 4, 8], capacity=8)
        assert "12 records" in text
        assert "3 pages" in text
        assert "2 non-empty" in text
        assert "peak page 8/8" in text

    def test_legend_mentions_capacity_and_overfull(self):
        text = occupancy_legend(48)
        assert "48" in text
        assert OVERFULL in text
