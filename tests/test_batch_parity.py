"""Hypothesis parity: the batched write fast paths change no state.

The batched ``insert_many``/``delete_range`` coalesce *charges* (one
read plus one write per touched page per group instead of per record),
but execute the identical sequence of state mutations as the per-record
loop: each record is applied and maintained as its own command, with
the destination re-verified against the in-core directory after every
command's maintenance.  These tests prove the claim the cheap way —
by running both paths and asserting byte-identical page contents,
calibrator state and invariant outcomes — across random workloads,
every backend, and under ``threadsafe=True``.

One asymmetry is inherent: per-record *deletes* under CONTROL 2 run
steps 2-4 (including SHIFTs) after every command, while the bulk path
runs only the flag-lowering repair, so ``delete_range(batch=False)``
may leave records on different pages than ``batch=True``.  CONTROL 1
deletes perform no maintenance at all, so there the two delete paths
are byte-identical too; for CONTROL 2 the parity claim is multiset
equality plus intact invariants on both sides.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Control1Engine,
    Control2Engine,
    DensityParams,
    JournaledDenseFile,
)
from repro.storage.backend import BufferedStore, DiskStore, MemoryStore
from repro.storage.codec import encode_page
from repro.storage.faults import FaultPlan, fault_tolerant_stack

M, LOW_D, HIGH_D = 16, 4, 24  # slack 20 > 3*4; cap 64 records

KEYS = st.integers(min_value=0, max_value=5_000)

#: A step is either an insert batch or a bulk delete of a key range.
INSERT_BATCH = st.lists(KEYS, min_size=0, max_size=12, unique=True)
DELETE_RANGE = st.tuples(KEYS, KEYS).map(lambda t: (min(t), max(t)))
STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), INSERT_BATCH),
        st.tuples(st.just("delete"), DELETE_RANGE),
    ),
    min_size=1,
    max_size=8,
)


def _params() -> DensityParams:
    return DensityParams(num_pages=M, d=LOW_D, D=HIGH_D)


def _page_images(engine):
    return [
        encode_page(engine.pagefile.page(p).records())
        for p in range(1, M + 1)
    ]


def _assert_identical(batched, reference):
    """Byte-identical pages, calibrator counters, flags and size."""
    assert len(batched) == len(reference)
    assert _page_images(batched) == _page_images(reference)
    assert batched.calibrator.count == reference.calibrator.count
    assert batched.calibrator.flag == reference.calibrator.flag
    assert batched.commands_executed == reference.commands_executed


def _keys_of(engine):
    return sorted(r.key for _, records in engine.pagefile.snapshot()
                  for r in records)


def _apply(engine, steps, batch):
    inserted = set()
    for kind, payload in steps:
        if kind == "insert":
            fresh = [k for k in payload if k not in inserted]
            if len(engine) + len(fresh) > engine.params.max_records:
                continue
            engine.insert_many(fresh, batch=batch)
            inserted.update(fresh)
        else:
            lo, hi = payload
            engine.delete_range(lo, hi, batch=True)
            inserted -= {k for k in inserted if lo <= k <= hi}


class TestInsertManyParity:
    """Batched inserts are byte-identical to the per-record loop."""

    @pytest.mark.parametrize("algorithm", [Control1Engine, Control2Engine])
    @settings(max_examples=60, deadline=None)
    @given(steps=STEPS)
    def test_random_workloads(self, algorithm, steps):
        batched = algorithm(_params())
        reference = algorithm(_params())
        _apply(batched, steps, batch=True)
        _apply(reference, steps, batch=False)
        _assert_identical(batched, reference)
        batched.validate()
        reference.validate()

    @pytest.mark.parametrize("algorithm", [Control1Engine, Control2Engine])
    def test_sorted_burst_after_preload(self, algorithm):
        batched = algorithm(_params())
        reference = algorithm(_params())
        for engine in (batched, reference):
            engine.bulk_load(range(0, 60, 2))
        batched.insert_many(range(1, 61, 20), batch=True)
        reference.insert_many(range(1, 61, 20), batch=False)
        _assert_identical(batched, reference)

    def test_batched_charges_fewer_accesses(self):
        batched = Control2Engine(_params())
        reference = Control2Engine(_params())
        keys = list(range(48))
        batched.insert_many(keys, batch=True)
        reference.insert_many(keys, batch=False)
        _assert_identical(batched, reference)
        assert (
            batched.stats.page_accesses < reference.stats.page_accesses
        )


class TestDeleteRangeParity:
    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(KEYS, min_size=1, max_size=40, unique=True),
        bounds=DELETE_RANGE,
    )
    def test_control1_byte_identical(self, keys, bounds):
        lo, hi = bounds
        batched = Control1Engine(_params())
        reference = Control1Engine(_params())
        for engine in (batched, reference):
            engine.insert_many(sorted(keys))
        batched.delete_range(lo, hi, batch=True)
        reference.delete_range(lo, hi, batch=False)
        # CONTROL 1 deletes run no maintenance, so even the page
        # placement matches; command accounting differs by design
        # (bulk = one command, per-record = one per key).
        assert _page_images(batched) == _page_images(reference)
        assert batched.calibrator.count == reference.calibrator.count
        batched.validate()
        reference.validate()

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(KEYS, min_size=1, max_size=40, unique=True),
        bounds=DELETE_RANGE,
    )
    def test_control2_multiset_parity(self, keys, bounds):
        lo, hi = bounds
        batched = Control2Engine(_params())
        reference = Control2Engine(_params())
        for engine in (batched, reference):
            engine.insert_many(sorted(keys))
        removed_batched = batched.delete_range(lo, hi, batch=True)
        removed_reference = reference.delete_range(lo, hi, batch=False)
        assert removed_batched == removed_reference
        assert _keys_of(batched) == _keys_of(reference)
        batched.validate()
        reference.validate()


class TestCrossBackendParity:
    """One batched command stream, four physical stacks, one state."""

    def _stores(self, workdir):
        return {
            "memory": MemoryStore(M),
            "disk": DiskStore.create(
                os.path.join(workdir, "batch.dsf"),
                num_pages=M, d=LOW_D, D=HIGH_D,
            ),
            "buffered": BufferedStore(
                DiskStore.create(
                    os.path.join(workdir, "batch-cache.dsf"),
                    num_pages=M, d=LOW_D, D=HIGH_D,
                ),
                capacity=4,
                readahead=2,
            ),
            "faulty": fault_tolerant_stack(
                MemoryStore(M), FaultPlan(seed=7, transient_rate=0.2)
            ),
        }

    def test_batched_state_identical_everywhere(self, tmp_path):
        engines = {
            name: Control2Engine(_params(), store=store)
            for name, store in self._stores(str(tmp_path)).items()
        }
        steps = [
            ("insert", list(range(0, 40, 2))),
            ("insert", list(range(1, 21, 2))),
            ("delete", (10, 25)),
            ("insert", [100, 101, 102]),
            ("delete", (0, 4)),
        ]
        for engine in engines.values():
            _apply(engine, steps, batch=True)
            engine.validate()
        reference = engines["memory"]
        for name, engine in engines.items():
            assert _page_images(engine) == _page_images(reference), name
            assert (
                engine.stats.page_accesses == reference.stats.page_accesses
            ), name
        for engine in engines.values():
            engine.store.close()


class TestThreadSafeBatch:
    def test_threadsafe_wrapper_parity(self, tmp_path):
        path = str(tmp_path / "ts.dsf")
        safe = JournaledDenseFile.create(
            path, num_pages=M, d=LOW_D, D=HIGH_D, threadsafe=True
        )
        reference = Control2Engine(_params())
        keys = list(range(0, 50))
        assert safe.insert_many(keys, batch=True) == 50
        reference.insert_many(keys, batch=True)
        assert safe.delete_range(10, 19, batch=True) == 10
        reference.delete_range(10, 19, batch=True)
        inner_engine = safe._inner.engine
        assert _page_images(inner_engine) == _page_images(reference)
        safe.close()

    def test_threadsafe_batch_false(self, tmp_path):
        path = str(tmp_path / "ts2.dsf")
        safe = JournaledDenseFile.create(
            path, num_pages=M, d=LOW_D, D=HIGH_D, threadsafe=True
        )
        assert safe.insert_many(range(20), batch=False) == 20
        assert safe.delete_range(5, 9, batch=False) == 5
        assert len(safe) == 15
        safe.close()
