"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Control1Engine, Control2Engine, DensityParams


@pytest.fixture
def paper_params() -> DensityParams:
    """The exact geometry of the paper's Example 5.2."""
    return DensityParams(num_pages=8, d=9, D=18, j=3)


@pytest.fixture
def small_params() -> DensityParams:
    """A small geometry satisfying the slack condition (D-d > 3 log M)."""
    return DensityParams(num_pages=16, d=4, D=20)


@pytest.fixture
def medium_params() -> DensityParams:
    return DensityParams(num_pages=64, d=8, D=32)


@pytest.fixture
def control2(medium_params) -> Control2Engine:
    return Control2Engine(medium_params)


@pytest.fixture
def control1(medium_params) -> Control1Engine:
    return Control1Engine(medium_params)


@pytest.fixture
def paper_engine(paper_params) -> Control2Engine:
    """Example 5.2's engine, loaded with its initial distribution."""
    engine = Control2Engine(paper_params)
    engine.load_occupancies([16, 1, 0, 1, 9, 9, 9, 16], key_start=0, key_gap=10)
    return engine
