"""LNT007 fixture, half 1: the entry.  Locally clean — the helper it
calls lives in another file, and nothing here touches engine state."""

from half_helper import apply_unguarded


class ThreadSafeSplit:
    def insert(self, key, value):
        return apply_unguarded(self._engine, key, value)
