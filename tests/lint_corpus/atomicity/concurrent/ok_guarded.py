"""LNT007 negative control: the same helper shape, but the entry takes
the lock before the call — everything beneath the acquisition runs
guarded, wherever it is defined."""


class ThreadSafeGated:
    def insert(self, key, value, *, timeout=None, deadline=None):
        with self._guarded("write", timeout, deadline):
            return self._apply(key, value)

    def _apply(self, key, value):
        return self._inner.insert(key, value)
