"""LNT007 fixture, half 2: the helper.  Locally clean — a module
function mutating the engine it is handed, trusting (wrongly) that its
caller holds the lock.  Only the cross-file call graph composes the
two halves into a race."""


def apply_unguarded(engine, key, value):
    return engine.insert(key, value)
