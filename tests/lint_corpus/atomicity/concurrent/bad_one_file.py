"""LNT007 fixture: the public method never takes the lock; the mutation
hides one call away, in a private helper LNT002 deliberately skips.

Per-method analysis sees nothing: ``insert`` touches no engine state,
and ``_apply`` is private (helpers run under a caller's guard — except
this caller never took one).  Only the call graph sees the composition.
"""


class ThreadSafeShim:
    def insert(self, key, value):
        return self._apply(key, value)

    def _apply(self, key, value):
        return self._inner.insert(key, value)
