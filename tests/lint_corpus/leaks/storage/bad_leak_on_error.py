"""LNT008 fixture: the close is there, but nothing protects it — the
read between acquisition and release raises right past the close."""


def copy_header(path):
    handle = open(path, "rb")
    header = handle.read(16)
    handle.close()
    return header
