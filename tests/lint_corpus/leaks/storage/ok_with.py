"""LNT008 negative control: ``with`` owns the handle; every exit path,
exceptional or not, runs the close."""


def read_all(path):
    with open(path, "rb") as handle:
        return handle.read()
