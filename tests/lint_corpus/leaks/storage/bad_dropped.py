"""LNT008 fixture: the handle is acquired, used as a receiver, and then
simply dropped — no close, no hand-off, on any path out."""


def file_size(path):
    handle = open(path, "rb")
    size = handle.seek(0, 2)
    return size
