"""LNT008 negative controls: a ``finally`` covers the exception edge,
and handing the handle to another owner transfers the release duty."""


def checksum(path):
    handle = open(path, "rb")
    try:
        return sum(handle.read())
    finally:
        handle.close()


def open_store(path, wrapper):
    raw = open(path, "r+b")
    return wrapper(raw)
