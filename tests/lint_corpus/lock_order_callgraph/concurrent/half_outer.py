"""LNT003 call-graph fixture, half 1: two opposite nestings, each
completed only through a call into the other file.  Locally each
function holds one lock and calls one helper — per-file analysis sees
no second acquisition at all."""

from half_inner import poke, prod


def forward(widget):
    with widget._mutex:
        return poke(widget)


def backward(widget):
    with widget._cond:
        return prod(widget)
