"""LNT003 call-graph fixture, half 2: the helpers.  Each takes a single
lock with nothing held — locally beyond reproach.  Only the accumulated
graph, with the cross-file call edges added, closes the ABBA cycle."""


def poke(widget):
    with widget._cond:
        return True


def prod(widget):
    with widget._mutex:
        return True
