"""LNT004 negative control: taxonomy raises and surfaced timeouts."""

from repro.core.errors import OperationTimeout, UsageError


def validate(d, big_d):
    if d >= big_d:
        raise UsageError("d must be < D")


def annotate(op):
    try:
        return op()
    except OperationTimeout:
        raise  # re-raised: the deadline surfaces
    except KeyError:
        return None  # narrow catch: allowed everywhere
