"""LNT004 fixture: bare except (also the --fix corpus)."""


def swallow(risky):
    try:
        return risky()
    except:
        return None
