"""LNT004 fixture: a spent deadline vanishing into a handler."""

from repro.core.errors import OperationTimeout


def lossy(op):
    try:
        return op()
    except OperationTimeout:
        return None  # finding: the caller never learns
