"""LNT004 fixture: raising builtins past the taxonomy."""


def validate(d, big_d):
    if d >= big_d:
        raise ValueError("d must be < D")  # finding: ConfigurationError


def release(held):
    if not held:
        raise RuntimeError("not held")  # finding: LockProtocolError
