"""LNT005 negative control: seeded RNG, injected clock, sorted sets."""

import random
import time


def jitter(seed):
    return random.Random(seed).random()


def stamp(clock=time.monotonic):
    return clock()  # monotonic, injected: fine


def visit(pages):
    for page in sorted(set(pages)):
        yield page
