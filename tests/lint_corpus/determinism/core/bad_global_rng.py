"""LNT005 fixture: the process-global RNG in a hot path."""

import random


def jitter():
    return random.random()  # finding: not replayable


def pick(items):
    rng = random.Random()  # finding: unseeded
    return rng.choice(items)
