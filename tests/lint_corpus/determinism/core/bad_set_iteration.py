"""LNT005 fixture: hash-order iteration."""


def visit(pages):
    for page in set(pages):  # finding: hash order
        yield page


def scan(directory, os):
    return [name for name in os.listdir(directory)]  # finding: FS order
