"""LNT005 fixture: wall-clock reads in storage code."""

import time
from datetime import datetime


def stamp():
    return time.time()  # finding: wall clock


def label():
    return datetime.now()  # finding: wall clock
