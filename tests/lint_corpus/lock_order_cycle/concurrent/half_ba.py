"""LNT003 cycle fixture, half 2: _mutex before _cond.

Each half is locally consistent (same-rank mutexes, no inversion); only
the accumulated graph reveals that no global order exists.
"""


class B:
    def ba(self):
        with self._mutex:
            with self._cond:
                return True
