"""LNT003 cycle fixture, half 1: _cond before _mutex."""


class A:
    def ab(self):
        with self._cond:
            with self._mutex:
                return True
