"""LNT001 negative control: the counter-bearing PageFile surface."""


class Engine:
    def lookup(self, page):
        return self.pages.read_page(page)  # charged through PageFile

    def spill(self, page, data):
        self.pages.write_page(page, data)  # same name, counted receiver

    def lifecycle(self):
        self.store.flush()  # not a page touch
        return self.store.stats()
