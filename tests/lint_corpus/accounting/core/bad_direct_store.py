"""LNT001 fixture: engine code calling store primitives directly."""


class Engine:
    def lookup(self, page):
        return self.store.get_page(page)  # finding: bypasses counters

    def spill(self, page, data):
        self.pages.store.put_page(page, data)  # finding: nested receiver

    def steal(self, source, dest, count):
        self.backend.move_records(source, dest, count)  # finding
