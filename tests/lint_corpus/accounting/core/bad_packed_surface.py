"""LNT001 fixture: engine code reaching into the packed-page surface.

The PR 9 packed layout grew uncharged fast paths of its own — the
fused double read, the raw column move, and the byte-image codec.
Each must stay behind the counter-bearing PageFile surface.
"""


class PackedEngine:
    def double_read(self, page):
        return self.store.get_page2(page)  # finding: fused read, uncharged

    def raw_shift(self, low, high, count):
        return self.backend.move_between(low, high, 0, 1, count)  # finding

    def snapshot(self, page):
        import repro.storage.packed as packed

        image = packed.encode_page_image(self.cache[page])  # finding
        return packed.decode_page_image(image)  # finding
