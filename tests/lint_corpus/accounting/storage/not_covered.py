"""LNT001 negative control: storage/ implements the primitives."""


class Backend:
    def copy(self, other, page):
        other.store.put_page(page, self.store.get_page(page))
