"""LNT006 fixture: replication code that drops the budget."""


def apply_forever(self, worker):
    self._lock.write_locked()  # finding: no deadline
    self._cond.wait()  # finding: unbounded sleep
    worker.join()  # finding: hangs on a wedged applier
