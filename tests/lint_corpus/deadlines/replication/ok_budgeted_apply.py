"""LNT006 negative control: replication code carrying the budget."""


def apply_bounded(self, worker, budget):
    with self._lock.write_locked(budget):
        self._cond.wait(budget.wait_budget())
    worker.join(10.0)
    return worker.is_alive()
