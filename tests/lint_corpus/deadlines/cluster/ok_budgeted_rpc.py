"""LNT006 negative control: every cluster RPC carries the budget."""


def bounded_exchange(self, conn_thread, budget):
    self._lock.acquire_write(budget)
    self._cond.wait(budget.wait_budget())
    conn_thread.join(budget.wait_budget())
    return conn_thread.is_alive()
