"""LNT006 fixture: cluster RPC paths that drop the budget."""


def exchange_forever(self, conn_thread):
    self._lock.acquire_write()  # finding: no deadline
    self._cond.wait()  # finding: unbounded sleep for a response
    conn_thread.join()  # finding: hangs on a wedged connection
