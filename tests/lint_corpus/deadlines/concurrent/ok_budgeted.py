"""LNT006 negative control: every blocking call carries the budget."""


def bounded(self, worker, budget):
    self._gate.enter("read", budget)
    self._gate.enter("write", deadline=budget)
    self._lock.acquire_read(budget)
    self._cond.wait(budget.wait_budget())
    worker.join(5.0)
    return worker.is_alive()
