"""LNT006 fixture: blocking calls that drop the budget."""


def stall(self, worker):
    self._gate.enter("read")  # finding: no deadline
    self._lock.acquire_read()  # finding: no deadline
    self._cond.wait()  # finding: unbounded sleep
    worker.join()  # finding: hangs on a deadlocked worker
