"""LNT003 fixture: re-acquiring the non-reentrant rwlock."""


def reenter(lock, deadline):
    with lock.write_locked(deadline):
        with lock.read_locked(deadline):  # finding: self-deadlock
            return True
