"""LNT003 negative control: gate -> rwlock -> mutex, outermost first."""


class Front:
    def forwards(self, deadline):
        admission = self._gate.enter("write", deadline)
        with self._lock.write_locked(deadline):
            with self._cond:
                return admission
