"""LNT003 fixture: acquiring the gate while holding the rwlock."""


class Front:
    def backwards(self, deadline):
        with self._lock.write_locked(deadline):
            admission = self._gate.enter("write", deadline)  # finding
            return admission
