"""LNT002 fixture: public methods reaching the engine without the lock."""


class ThreadSafeDenseFile:
    def __init__(self, inner):
        self._inner = inner  # exempt: lock does not exist yet

    def search(self, key):
        return self._inner.search(key)  # finding: lock-free fast path

    def flush(self):
        self._inner.pages.store.flush()  # finding: store I/O unlocked

    def _helper(self):
        return self._inner.count()  # private: caller holds the guard
