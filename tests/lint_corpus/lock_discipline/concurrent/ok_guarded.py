"""LNT002 negative control: every engine touch sits under a guard."""


class ThreadSafeDenseFile:
    def __init__(self, inner):
        self._inner = inner

    def search(self, key, timeout=None, deadline=None):
        with self._guarded("read", timeout, deadline):
            return self._inner.search(key)

    def insert(self, key, timeout=None, deadline=None):
        with self._guarded("write", timeout, deadline):
            self._inner.insert(key)
