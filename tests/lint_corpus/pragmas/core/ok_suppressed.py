"""Pragma fixture: findings silenced on the line, above, and file-wide."""
# lint: allow-file[determinism]

import random


def trailing(store, page):
    return store.get_page(page)  # lint: allow[accounting]


def above(store, page, data):
    # lint: allow[accounting] -- recovery path, deliberately uncharged
    store.put_page(page, data)


def entropy():
    return random.random()  # silenced by the file pragma
