"""LNT006 interprocedural negative control: same shape, budget
forwarded — the blocking helper waits no longer than the caller's
operation allows."""


class Follower:
    def catch_up(self, timeout):
        return self._drain(timeout)

    def _drain(self, timeout=None):
        with self._lock.read_locked(timeout):
            return True
