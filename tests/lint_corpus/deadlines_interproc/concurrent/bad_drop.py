"""LNT006 interprocedural fixture: the caller holds a budget, the
callee blocks and would take one, the call forwards none.  Per-file
analysis sees an innocent helper call — the blocking primitive (and
its dropped parameter) live in another function."""


class Replica:
    def catch_up(self, timeout):
        return self._drain()

    def _drain(self, timeout=None):
        with self._lock.read_locked(timeout):
            return True
