"""Tests for the application layers (priority queue, time series)."""

import random

import pytest

from repro.applications import (
    DensePriorityQueue,
    EmptyQueueError,
    TimeSeriesStore,
)


class TestPriorityQueue:
    @pytest.fixture
    def queue(self):
        return DensePriorityQueue(num_pages=64, d=8, D=40)

    def test_pops_in_priority_order(self, queue):
        for priority in (5, 1, 4, 2, 3):
            queue.push(priority, f"p{priority}")
        popped = [queue.pop() for _ in range(5)]
        assert popped == [
            (1, "p1"), (2, "p2"), (3, "p3"), (4, "p4"), (5, "p5"),
        ]

    def test_equal_priorities_pop_fifo(self, queue):
        queue.push(7, "first")
        queue.push(7, "second")
        queue.push(7, "third")
        assert [queue.pop()[1] for _ in range(3)] == [
            "first", "second", "third",
        ]

    def test_peek_does_not_remove(self, queue):
        queue.push(2, "two")
        assert queue.peek() == (2, "two")
        assert len(queue) == 1

    def test_empty_queue_raises(self, queue):
        with pytest.raises(EmptyQueueError):
            queue.pop()
        with pytest.raises(EmptyQueueError):
            queue.peek()

    def test_remove_by_handle(self, queue):
        handle = queue.push(3, "victim")
        queue.push(1, "keep")
        assert queue.remove(handle) == "victim"
        assert len(queue) == 1
        assert queue.pop() == (1, "keep")

    def test_drain_until_pops_everything_due(self, queue):
        for priority in range(20):
            queue.push(priority)
        due = queue.drain_until(9)
        assert [priority for priority, _ in due] == list(range(10))
        assert len(queue) == 10
        assert queue.peek()[0] == 10

    def test_drain_until_on_boundary_is_inclusive(self, queue):
        queue.push(5, "due")
        queue.push(6, "later")
        assert queue.drain_until(5) == [(5, "due")]

    def test_due_count(self, queue):
        for priority in range(30):
            queue.push(priority)
        assert queue.due_count(14) == 15
        assert queue.due_count(-1) == 0

    def test_matches_heapq_model(self, queue):
        import heapq

        rng = random.Random(11)
        heap = []
        counter = 0
        for _ in range(400):
            if heap and rng.random() < 0.4:
                priority, _, value = heapq.heappop(heap)
                assert queue.pop() == (priority, value)
            else:
                priority = rng.randrange(100)
                queue.push(priority, f"v{counter}")
                heapq.heappush(heap, (priority, counter, f"v{counter}"))
                counter += 1
        queue.validate()

    def test_as_sorted_list(self, queue):
        for priority in (3, 1, 2):
            queue.push(priority)
        assert [p for p, _ in queue.as_sorted_list()] == [1, 2, 3]


class TestTimeSeriesStore:
    @pytest.fixture
    def store(self):
        store = TimeSeriesStore(num_pages=128, d=8, D=48)
        store.record_batch(
            (minute * 60, "cpu", minute % 100)
            for minute in range(200)
        )
        store.record_batch(
            (minute * 60 + 1, "mem", minute % 50)
            for minute in range(200)
        )
        return store

    def test_len_and_capacity(self, store):
        assert len(store) == 400
        assert store.capacity == 1024

    def test_window_interleaves_series_in_time_order(self, store):
        rows = list(store.window(0, 120))
        times = [timestamp for timestamp, _, _ in rows]
        assert times == sorted(times)
        assert {series for _, series, _ in rows} == {"cpu", "mem"}

    def test_window_bounds_inclusive(self, store):
        rows = list(store.window(60, 60))
        assert [(t, s) for t, s, _ in rows] == [(60, "cpu")]

    def test_series_window_filters(self, store):
        cpu = store.series_window("cpu", 0, 600)
        assert all(isinstance(value, int) for _, value in cpu)
        assert len(cpu) == 11  # minutes 0..10

    def test_late_arrivals_are_absorbed(self, store):
        store.record(90, "cpu", "late!")
        rows = list(store.window(60, 120))
        assert (90, "cpu", "late!") in rows
        store.validate()

    def test_latest(self, store):
        timestamp, series, _ = store.latest()
        assert (timestamp, series) == (199 * 60 + 1, "mem")

    def test_count_matches_scan(self, store):
        assert store.count(0, 3600) == sum(1 for _ in store.window(0, 3600))

    def test_expire_drops_old_keeps_boundary(self, store):
        removed = store.expire(600)
        # cpu at t in {0, 60, ..., 540} and mem at {1, 61, ..., 541}.
        assert removed == 20
        rows = list(store.window(0, 10**9))
        assert min(timestamp for timestamp, _, _ in rows) == 600
        store.validate()

    def test_expire_with_compact(self, store):
        before = len(store)
        removed = store.expire(6000, compact=True)
        assert removed > 0
        assert len(store) == before - removed
        occupancies = store._file.occupancies()
        nonzero = [count for count in occupancies if count]
        assert max(nonzero) - min(nonzero) <= 1
        store.validate()

    def test_expire_empty_store(self):
        store = TimeSeriesStore(num_pages=64, d=4, D=32)
        assert store.expire(100) == 0

    def test_latest_empty_store(self):
        store = TimeSeriesStore(num_pages=64, d=4, D=32)
        assert store.latest() is None
