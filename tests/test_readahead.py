"""Scan readahead: the prefetch window in the buffered stack.

Readahead is purely physical: on a stream scan the buffer pool pulls
the next ``K`` nonempty pages into cache ahead of the cursor, so by
the time the scan reaches them they are hits instead of misses.  The
logical accounting — the paper's metered quantity — must not move by
a single access, and ``replay()`` semantics are untouched because
prefetched frames enter the pool clean.
"""

import pytest

from repro import DenseSequentialFile, PersistentDenseFile
from repro.core.errors import ConfigurationError
from repro.storage.backend import BufferedStore, MemoryStore

GEOMETRY = dict(num_pages=64, d=8, D=40)


def _loaded(readahead, cache_pages=8):
    dense = DenseSequentialFile(
        backend="buffered",
        cache_pages=cache_pages,
        readahead=readahead,
        **GEOMETRY,
    )
    dense.bulk_load(range(500))
    dense.flush()
    return dense


def _hit_rate(stats):
    served = stats["hits"] + stats["prefetch_hits"]
    demand = served + stats["misses"]
    return served / demand if demand else 0.0


class TestStreamScanHitRate:
    def test_readahead_beats_cold_scan(self):
        """Acceptance: higher buffer hit rate on the stream scenario."""
        rates = {}
        for window in (0, 8):
            dense = _loaded(window)
            before = dense.store_stats()
            assert sum(1 for _ in dense.range(0, 499)) == 500
            after = dense.store_stats()
            rates[window] = _hit_rate(
                {
                    key: after[key] - before[key]
                    for key in ("hits", "misses", "prefetch_hits")
                }
            )
            dense.close()
        assert rates[8] > rates[0]
        # With the cursor always one window behind the prefetcher, the
        # scan itself should be nearly all hits.
        assert rates[8] > 0.9

    def test_prefetch_hits_counted(self):
        dense = _loaded(4)
        list(dense.range(0, 499))
        stats = dense.store_stats()
        assert stats["readahead"] == 4
        assert stats["prefetches"] > 0
        assert stats["prefetch_hits"] > 0
        dense.close()

    def test_no_readahead_no_prefetch_counters_move(self):
        dense = _loaded(0)
        list(dense.range(0, 499))
        stats = dense.store_stats()
        assert stats["readahead"] == 0
        assert stats["prefetches"] == 0
        assert stats["prefetch_hits"] == 0
        dense.close()


class TestLogicalAccountingUnchanged:
    @pytest.mark.parametrize("scan", ["range", "scan", "iter"])
    def test_page_accesses_identical(self, scan):
        """Readahead must not change the paper's logical meter at all."""
        meters = {}
        for window in (0, 8):
            dense = _loaded(window)
            dense.stats.checkpoint("scan")
            if scan == "range":
                list(dense.range(100, 400))
            elif scan == "scan":
                dense.scan(0, 250)
            else:
                list(dense)
            meters[window] = dense.stats.delta("scan").page_accesses
            dense.close()
        assert meters[0] == meters[8]

    def test_mixed_workload_state_identical(self):
        images = {}
        for window in (0, 4):
            dense = _loaded(window, cache_pages=6)
            dense.delete_range(200, 260)
            dense.insert_many(range(1000, 1050))
            list(dense.range(0, 2000))
            dense.validate()
            images[window] = (dense.occupancies(), len(dense))
            dense.close()
        assert images[0] == images[4]


class TestWindowMechanics:
    def test_prefetch_clamps_to_file_bounds(self):
        store = BufferedStore(MemoryStore(8), capacity=4, readahead=16)
        # Out-of-range page numbers are dropped, not faulted.
        assert store.prefetch([6, 7, 8, 9, 200, 0, -3]) <= 4
        assert store.stats()["prefetches"] <= 4

    def test_prefetch_skips_resident_pages(self):
        store = BufferedStore(MemoryStore(8), capacity=4, readahead=4)
        store.get_page(3)
        faulted = store.prefetch([3, 4])
        assert faulted == 1  # page 3 already resident

    def test_negative_readahead_rejected(self):
        with pytest.raises(ValueError):
            BufferedStore(MemoryStore(8), capacity=4, readahead=-1)

    def test_base_store_prefetch_is_noop(self):
        store = MemoryStore(8)
        assert store.readahead == 0
        assert store.prefetch([1, 2, 3]) == 0


class TestPersistentWiring:
    def test_readahead_requires_cache(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cache_pages"):
            PersistentDenseFile.create(
                str(tmp_path / "ra.dsf"), readahead=4, **GEOMETRY
            )

    def test_readahead_survives_reopen(self, tmp_path):
        path = str(tmp_path / "ra2.dsf")
        with PersistentDenseFile.create(
            path, cache_pages=8, readahead=4, **GEOMETRY
        ) as dense:
            dense.insert_many(range(200))
        with PersistentDenseFile.open(
            path, cache_pages=8, readahead=4
        ) as dense:
            list(dense.range(0, 199))
            stats = dense.store_stats()
            assert stats["readahead"] == 4
            assert stats["prefetch_hits"] > 0
