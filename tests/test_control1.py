"""Unit and behaviour tests for CONTROL 1 (the amortized algorithm)."""

import pytest

from repro import Control1Engine, DensityParams
from repro.core.invariants import balance_violations, check_counters
from repro.workloads import (
    converging_inserts,
    mixed_workload,
    run_workload,
    uniform_random_inserts,
)


@pytest.fixture
def engine():
    return Control1Engine(DensityParams(num_pages=64, d=8, D=40))


class TestStepB:
    def test_no_rebalance_while_balanced(self, engine):
        for key in range(10):
            engine.insert(key)
        assert engine.rebalances == 0

    def test_violation_triggers_fathers_range_redistribution(self):
        # Geometry: M=4, d=4, D=8, logM=2.  Leaf g(.,1) = 4 + (2/2)*4 = 8.
        params = DensityParams(num_pages=4, d=4, D=8, j=1)
        engine = Control1Engine(params)
        engine.load_occupancies([8, 0, 0, 0], key_start=0, key_gap=10)
        # Inserting into page 1 pushes p(L1) to 9 > 8: violation at L1,
        # father [1,2] is redistributed.
        engine.insert(-1)
        assert engine.rebalances == 1
        occupancies = engine.occupancies()
        assert occupancies[0] + occupancies[1] == 9
        assert max(occupancies[0], occupancies[1]) == 5

    def test_rebalance_restores_balance(self):
        params = DensityParams(num_pages=4, d=4, D=8, j=1)
        engine = Control1Engine(params)
        engine.load_occupancies([8, 0, 0, 0], key_start=0, key_gap=10)
        engine.insert(-1)
        assert balance_violations(engine.calibrator, params) == []

    def test_counters_consistent_after_rebalance(self):
        params = DensityParams(num_pages=4, d=4, D=8, j=1)
        engine = Control1Engine(params)
        engine.load_occupancies([8, 0, 0, 0], key_start=0, key_gap=10)
        engine.insert(-1)
        check_counters(engine.pagefile, engine.calibrator)

    def test_deletions_never_rebalance(self, engine):
        for key in range(40):
            engine.insert(key)
        before = engine.rebalances
        for key in range(40):
            engine.delete(key)
        assert engine.rebalances == before
        assert len(engine) == 0


class TestBehaviour:
    def test_random_workload_stays_valid(self, engine):
        result = run_workload(
            engine, mixed_workload(500, seed=11), validate_every=100
        )
        assert result.validations >= 5

    def test_converging_adversary_stays_valid_but_spikes(self):
        params = DensityParams(num_pages=64, d=8, D=40)
        engine = Control1Engine(params)
        log = engine.enable_operation_log()
        for op in converging_inserts(300):
            engine.insert(op.key)
        engine.validate()
        # The spike: some single command rewrites a large page range.
        assert log.worst_case_accesses > 4 * params.shift_budget

    def test_amortized_cost_is_modest_under_random_inserts(self):
        params = DensityParams(num_pages=128, d=8, D=48)
        engine = Control1Engine(params)
        result = run_workload(engine, uniform_random_inserts(800, seed=5))
        assert result.log.amortized_accesses < 20

    def test_fill_to_capacity(self):
        params = DensityParams(num_pages=16, d=4, D=20)
        engine = Control1Engine(params)
        for key in range(params.max_records):
            engine.insert(key)
        engine.validate()
        assert len(engine) == params.max_records

    def test_largest_rebalance_tracked(self):
        params = DensityParams(num_pages=64, d=8, D=40)
        engine = Control1Engine(params)
        for op in converging_inserts(400):
            engine.insert(op.key)
        if engine.rebalances:
            assert engine.largest_rebalance >= 2
