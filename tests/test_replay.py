"""Tests for workload trace serialization and CLI replay."""

import io
from fractions import Fraction

import pytest

from repro import Control2Engine, DensityParams
from repro.workloads import (
    Operation,
    TraceFormatError,
    converging_inserts,
    dump_operations,
    load_operations,
    mixed_workload,
    run_workload,
)


@pytest.fixture
def trace_path(tmp_path):
    return str(tmp_path / "ops.jsonl")


class TestRoundtrip:
    def test_mixed_workload_roundtrips(self, trace_path):
        operations = mixed_workload(200, seed=3)
        assert dump_operations(operations, trace_path) == 200
        assert load_operations(trace_path) == operations

    def test_fraction_keys_roundtrip_exactly(self, trace_path):
        operations = converging_inserts(50)
        dump_operations(operations, trace_path)
        loaded = load_operations(trace_path)
        assert loaded == operations
        assert all(isinstance(op.key, Fraction) for op in loaded)

    def test_values_and_containers_roundtrip(self, trace_path):
        operations = [
            Operation("insert", 1, "plain"),
            Operation("insert", (2, "composite"), {"nested": [1, 2]}),
            Operation("delete", 1),
        ]
        dump_operations(operations, trace_path)
        assert load_operations(trace_path) == operations

    def test_replayed_trace_gives_identical_state(self, trace_path):
        operations = mixed_workload(300, seed=8)
        dump_operations(operations, trace_path)
        params = DensityParams(num_pages=64, d=8, D=40)
        original = Control2Engine(params)
        run_workload(original, operations)
        replayed = Control2Engine(params)
        run_workload(replayed, load_operations(trace_path))
        assert replayed.occupancies() == original.occupancies()

    def test_empty_trace(self, trace_path):
        dump_operations([], trace_path)
        assert load_operations(trace_path) == []

    def test_blank_lines_skipped(self, trace_path):
        with open(trace_path, "w") as handle:
            handle.write('{"op": "insert", "key": 1}\n\n')
        assert len(load_operations(trace_path)) == 1


class TestErrors:
    def test_bad_json_rejected(self, trace_path):
        with open(trace_path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(TraceFormatError, match="1"):
            load_operations(trace_path)

    def test_unknown_op_rejected(self, trace_path):
        with open(trace_path, "w") as handle:
            handle.write('{"op": "upsert", "key": 1}\n')
        with pytest.raises(TraceFormatError):
            load_operations(trace_path)

    def test_missing_key_rejected(self, trace_path):
        with open(trace_path, "w") as handle:
            handle.write('{"op": "insert"}\n')
        with pytest.raises(TraceFormatError):
            load_operations(trace_path)

    def test_unknown_tag_rejected(self, trace_path):
        with open(trace_path, "w") as handle:
            handle.write('{"op": "insert", "key": {"$what": 1}}\n')
        with pytest.raises(TraceFormatError):
            load_operations(trace_path)

    def test_unencodable_key_rejected(self, trace_path):
        with pytest.raises(TraceFormatError):
            dump_operations([Operation("insert", object())], trace_path)


class TestCliReplay:
    def test_replay_command(self, tmp_path):
        from repro.cli import main

        dense_path = str(tmp_path / "r.dsf")
        trace_path = str(tmp_path / "t.jsonl")
        dump_operations(mixed_workload(150, seed=4), trace_path)
        out = io.StringIO()
        assert main(
            ["create", dense_path, "--pages", "64", "--low-density", "8",
             "--capacity", "40"],
            out=out,
        ) == 0
        code = main(["replay", dense_path, trace_path], out=out)
        assert code == 0
        assert "replayed 150 commands" in out.getvalue()
        assert main(["verify", dense_path], out=out) == 0

    def test_replay_missing_trace(self, tmp_path):
        from repro.cli import main

        dense_path = str(tmp_path / "r.dsf")
        out = io.StringIO()
        main(
            ["create", dense_path, "--pages", "64", "--low-density", "8",
             "--capacity", "40"],
            out=out,
        )
        code = main(["replay", dense_path, str(tmp_path / "no.jsonl")], out=out)
        assert code == 1
