"""Units for the concurrency primitives: Deadline, FairRWLock, AdmissionGate."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.concurrent import AdmissionGate, Deadline, FairRWLock
from repro.concurrent.admission import READ, WRITE
from repro.core.errors import OperationTimeout, OverloadError


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_unbounded_never_expires(self):
        budget = Deadline.unbounded()
        assert not budget.expired
        assert budget.remaining() == float("inf")
        assert budget.wait_budget() is None
        budget.check()  # must not raise

    def test_after_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        budget = Deadline.after(5.0, clock)
        assert budget.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert budget.remaining() == pytest.approx(2.0)
        assert budget.wait_budget() == pytest.approx(2.0)
        assert not budget.expired
        clock.advance(2.0)
        assert budget.expired
        assert budget.remaining() == 0.0

    def test_check_raises_operation_timeout(self):
        clock = FakeClock()
        budget = Deadline.after(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(OperationTimeout):
            budget.check("unit test")

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_resolve_precedence(self):
        clock = FakeClock()
        explicit = Deadline.after(9.0, clock)
        # Explicit deadline wins verbatim.
        assert Deadline.resolve(deadline=explicit, clock=clock) is explicit
        # timeout= beats the default.
        assert Deadline.resolve(
            timeout=2.0, default_timeout=8.0, clock=clock
        ).remaining() == pytest.approx(2.0)
        # The default applies when nothing else is given.
        assert Deadline.resolve(
            default_timeout=4.0, clock=clock
        ).remaining() == pytest.approx(4.0)
        # Nothing at all -> unbounded.
        assert Deadline.resolve(clock=clock).expires_at is None

    def test_resolve_rejects_both(self):
        with pytest.raises(ValueError):
            Deadline.resolve(timeout=1.0, deadline=Deadline.unbounded())


class TestFairRWLock:
    def test_readers_share(self):
        lock = FairRWLock()
        lock.acquire_read()
        lock.acquire_read()  # second reader must not block
        lock.release_read()
        lock.release_read()
        assert lock.stats()["readers_served"] == 2

    def test_writer_excludes_everyone(self):
        lock = FairRWLock()
        lock.acquire_write()
        with pytest.raises(OperationTimeout):
            lock.acquire_read(Deadline.after(0.05))
        with pytest.raises(OperationTimeout):
            lock.acquire_write(Deadline.after(0.05))
        lock.release_write()
        assert lock.stats()["timeouts"] == 2

    def test_release_without_acquire_raises(self):
        lock = FairRWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_writer_is_not_starved_by_readers(self):
        """A queued writer blocks readers that arrive after it (FIFO)."""
        lock = FairRWLock()
        lock.acquire_read()
        writer_in = threading.Event()
        late_reader_in = threading.Event()
        order = []

        def writer():
            lock.acquire_write()
            order.append("writer")
            writer_in.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("reader")
            late_reader_in.set()
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Wait until the writer is queued behind the active reader.
        while lock.queue_depth < 1:
            time.sleep(0.001)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        while lock.queue_depth < 2:
            time.sleep(0.001)
        # Neither may enter while the first reader holds the lock.
        assert not writer_in.is_set() and not late_reader_in.is_set()
        lock.release_read()
        writer_thread.join(5.0)
        reader_thread.join(5.0)
        # FIFO: the writer, which arrived first, went first.
        assert order == ["writer", "reader"]

    def test_timed_out_waiter_leaves_the_queue(self):
        lock = FairRWLock()
        lock.acquire_write()
        with pytest.raises(OperationTimeout):
            lock.acquire_write(Deadline.after(0.05))
        assert lock.queue_depth == 0
        lock.release_write()
        # The lock still works normally afterwards.
        lock.acquire_read()
        lock.release_read()

    def test_contended_increment_is_exclusive(self):
        lock = FairRWLock()
        counter = {"n": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    value = counter["n"]
                    time.sleep(0)  # widen the race window
                    counter["n"] = value + 1

        with ThreadPoolExecutor(max_workers=4) as pool:
            for _ in range(4):
                pool.submit(bump)
        assert counter["n"] == 800
        assert lock.stats()["writers_served"] == 800


class TestAdmissionGate:
    def test_fast_path_admits(self):
        gate = AdmissionGate(max_in_flight=2)
        with gate.enter(READ):
            with gate.enter(WRITE):
                assert gate.in_flight == 2
        assert gate.in_flight == 0
        assert gate.stats()["admitted"] == 2

    def test_full_queue_rejects_with_depth(self):
        gate = AdmissionGate(max_in_flight=1, max_queued=0)
        with gate.enter(READ):
            with pytest.raises(OverloadError) as info:
                gate.enter(READ)
        assert info.value.in_flight == 1
        assert info.value.queue_depth == 0
        assert gate.stats()["rejected"] == 1

    def test_shed_load_rejects_writes_keeps_reads(self):
        gate = AdmissionGate(max_in_flight=1, max_queued=4, shed_load=True)
        token = gate.enter(READ)
        # A write that would queue is rejected immediately...
        with pytest.raises(OverloadError):
            gate.enter(WRITE)
        # ...while a read may queue and is admitted once the slot frees.
        admitted = threading.Event()

        def queued_read():
            with gate.enter(READ, Deadline.after(5.0)):
                admitted.set()

        reader = threading.Thread(target=queued_read)
        reader.start()
        while gate.queue_depth < 1:
            time.sleep(0.001)
        token.__exit__(None, None, None)
        reader.join(5.0)
        assert admitted.is_set()
        assert gate.stats()["shed_writes"] == 1

    def test_queued_wait_honours_deadline(self):
        gate = AdmissionGate(max_in_flight=1, max_queued=4)
        with gate.enter(READ):
            with pytest.raises(OperationTimeout):
                gate.enter(READ, Deadline.after(0.05))
        assert gate.stats()["timeouts"] == 1
        # The timed-out waiter left no residue: the slot is reusable.
        with gate.enter(WRITE):
            pass

    def test_released_slot_admits_the_next_waiter(self):
        gate = AdmissionGate(max_in_flight=1, max_queued=8)
        results = []

        def job(tag):
            with gate.enter(READ, Deadline.after(10.0)):
                results.append(tag)

        first = gate.enter(READ)
        threads = [
            threading.Thread(target=job, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        while gate.queue_depth < 3:
            time.sleep(0.001)
        first.__exit__(None, None, None)
        for thread in threads:
            thread.join(5.0)
        assert sorted(results) == [0, 1, 2]
        assert gate.stats()["peak_queued"] == 3

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queued=-1)
        with pytest.raises(ValueError):
            AdmissionGate().enter("compact")
