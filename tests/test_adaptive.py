"""Tests for the adaptive shift-budget extension."""

import pytest

from repro import AdaptiveControl2Engine, Control2Engine, DensityParams
from repro.core.errors import ConfigurationError
from repro.workloads import (
    converging_inserts,
    mixed_workload,
    run_workload,
    uniform_random_inserts,
)


@pytest.fixture
def params():
    return DensityParams(num_pages=64, d=8, D=40)


class TestConstruction:
    def test_base_budget_validated(self, params):
        with pytest.raises(ConfigurationError):
            AdaptiveControl2Engine(params, base_budget=0)

    def test_base_budget_capped_at_full_budget(self, params):
        engine = AdaptiveControl2Engine(params, base_budget=10**6)
        assert engine.base_budget == params.shift_budget

    def test_algorithm_name(self, params):
        assert "adaptive" in AdaptiveControl2Engine(params).algorithm_name


class TestDangerZone:
    def test_danger_predicate_midpoint_exact(self, params):
        """The integer predicate matches the float midpoint formula."""
        engine = AdaptiveControl2Engine(params)
        tree = engine.calibrator
        for node in (tree.leaf_of_page[1], tree.right[tree.root]):
            pages = tree.pages_in(node)
            depth = tree.depth[node]
            midpoint = (
                params.g_value(depth, 2) + params.g_value(depth, 3)
            ) / 2
            for count in range(0, params.D * pages + 1):
                tree.count[node] = count
                expected = count / pages >= midpoint - 1e-9
                assert engine._in_danger_zone(node) == expected
            tree.count[node] = 0

    def test_no_escalation_when_calm(self, params):
        engine = AdaptiveControl2Engine(params)
        run_workload(engine, uniform_random_inserts(300, seed=1))
        assert engine.escalations == 0

    def test_escalation_under_a_surge(self):
        # Tight slack so the danger zone is actually reachable.
        params = DensityParams(num_pages=64, d=8, D=28)
        engine = AdaptiveControl2Engine(params, base_budget=1)
        for operation in converging_inserts(400):
            engine.insert(operation.key)
        engine.validate()
        assert engine.escalations > 0


class TestCorrectness:
    def test_invariants_hold_under_adversary(self, params):
        engine = AdaptiveControl2Engine(params, base_budget=1)
        result = run_workload(
            engine, converging_inserts(500), validate_every=50
        )
        assert result.validations > 0
        assert engine.stuck_shifts == 0

    def test_invariants_hold_under_mixed_workload(self, params):
        engine = AdaptiveControl2Engine(params, base_budget=2)
        run_workload(engine, mixed_workload(500, seed=9), validate_every=100)

    def test_same_contents_as_fixed_budget_engine(self, params):
        """Budgets change *when* records move, never *which* records live."""
        adaptive = AdaptiveControl2Engine(params, base_budget=1)
        fixed = Control2Engine(params)
        for operation in mixed_workload(400, seed=11):
            for engine in (adaptive, fixed):
                if operation.kind == "insert":
                    engine.insert(operation.key)
                else:
                    engine.delete(operation.key)
        adaptive_keys = [r.key for r in adaptive.pagefile.iter_all()]
        fixed_keys = [r.key for r in fixed.pagefile.iter_all()]
        assert adaptive_keys == fixed_keys

    def test_worst_case_never_exceeds_full_budget_bound(self, params):
        engine = AdaptiveControl2Engine(params, base_budget=1)
        log = engine.enable_operation_log()
        for operation in converging_inserts(500):
            engine.insert(operation.key)
        bound = 3 * params.shift_budget + 2 * params.log_m + 4
        assert log.worst_case_accesses <= bound


class TestCostProfile:
    def test_calmer_commands_cost_less_than_fixed_budget(self):
        """After a surge, the drain phase is cheaper per command."""
        params = DensityParams(num_pages=256, d=8, D=48)
        surge = converging_inserts(600)
        calm = uniform_random_inserts(600, seed=2)

        def run(engine):
            log = engine.enable_operation_log()
            for operation in surge:
                engine.insert(operation.key)
            start = len(log)
            for operation in calm:
                engine.insert(float(operation.key) + 0.3)
            tail = log.page_accesses[start:]
            return sum(tail) / len(tail)

        adaptive_mean = run(AdaptiveControl2Engine(params, base_budget=1))
        fixed_mean = run(Control2Engine(params))
        assert adaptive_mean <= fixed_mean
