"""Tests for the disk-resident B+-tree baseline."""

import random

import pytest

from repro.baselines.btree import BPlusTree
from repro.core.errors import DuplicateKeyError, RecordNotFoundError
from repro.records import Record


@pytest.fixture
def tree():
    return BPlusTree(fanout=4, leaf_capacity=4)


class TestInsertSearch:
    def test_empty_tree(self, tree):
        assert len(tree) == 0
        assert tree.search(1) is None

    def test_roundtrip(self, tree):
        tree.insert(1, "a")
        assert tree.search(1) == Record(1, "a")
        assert 1 in tree
        assert 2 not in tree

    def test_duplicate_rejected(self, tree):
        tree.insert(1)
        with pytest.raises(DuplicateKeyError):
            tree.insert(1)

    def test_splits_grow_height(self, tree):
        for key in range(50):
            tree.insert(key)
        assert tree.height >= 3
        tree.check_invariants()

    def test_random_inserts_keep_invariants(self, tree):
        keys = list(range(300))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key)
        tree.check_invariants()
        assert all(tree.search(key) is not None for key in range(300))

    def test_descending_inserts(self, tree):
        for key in range(100, 0, -1):
            tree.insert(key)
        tree.check_invariants()
        assert [r.key for r in tree.range_scan(1, 100)] == list(range(1, 101))


class TestDelete:
    def test_delete_returns_record(self, tree):
        tree.insert(1, "a")
        assert tree.delete(1) == Record(1, "a")
        assert len(tree) == 0

    def test_delete_missing_raises(self, tree):
        tree.insert(1)
        with pytest.raises(RecordNotFoundError):
            tree.delete(9)

    def test_delete_triggers_borrow_and_merge(self, tree):
        for key in range(64):
            tree.insert(key)
        for key in range(0, 64, 2):
            tree.delete(key)
        tree.check_invariants()
        assert len(tree) == 32

    def test_delete_everything_collapses_tree(self, tree):
        for key in range(100):
            tree.insert(key)
        for key in range(100):
            tree.delete(key)
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_interleaved_inserts_deletes(self, tree):
        rng = random.Random(7)
        model = set()
        for _ in range(1500):
            key = rng.randrange(200)
            if key in model:
                tree.delete(key)
                model.discard(key)
            else:
                tree.insert(key)
                model.add(key)
        tree.check_invariants()
        assert sorted(model) == [r.key for r in tree.range_scan(-1, 10**9)]


class TestScans:
    def test_range_scan_inclusive(self, tree):
        for key in range(0, 40, 2):
            tree.insert(key)
        assert [r.key for r in tree.range_scan(4, 10)] == [4, 6, 8, 10]

    def test_scan_count(self, tree):
        for key in range(20):
            tree.insert(key)
        assert [r.key for r in tree.scan_count(5, 4)] == [5, 6, 7, 8]

    def test_scan_past_end(self, tree):
        tree.insert(1)
        assert [r.key for r in tree.scan_count(0, 10)] == [1]


class TestBulkLoad:
    def test_bulk_load_builds_searchable_tree(self):
        tree = BPlusTree(fanout=8, leaf_capacity=8)
        tree.bulk_load(range(0, 1000, 3))
        tree.check_invariants()
        assert tree.search(999) == Record(999, None)
        assert tree.search(998) is None
        assert len(tree) == 334

    def test_bulk_loaded_leaves_are_physically_sequential(self):
        tree = BPlusTree(fanout=8, leaf_capacity=8)
        tree.bulk_load(range(200))
        pages = tree.leaf_pages_in_order()
        assert pages == sorted(pages)
        assert pages == list(range(pages[0], pages[0] + len(pages)))

    def test_updates_scatter_the_leaf_chain(self):
        tree = BPlusTree(fanout=8, leaf_capacity=8)
        tree.bulk_load(range(0, 400, 2))
        for key in range(1, 400, 2):
            tree.insert(key)
        pages = tree.leaf_pages_in_order()
        assert pages != sorted(pages)  # splits landed at the end

    def test_bulk_load_requires_empty_tree(self):
        tree = BPlusTree()
        tree.insert(1)
        with pytest.raises(ValueError):
            tree.bulk_load([2])

    def test_bulk_load_empty_iterable(self):
        tree = BPlusTree()
        tree.bulk_load([])
        assert len(tree) == 0


class TestCosts:
    def test_search_cost_is_height_reads(self):
        tree = BPlusTree(fanout=4, leaf_capacity=4)
        for key in range(100):
            tree.insert(key)
        tree.stats.reset()
        tree.search(50)
        assert tree.stats.reads == tree.height
        assert tree.stats.writes == 0

    def test_insert_writes_at_least_one_page(self, tree):
        tree.stats.reset()
        tree.insert(1)
        assert tree.stats.writes >= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)
        with pytest.raises(ValueError):
            BPlusTree(leaf_capacity=1)
