"""CONTROL 1/2 on files whose page count is not a power of two.

The calibrator splits ranges at the floor midpoint, so for general ``M``
the leaves sit at depths ``ceil(log2 M)`` *and* shallower.  The
``g(v, r)`` thresholds depend on each node's actual depth, so uneven
trees exercise arithmetic paths the power-of-two examples never touch.
"""

import pytest

from repro import (
    Control1Engine,
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
)
from repro.workloads import (
    converging_inserts,
    mixed_workload,
    run_workload,
    uniform_random_inserts,
)

SIZES = [3, 6, 10, 24, 100, 321]


@pytest.mark.parametrize("num_pages", SIZES)
def test_calibrator_covers_every_page_exactly_once(num_pages):
    from repro.core.calibrator import CalibratorTree

    tree = CalibratorTree(num_pages)
    for page in range(1, num_pages + 1):
        leaf = tree.leaf_of_page[page]
        assert tree.lo[leaf] == tree.hi[leaf] == page
    # Internal consistency: children partition their parent.
    for node in tree.iter_nodes():
        if not tree.is_leaf(node):
            left, right = tree.left[node], tree.right[node]
            assert tree.lo[left] == tree.lo[node]
            assert tree.hi[right] == tree.hi[node]
            assert tree.hi[left] + 1 == tree.lo[right]


@pytest.mark.parametrize("num_pages", SIZES)
def test_leaf_depths_bounded_by_ceil_log(num_pages):
    from repro.core.calibrator import CalibratorTree
    from repro.core.params import ceil_log2

    tree = CalibratorTree(num_pages)
    depths = [tree.depth[tree.leaf_of_page[p]] for p in range(1, num_pages + 1)]
    assert max(depths) == ceil_log2(num_pages)
    assert min(depths) >= max(depths) - 1 or num_pages <= 2


@pytest.mark.parametrize("num_pages", [6, 10, 24, 100])
def test_control2_mixed_workload_on_uneven_tree(num_pages):
    params = DensityParams(num_pages=num_pages, d=8, D=8 + 3 * 8)
    engine = Control2Engine(params)
    count = min(400, params.max_records)
    result = run_workload(
        engine, mixed_workload(count, seed=num_pages), validate_every=50
    )
    assert result.validations > 0
    assert engine.stuck_shifts == 0


@pytest.mark.parametrize("num_pages", [6, 24, 100])
def test_control2_adversary_on_uneven_tree(num_pages):
    params = DensityParams(num_pages=num_pages, d=8, D=8 + 3 * 8)
    engine = Control2Engine(params)
    count = min(500, params.max_records - 1)
    run_workload(engine, converging_inserts(count), validate_every=50)
    assert engine.stuck_shifts == 0


@pytest.mark.parametrize("num_pages", [6, 100])
def test_control1_on_uneven_tree(num_pages):
    params = DensityParams(num_pages=num_pages, d=8, D=8 + 3 * 8)
    engine = Control1Engine(params)
    count = min(400, params.max_records - 1)
    run_workload(
        engine, uniform_random_inserts(count, seed=3), validate_every=50
    )


def test_fill_uneven_file_to_capacity():
    params = DensityParams(num_pages=11, d=4, D=20)
    engine = Control2Engine(params)
    for key in range(params.max_records):
        engine.insert(key)
    engine.validate()
    assert len(engine) == params.max_records


def test_facade_on_prime_page_count():
    dense = DenseSequentialFile(num_pages=97, d=6, D=40)
    dense.insert_many(range(300))
    assert dense.count_range(50, 149) == 100
    assert dense.select(123).key == 123
    dense.delete_range(100, 199)
    dense.validate()
    assert len(dense) == 200
