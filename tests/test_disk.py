"""Unit tests for the simulated disk and the access trace."""

import pytest

from repro.storage.cost import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.tracing import AccessTrace


class TestSimulatedDisk:
    def test_reads_and_writes_are_metered(self):
        disk = SimulatedDisk(10)
        disk.read(3)
        disk.write(3)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1

    def test_out_of_range_page_raises(self):
        disk = SimulatedDisk(10)
        with pytest.raises(IndexError):
            disk.read(0)
        with pytest.raises(IndexError):
            disk.write(11)

    def test_arm_follows_accesses(self):
        disk = SimulatedDisk(10)
        assert disk.arm_position == -1
        disk.read(4)
        assert disk.arm_position == 4

    def test_seek_counted_when_arm_jumps(self):
        disk = SimulatedDisk(100, CostModel(seek_base=5.0))
        disk.read(1)
        disk.read(2)   # contiguous: no seek
        disk.read(50)  # jump: seek
        assert disk.stats.seeks == 2  # initial positioning + the jump

    def test_park_forgets_position(self):
        disk = SimulatedDisk(10, CostModel(seek_base=5.0))
        disk.read(5)
        disk.park()
        disk.read(6)
        # After parking, even an adjacent page pays the base seek.
        assert disk.stats.cost == (1.0 + 5.0) * 2

    def test_extend_grows_address_space(self):
        disk = SimulatedDisk(5)
        first_new = disk.extend(3)
        assert first_new == 6
        disk.read(8)  # now valid
        with pytest.raises(IndexError):
            disk.read(9)

    def test_extend_requires_positive_growth(self):
        disk = SimulatedDisk(5)
        with pytest.raises(ValueError):
            disk.extend(0)

    def test_negative_page_count_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDisk(-1)

    def test_reset_stats_keeps_arm(self):
        disk = SimulatedDisk(10)
        disk.read(7)
        disk.reset_stats()
        assert disk.stats.page_accesses == 0
        assert disk.arm_position == 7


class TestAccessTrace:
    def test_disabled_trace_records_nothing(self):
        disk = SimulatedDisk(10)
        disk.read(1)
        assert len(disk.trace) == 0

    def test_enabled_trace_records_kind_and_page(self):
        trace = AccessTrace(enabled=True)
        disk = SimulatedDisk(10, trace=trace)
        disk.read(1)
        disk.write(2)
        events = list(trace)
        assert [(e.kind, e.page) for e in events] == [("r", 1), ("w", 2)]

    def test_capacity_drops_overflow(self):
        trace = AccessTrace(enabled=True, capacity=2)
        for page in (1, 2, 3):
            trace.record("r", page)
        assert len(trace) == 2
        assert trace.dropped == 1

    def test_runs_split_on_jumps(self):
        trace = AccessTrace(enabled=True)
        for page in (1, 2, 3, 10, 11, 5):
            trace.record("r", page)
        assert trace.runs() == [(1, 3), (10, 2), (5, 1)]

    def test_rereading_same_page_continues_run(self):
        trace = AccessTrace(enabled=True)
        for page in (4, 4, 5):
            trace.record("r", page)
        assert trace.runs() == [(4, 3)]

    def test_mean_run_length(self):
        trace = AccessTrace(enabled=True)
        for page in (1, 2, 9):
            trace.record("r", page)
        assert trace.mean_run_length() == 1.5

    def test_empty_trace_run_stats(self):
        trace = AccessTrace(enabled=True)
        assert trace.runs() == []
        assert trace.mean_run_length() == 0.0

    def test_clear_resets(self):
        trace = AccessTrace(enabled=True)
        trace.record("r", 1)
        trace.clear()
        assert len(trace) == 0
        assert trace.pages() == []
