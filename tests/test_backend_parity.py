"""Cross-backend parity: one algorithm, three physical layers.

The whole point of the ``PageStore`` seam is that the *logical* file —
record placement, invariants, and the page-access counts the paper
bounds — is a function of the command sequence alone, independent of
where pages physically live.  These tests drive the same sequence of
inserts, deletes and scans against

* a :class:`~repro.storage.backend.MemoryStore` (pure simulator),
* a :class:`~repro.storage.backend.DiskStore` (write-through OS file),
* a :class:`~repro.storage.backend.BufferedStore` over a second
  on-disk file (live write-back LRU cache),

and assert byte-identical logical state across all three: contents,
``validate()`` outcomes, logical access counters, per-page encodings,
and (for the two durable stacks) byte-identical files after a flush.
"""

import os
import random
import shutil
import tempfile

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.dense_file import DenseSequentialFile
from repro.storage.backend import BufferedStore, DiskStore, MemoryStore
from repro.storage.codec import encode_page

#: Small geometry that satisfies the slack condition (20 > 3*4) so all
#: runs use plain CONTROL 2; the cap is d*M = 64 records.
M, LOW_D, HIGH_D = 16, 4, 24

KEYS = st.integers(min_value=0, max_value=10_000)


def _make_files(workdir):
    """The three stacks under test, oldest substrate first."""
    mem = DenseSequentialFile(M, LOW_D, HIGH_D)
    disk = DenseSequentialFile(
        M, LOW_D, HIGH_D,
        store=DiskStore.create(
            os.path.join(workdir, "plain.dsf"), num_pages=M, d=LOW_D, D=HIGH_D
        ),
    )
    buffered = DenseSequentialFile(
        M, LOW_D, HIGH_D,
        store=BufferedStore(
            DiskStore.create(
                os.path.join(workdir, "cached.dsf"),
                num_pages=M, d=LOW_D, D=HIGH_D,
            ),
            capacity=4,
        ),
    )
    return [mem, disk, buffered]


def _assert_parity(files):
    """Logical state must be indistinguishable across every backend."""
    reference = files[0]
    ref_pages = [
        encode_page(reference.engine.pagefile.page(p).records())
        for p in range(1, M + 1)
    ]
    for other in files[1:]:
        assert len(other) == len(reference)
        assert other.occupancies() == reference.occupancies()
        for page_number in range(1, M + 1):
            encoded = encode_page(
                other.engine.pagefile.page(page_number).records()
            )
            assert encoded == ref_pages[page_number - 1]
        # The paper's quantity: logical accesses never depend on the
        # physical layer.
        assert other.stats.reads == reference.stats.reads
        assert other.stats.writes == reference.stats.writes
        assert other.stats.cost == reference.stats.cost
        other.validate()
    reference.validate()


class BackendParityMachine(RuleBasedStateMachine):
    """Apply every command to all three stacks and compare after each."""

    @initialize()
    def setup(self):
        self.workdir = tempfile.mkdtemp(prefix="parity-")
        self.files = _make_files(self.workdir)
        self.keys = set()

    @rule(key=KEYS)
    def insert(self, key):
        if key in self.keys or len(self.keys) >= LOW_D * M:
            return
        self.keys.add(key)
        for dense in self.files:
            dense.insert(key, f"v{key}")

    @rule(key=KEYS)
    def delete(self, key):
        if key not in self.keys:
            return
        self.keys.remove(key)
        for dense in self.files:
            dense.delete(key)

    @rule(lo=KEYS, hi=KEYS)
    def scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        expected = sorted(k for k in self.keys if lo <= k <= hi)
        for dense in self.files:
            assert [r.key for r in dense.range(lo, hi)] == expected

    @invariant()
    def backends_agree(self):
        if hasattr(self, "files"):
            _assert_parity(self.files)

    def teardown(self):
        if hasattr(self, "files"):
            for dense in self.files:
                dense.close()
            shutil.rmtree(self.workdir, ignore_errors=True)


TestBackendParity = BackendParityMachine.TestCase
TestBackendParity.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


class TestDeterministicParity:
    """A longer seeded stream, checked once at the end (fast path)."""

    @pytest.fixture
    def workdir(self):
        path = tempfile.mkdtemp(prefix="parity-det-")
        yield path
        shutil.rmtree(path, ignore_errors=True)

    def test_mixed_stream_ends_identical(self, workdir):
        files = _make_files(workdir)
        rng = random.Random(86)
        live = set()
        for _ in range(600):
            if live and rng.random() < 0.4:
                key = rng.choice(sorted(live))
                live.remove(key)
                for dense in files:
                    dense.delete(key)
            else:
                key = rng.randrange(10_000)
                if key in live or len(live) >= LOW_D * M:
                    continue
                live.add(key)
                for dense in files:
                    dense.insert(key, key * 3)
        _assert_parity(files)

        # After a flush the two durable stacks are byte-for-byte equal:
        # the cache changes when pages are written, never what is written.
        for dense in files[1:]:
            dense.flush()
        plain = open(os.path.join(workdir, "plain.dsf"), "rb").read()
        cached = open(os.path.join(workdir, "cached.dsf"), "rb").read()
        assert plain == cached
        for dense in files:
            dense.close()

    def test_buffered_memory_matches_memory(self, workdir):
        """Cache over the simulator: logical meters stay identical."""
        mem = DenseSequentialFile(M, LOW_D, HIGH_D)
        cached = DenseSequentialFile(
            M, LOW_D, HIGH_D, backend="buffered", cache_pages=4
        )
        for key in range(0, 128, 2):
            mem.insert(key)
            cached.insert(key)
        for key in range(0, 128, 8):
            mem.delete(key)
            cached.delete(key)
        assert cached.stats.reads == mem.stats.reads
        assert cached.stats.writes == mem.stats.writes
        assert list(cached.items()) == list(mem.items())
        mem.validate()
        cached.validate()
        assert isinstance(cached.store, BufferedStore)
        assert isinstance(cached.store.inner, MemoryStore)
        pool = cached.store.pool_stats
        assert pool.accesses == pool.hits + pool.misses > 0
