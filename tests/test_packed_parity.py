"""Packed vs object pages: one behaviour, two representations.

:class:`~repro.storage.packed.PackedPage` is advertised as a drop-in
behavioural replacement for the object
:class:`~repro.storage.page.Page`: same results, same exceptions, same
logical page-access counts — only the in-core layout differs.  These
tests hold that promise in three tiers:

* **page level** — a Hypothesis-driven mirror applies the same random
  operation stream to both classes and demands identical return
  values, identical exceptions, and identical final record lists;
* **file level** — a stateful machine drives two complete
  ``DenseSequentialFile`` stacks (``page_format="packed"`` vs
  ``"object"``) and checks per-page state, logical meters, and the
  physical store counters agree after every command;
* **image level** — the format-byte classifier packs exactly the
  homogeneous pages it documents (int64 / float64 / short-str keys,
  bytes-or-None values) and demotes everything else to the generic
  object codec, with every image round-tripping exactly — including
  legacy version-1 files that predate the packed format.
"""

import os
import shutil
import tempfile
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.dense_file import DenseSequentialFile
from repro.core.errors import DuplicateKeyError, RecordNotFoundError, UsageError
from repro.records import Record
from repro.storage.backend import DiskStore, move_between
from repro.storage.codec import CodecError, encode_page
from repro.storage.packed import (
    PAGE_FORMAT_F64,
    PAGE_FORMAT_I64,
    PAGE_FORMAT_OBJECT,
    PAGE_FORMAT_STR,
    PackedPage,
    decode_page_image,
    encode_page_image,
    encode_records_image,
    page_columns,
)
from repro.storage.page import Page

# ---------------------------------------------------------------------------
# page level: every operation, both classes, identical outcomes
# ---------------------------------------------------------------------------

#: Heterogeneous keys on purpose: ints, floats, strings and Fractions
#: are mutually comparable only within a type, so each generated stream
#: sticks to one key strategy — but the *suite* exercises all of them.
KEY_STRATEGIES = {
    "int": st.integers(min_value=-(2**70), max_value=2**70),
    "float": st.floats(allow_nan=False, allow_infinity=False),
    "str": st.text(max_size=40),
    "fraction": st.fractions(max_denominator=50),
}

VALUES = st.one_of(
    st.none(),
    st.binary(max_size=12),
    st.integers(),
    st.text(max_size=8),
    st.tuples(st.integers(), st.text(max_size=4)),
)


def _apply(page, op, args):
    """Run one operation; return ``("ok", result)`` or ``("err", type)``."""
    try:
        method = getattr(page, op)
        return "ok", method(*args)
    except (DuplicateKeyError, RecordNotFoundError, UsageError) as exc:
        return "err", type(exc).__name__


OPS = st.sampled_from(
    ["insert_kv", "remove", "get", "replace", "take_lowest", "take_highest"]
)


@st.composite
def operation_streams(draw):
    kind = draw(st.sampled_from(sorted(KEY_STRATEGIES)))
    keys = KEY_STRATEGIES[kind]
    stream = []
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        op = draw(OPS)
        if op in ("take_lowest", "take_highest"):
            stream.append((op, (draw(st.integers(min_value=0, max_value=6)),)))
        elif op == "replace":
            stream.append((op, (Record(draw(keys), draw(VALUES)),)))
        elif op == "insert_kv":
            stream.append((op, (draw(keys), draw(VALUES))))
        else:  # remove / get
            stream.append((op, (draw(keys),)))
    return stream


@given(operation_streams())
@settings(max_examples=120, deadline=None)
def test_operation_stream_parity(stream):
    packed, plain = PackedPage(), Page()
    for op, args in stream:
        assert _apply(packed, op, args) == _apply(plain, op, args)
        assert packed.records() == plain.records()
        assert len(packed) == len(plain)
        assert packed.is_empty == plain.is_empty
    assert list(packed) == list(plain)


@given(
    st.lists(st.integers(), unique=True, min_size=0, max_size=20),
    st.lists(st.integers(), unique=True, min_size=0, max_size=20),
    st.integers(min_value=0, max_value=25),
    st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_slice_moves_match_record_moves(low_keys, high_keys, count, upward):
    """``take_*_into`` is exactly ``take_* + extend_*`` — state and errors."""
    source_records = [Record(key, key % 5) for key in sorted(low_keys)]
    dest_records = [Record(key, None) for key in sorted(high_keys)]

    packed_src = PackedPage(source_records)
    packed_dst = PackedPage(dest_records)
    plain_src = Page(source_records)
    plain_dst = Page(dest_records)

    if upward:
        fast = lambda: packed_src.take_lowest_into(packed_dst, count)  # noqa: E731
        slow = lambda: plain_dst.extend_high(plain_src.take_lowest(count))  # noqa: E731
    else:
        fast = lambda: packed_src.take_highest_into(packed_dst, count)  # noqa: E731
        slow = lambda: plain_dst.extend_low(plain_src.take_highest(count))  # noqa: E731

    try:
        moved = fast()
        failed = None
    except UsageError as exc:
        moved, failed = None, str(exc)
    try:
        slow()
        plain_failed = None
    except UsageError as exc:
        plain_failed = str(exc)

    assert (failed is None) == (plain_failed is None)
    if failed is None:
        assert moved == min(count, len(source_records))
        assert packed_src.records() == plain_src.records()
        assert packed_dst.records() == plain_dst.records()
    else:
        assert failed == plain_failed


def test_move_between_dispatches_both_representations():
    for page_class in (PackedPage, Page):
        low = page_class([Record(k) for k in (1, 2, 3)])
        high = page_class([Record(k) for k in (10, 11)])
        # dest above source: the highest records slide up.
        assert move_between(low, high, source=1, dest=2, count=2) == 2
        assert [r.key for r in low] == [1]
        assert [r.key for r in high] == [2, 3, 10, 11]
        # dest below source: the lowest records slide back down.
        assert move_between(high, low, source=2, dest=1, count=3) == 3
        assert [r.key for r in low] == [1, 2, 3, 10]
        assert [r.key for r in high] == [11]


def test_page_columns_agrees_across_representations():
    records = [Record(k, bytes([k])) for k in (3, 7, 9)]
    for page in (PackedPage(records), Page(records)):
        keys, values = page_columns(page)
        assert keys == [3, 7, 9]
        assert values == [b"\x03", b"\x07", b"\x09"]


# ---------------------------------------------------------------------------
# file level: two full stacks, identical logical and physical meters
# ---------------------------------------------------------------------------

M, LOW_D, HIGH_D = 16, 4, 24
FILE_KEYS = st.integers(min_value=0, max_value=10_000)


def _format_pair():
    return [
        DenseSequentialFile(M, LOW_D, HIGH_D, page_format=page_format)
        for page_format in ("packed", "object")
    ]


def _assert_file_parity(packed_file, object_file):
    assert len(packed_file) == len(object_file)
    assert packed_file.occupancies() == object_file.occupancies()
    for page_number in range(1, M + 1):
        assert encode_page(
            packed_file.engine.pagefile.page(page_number).records()
        ) == encode_page(
            object_file.engine.pagefile.page(page_number).records()
        )
    # The paper's metered quantity and the raw store counters both have
    # to agree: the representation must not change what gets charged.
    for name in ("reads", "writes", "cost"):
        assert getattr(packed_file.stats, name) == getattr(
            object_file.stats, name
        )
    packed_stats = dict(packed_file.store.stats())
    object_stats = dict(object_file.store.stats())
    assert packed_stats == object_stats
    packed_file.validate()
    object_file.validate()


class PackedObjectParityMachine(RuleBasedStateMachine):
    """Mirror every command into both page formats; compare constantly."""

    @initialize()
    def setup(self):
        self.packed, self.plain = _format_pair()
        self.keys = set()

    @rule(key=FILE_KEYS)
    def insert(self, key):
        if key in self.keys or len(self.keys) >= LOW_D * M:
            return
        self.keys.add(key)
        self.packed.insert(key, f"v{key}")
        self.plain.insert(key, f"v{key}")

    @rule(key=FILE_KEYS)
    def delete(self, key):
        if key not in self.keys:
            return
        self.keys.remove(key)
        assert self.packed.delete(key) == self.plain.delete(key)

    @rule(lo=FILE_KEYS, hi=FILE_KEYS)
    def scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        expected = sorted(k for k in self.keys if lo <= k <= hi)
        for dense in (self.packed, self.plain):
            assert [r.key for r in dense.range(lo, hi)] == expected

    @invariant()
    def formats_agree(self):
        if hasattr(self, "packed"):
            _assert_file_parity(self.packed, self.plain)


TestPackedObjectParity = PackedObjectParityMachine.TestCase
TestPackedObjectParity.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


def test_heterogeneous_keys_in_one_file_stay_identical():
    """Columns accept any ordered key type; meters stay in lockstep."""
    packed_file, object_file = _format_pair()
    for key in (Fraction(1, 3), Fraction(2, 3), Fraction(7, 2), Fraction(9)):
        packed_file.insert(key, str(key))
        object_file.insert(key, str(key))
    assert packed_file.delete(Fraction(2, 3)) == object_file.delete(
        Fraction(2, 3)
    )
    _assert_file_parity(packed_file, object_file)


# ---------------------------------------------------------------------------
# image level: the format byte packs exactly what it documents
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "records, expected_format",
    [
        ([Record(k) for k in (1, 5, 9)], PAGE_FORMAT_I64),
        ([Record(float(k), None) for k in range(4)], PAGE_FORMAT_F64),
        ([Record("a"), Record("bc"), Record("já")], PAGE_FORMAT_STR),
        ([Record(2, b"x"), Record(4, None)], PAGE_FORMAT_I64),
        # int64 overflow, bool contamination, mixed numeric types, long
        # strings, exotic keys, non-bytes values: all demote to the
        # generic object codec (format byte 0).
        ([Record(2**63)], PAGE_FORMAT_OBJECT),
        ([Record(-(2**63) - 1)], PAGE_FORMAT_OBJECT),
        ([Record(False), Record(2)], PAGE_FORMAT_OBJECT),
        ([Record(1), Record(2.5)], PAGE_FORMAT_OBJECT),
        ([Record("x" * 256)], PAGE_FORMAT_OBJECT),
        ([Record(Fraction(1, 3))], PAGE_FORMAT_OBJECT),
        ([Record((1, 2)), Record((3, 4))], PAGE_FORMAT_OBJECT),
        ([Record(1, "not-bytes")], PAGE_FORMAT_OBJECT),
        ([Record(1, 99)], PAGE_FORMAT_OBJECT),
        ([], PAGE_FORMAT_OBJECT),
    ],
)
def test_format_byte_classification(records, expected_format):
    image = encode_records_image(records)
    assert image[0] == expected_format
    assert decode_page_image(image) == records


@pytest.mark.parametrize("page_class", [PackedPage, Page])
def test_image_round_trip_is_exact_for_both_classes(page_class):
    records = [Record(k, bytes([k % 251])) for k in range(0, 40, 3)]
    page = page_class(records)
    image = encode_page_image(page)
    assert image[0] == PAGE_FORMAT_I64
    assert decode_page_image(image) == records


@given(
    st.lists(
        st.tuples(
            st.one_of(
                st.integers(),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=300),
                st.fractions(max_denominator=40),
            ),
            st.one_of(st.none(), st.binary(max_size=20), st.integers()),
        ),
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_every_image_round_trips(pairs):
    """Whatever the classifier picks, decoding restores exact records."""
    seen = set()
    records = []
    for key, value in pairs:
        marker = (type(key).__name__, key)
        if marker in seen:
            continue
        seen.add(marker)
        records.append(Record(key, value))
    records.sort(key=lambda record: (type(record.key).__name__, record.key))
    image = encode_records_image(records)
    decoded = decode_page_image(image)
    assert decoded == records
    for original, roundtripped in zip(records, decoded):
        assert type(roundtripped.key) is type(original.key)
        assert type(roundtripped.value) is type(original.value)


def test_mid_stream_demotion_and_repromotion():
    """A Fraction key demotes the *write*, not the page; removing it
    restores the packed format on the next write."""
    page = PackedPage([Record(k) for k in (10, 20, 30)])
    assert encode_page_image(page)[0] == PAGE_FORMAT_I64
    page.insert_kv(Fraction(25, 1))
    demoted = encode_page_image(page)
    assert demoted[0] == PAGE_FORMAT_OBJECT
    assert decode_page_image(demoted) == page.records()
    page.remove(Fraction(25, 1))
    assert encode_page_image(page)[0] == PAGE_FORMAT_I64


def test_corrupt_images_raise_codec_errors():
    image = encode_records_image([Record(k, b"pay") for k in (1, 2, 3)])
    with pytest.raises(CodecError):
        decode_page_image(b"")
    with pytest.raises(CodecError):
        decode_page_image(bytes([77]) + image[1:])  # unknown format byte
    with pytest.raises(CodecError):
        decode_page_image(image[:-2])  # truncated value bytes
    with pytest.raises(CodecError):
        decode_page_image(image + b"\x00")  # trailing garbage


# ---------------------------------------------------------------------------
# on-disk compatibility: version-1 files predate the packed format
# ---------------------------------------------------------------------------


@pytest.fixture
def workdir():
    path = tempfile.mkdtemp(prefix="packed-parity-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _disk_file(workdir, name, version, page_class):
    store = DiskStore.create(
        os.path.join(workdir, name),
        num_pages=M,
        d=LOW_D,
        D=HIGH_D,
        version=version,
        page_class=page_class,
    )
    return DenseSequentialFile(M, LOW_D, HIGH_D, store=store)


@pytest.mark.parametrize("version", [1, 2])
@pytest.mark.parametrize("page_class", [PackedPage, Page])
def test_old_and_new_files_reopen_under_either_page_class(
    workdir, version, page_class
):
    """Both on-disk versions round trip through both in-core layouts —
    in particular, packed cores keep legacy v1 files readable."""
    name = f"v{version}-{page_class.__name__}.dsf"
    dense = _disk_file(workdir, name, version, page_class)
    for key in range(0, 120, 2):
        dense.insert(key, f"value-{key}")
    for key in range(0, 120, 10):
        dense.delete(key)
    expected = list(dense.items())
    dense.close()

    for reopen_class in (PackedPage, Page):
        store = DiskStore.open(
            os.path.join(workdir, name), page_class=reopen_class
        )
        assert store.raw.version == version
        reopened = DenseSequentialFile(M, LOW_D, HIGH_D, store=store)
        reopened.engine.restore_from_store()
        assert list(reopened.items()) == expected
        reopened.validate()
        reopened.close()

    # Both format versions also pass the scrub ladder untouched.
    from repro.storage.scrub import scrub

    report = scrub(os.path.join(workdir, name))
    assert report.healthy, report.summary()
    assert not report.corrupt


def test_format_byte_round_trips_through_journal_replay(workdir):
    """Journaled payloads are format-byte images; replay restores both
    the packed pages and the demoted (object-codec) ones exactly."""
    from repro.persistent import JournaledDenseFile

    path = os.path.join(workdir, "journaled.dsf")
    dense = JournaledDenseFile.create(path, num_pages=16, d=8, D=28)
    for key in range(0, 30, 2):
        dense.insert(key, bytes([key]))  # packed int64 pages
    dense.insert(Fraction(7, 2), "demoted")  # object-codec page
    dense.insert(Fraction(31, 3), (1, "tuple-value"))
    expected = dense.scan(0, 100)
    dense.close()

    reopened = JournaledDenseFile.open(path)
    assert reopened.scan(0, 100) == expected
    assert reopened.search(Fraction(7, 2)).value == "demoted"
    reopened.validate()
    reopened.close()


def test_format_byte_round_trips_through_replication(workdir):
    """Shipped WAL records carry page images verbatim; a replica
    reconstructs packed and demoted pages bit-exactly."""
    from repro.persistent import JournaledDenseFile
    from repro.replication import Failover, QueueTransport, bootstrap_replica

    primary = JournaledDenseFile.create(
        os.path.join(workdir, "primary.dsf"), num_pages=16, d=8, D=28
    )
    primary.insert_many(range(0, 40, 2))
    replica = bootstrap_replica(
        primary, os.path.join(workdir, "replica.dsf")
    )
    pair = Failover(primary, replica, QueueTransport())
    primary.insert(101, b"packed-value")
    primary.insert(Fraction(5, 3), "demoted-value")
    pair.sync()
    assert replica.search(101).value == b"packed-value"
    assert replica.search(Fraction(5, 3)).value == "demoted-value"
    _, records = replica.snapshot()
    assert dict(records) == {r.key: r.value for r in primary.scan(0, 200)}
    replica.close()
    primary.close()


def test_v1_and_v2_files_hold_identical_logical_state(workdir):
    """The format version changes slot bytes, never logical contents."""
    v1 = _disk_file(workdir, "old.dsf", 1, PackedPage)
    v2 = _disk_file(workdir, "new.dsf", 2, PackedPage)
    for dense in (v1, v2):
        for key in range(60):
            dense.insert(key, bytes([key]))
        for key in range(0, 60, 7):
            dense.delete(key)
    assert list(v1.items()) == list(v2.items())
    assert v1.stats.reads == v2.stats.reads
    assert v1.stats.writes == v2.stats.writes
    v1.close()
    v2.close()
