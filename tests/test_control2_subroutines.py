"""Unit tests for CONTROL 2's subroutines on crafted states.

These tests call ACTIVATE / SELECT / SHIFT directly (through their
private wrappers) on hand-built configurations, independent of the
worked example, to pin each rule of Section 4 in isolation.
"""

import pytest

from repro import Control2Engine, DensityParams


@pytest.fixture
def engine():
    """8-page engine with mild occupancy and J=1 for surgical control."""
    params = DensityParams(num_pages=8, d=9, D=18, j=1)
    eng = Control2Engine(params)
    eng.load_occupancies([8, 8, 8, 8, 8, 8, 8, 8], key_start=0, key_gap=10)
    return eng


def node_for(engine, lo, hi):
    tree = engine.calibrator
    for node in tree.iter_nodes():
        if (tree.lo[node], tree.hi[node]) == (lo, hi):
            return node
    raise AssertionError(f"no node [{lo},{hi}]")


class TestActivate:
    def test_right_son_dest_starts_at_fathers_left_edge(self, engine):
        right = node_for(engine, 5, 8)
        engine._activate(right)
        assert engine.is_warning(right)
        assert engine.destinations[right] == 1

    def test_left_son_dest_starts_at_fathers_right_edge(self, engine):
        left = node_for(engine, 1, 4)
        engine._activate(left)
        assert engine.destinations[left] == 8

    def test_leaf_activation(self, engine):
        leaf6 = engine.calibrator.leaf_of_page[6]
        engine._activate(leaf6)
        # Leaf 6 is a right son of [5,6]; DEST starts at page 5.
        assert engine.destinations[leaf6] == 5

    def test_root_activation_rejected(self, engine):
        with pytest.raises(ValueError):
            engine._activate(engine.calibrator.root)

    def test_rollback_rule_1_leftward_sweep(self, engine):
        """A leftward (DIR=1) sweep inside the activated window rolls back."""
        v_right = node_for(engine, 5, 8)  # DIR=1, sweeps RANGE(root)=[1,8]
        engine._activate(v_right)
        engine.destinations[v_right] = 3  # pretend the sweep progressed
        # Activating the left child of [1,4] (window f_w = [1,4]).
        child = node_for(engine, 1, 2)
        engine._activate(child)
        # Rule 1 window is [lo+1, hi] = [2, 4]; DEST was 3 -> reset to 1.
        assert engine.destinations[v_right] == 1

    def test_rollback_rule_0_rightward_sweep(self, engine):
        v_left = node_for(engine, 1, 4)  # DIR=0, sweeps [1,8] rightward
        engine._activate(v_left)
        engine.destinations[v_left] = 6
        child = node_for(engine, 7, 8)  # f_w = [5,8]
        engine._activate(child)
        # Rule 0 window is [lo, hi-1] = [5, 7]; DEST was 6 -> reset to 8.
        assert engine.destinations[v_left] == 8

    def test_rollback_skips_dest_outside_window(self, engine):
        v_right = node_for(engine, 5, 8)
        engine._activate(v_right)
        engine.destinations[v_right] = 7  # outside [2,4] for f_w=[1,4]
        child = node_for(engine, 1, 2)
        engine._activate(child)
        assert engine.destinations[v_right] == 7

    def test_rollback_rule_1_excludes_window_left_edge(self, engine):
        """DEST(y) exactly at A-_{f_w} is NOT rolled back under rule 1."""
        v_right = node_for(engine, 5, 8)
        engine._activate(v_right)
        engine.destinations[v_right] = 1  # == lo of f_w = [1,4]
        child = node_for(engine, 1, 2)
        engine._activate(child)
        assert engine.destinations[v_right] == 1

    def test_rollback_requires_strictly_larger_father_range(self, engine):
        """Sibling sweeps over the same father are not rolled back."""
        left = node_for(engine, 1, 4)
        right = node_for(engine, 5, 8)
        engine._activate(left)
        engine.destinations[left] = 6
        engine._activate(right)  # same father (root), not a superset
        assert engine.destinations[left] == 6


class TestSelect:
    def test_no_warnings_returns_none(self, engine):
        assert engine._select(4) is None

    def test_prefers_warning_near_the_command_leaf(self, engine):
        near = engine.calibrator.leaf_of_page[7]
        far = node_for(engine, 1, 4)
        engine.calibrator.set_flag(near, True)
        engine.calibrator.set_flag(far, True)
        assert engine._select(8) == near

    def test_depth_beats_proximity_within_alpha(self, engine):
        # Both flags under the same alpha: the deeper node wins even if
        # the shallower one is an ancestor of the command leaf.
        shallow = node_for(engine, 5, 8)
        deep = engine.calibrator.leaf_of_page[1]
        engine.calibrator.set_flag(shallow, True)
        engine.calibrator.set_flag(deep, True)
        assert engine._select(6) == deep


class TestShift:
    def test_leftward_shift_moves_lowest_keys(self, engine):
        leaf8 = engine.calibrator.leaf_of_page[8]
        engine.calibrator.set_flag(leaf8, True)
        engine.destinations[leaf8] = 7
        keys_in_8 = [r.key for r in engine.pagefile.read_page(8)]
        engine._shift(leaf8)
        moved_keys = [r.key for r in engine.pagefile.read_page(7)][-7:]
        # g(L7, 0) = 15 and page 7 held 8, so 7 records move; they are
        # the lowest-keyed records of page 8.
        assert engine.pagefile.page_len(7) == 15
        assert moved_keys == keys_in_8[:7]

    def test_rightward_shift_moves_highest_keys(self, engine):
        leaf1 = engine.calibrator.leaf_of_page[1]
        engine.calibrator.set_flag(leaf1, True)
        engine.destinations[leaf1] = 2
        keys_in_1 = [r.key for r in engine.pagefile.read_page(1)]
        engine._shift(leaf1)
        assert engine.pagefile.page_len(2) == 15
        received = [r.key for r in engine.pagefile.read_page(2)][:7]
        assert received == keys_in_1[-7:]

    def test_shift_respects_guard_thresholds_exactly(self, engine):
        """Movement stops the moment a guard hits p(x) >= g(x, 0)."""
        leaf8 = engine.calibrator.leaf_of_page[8]
        engine.calibrator.set_flag(leaf8, True)
        engine.destinations[leaf8] = 7
        engine._shift(leaf8)
        # Guard was L7 with threshold 15: exactly 15 after the shift.
        assert engine.pagefile.page_len(7) == 15

    def test_saturated_guard_advances_dest(self, engine):
        leaf8 = engine.calibrator.leaf_of_page[8]
        engine.calibrator.set_flag(leaf8, True)
        engine.destinations[leaf8] = 7
        engine._shift(leaf8)
        # L7 saturated; DEST jumps to hi(L7)+1 = 8.
        assert engine.destinations[leaf8] == 8

    def test_unsaturated_shift_leaves_dest_alone(self, engine):
        # Vacating the source before any guard saturates keeps DEST.
        params = DensityParams(num_pages=8, d=9, D=18, j=1)
        eng = Control2Engine(params)
        eng.load_occupancies([8, 1, 0, 0, 8, 8, 8, 8], key_start=0, key_gap=10)
        v3 = node_for(eng, 5, 8)
        eng.calibrator.set_flag(v3, True)
        eng.destinations[v3] = 2
        eng._shift(v3)
        # Source (page 5... wait: next nonempty right of 2 is 5) has 8
        # records; guards L2 (thresh 15, room 14) and [1,2] and [1,4]
        # have room, so all 8 move and no guard saturates.
        assert eng.destinations[v3] == 2
        assert eng.pagefile.page_len(2) == 9

    def test_shift_skips_empty_gap_pages(self, engine):
        params = DensityParams(num_pages=8, d=9, D=18, j=1)
        eng = Control2Engine(params)
        eng.load_occupancies([2, 0, 0, 0, 0, 0, 0, 12], key_start=0, key_gap=10)
        v3 = node_for(eng, 5, 8)
        eng.calibrator.set_flag(v3, True)
        eng.destinations[v3] = 1
        eng._shift(v3)
        # SOURCE is page 8 (the next non-empty right of 1).
        assert eng.sources[v3] == 8

    def test_shift_with_no_source_is_counted_not_fatal(self, engine):
        params = DensityParams(num_pages=8, d=9, D=18, j=1)
        eng = Control2Engine(params)
        eng.load_occupancies([5, 0, 0, 0, 0, 0, 0, 0], key_start=0, key_gap=10)
        v3 = node_for(eng, 5, 8)
        eng.calibrator.set_flag(v3, True)
        eng.destinations[v3] = 8
        eng._shift(v3)
        assert eng.stuck_shifts == 1

    def test_shift_counter_transfer_consistency(self, engine):
        leaf8 = engine.calibrator.leaf_of_page[8]
        engine.calibrator.set_flag(leaf8, True)
        engine.destinations[leaf8] = 7
        engine._shift(leaf8)
        from repro.core.invariants import check_counters

        check_counters(engine.pagefile, engine.calibrator)

    def test_shift_returns_changed_nodes(self, engine):
        leaf8 = engine.calibrator.leaf_of_page[8]
        engine.calibrator.set_flag(leaf8, True)
        engine.destinations[leaf8] = 7
        changed = engine._shift(leaf8)
        tree = engine.calibrator
        ranges = {(tree.lo[n], tree.hi[n]) for n in changed}
        assert (7, 7) in ranges and (8, 8) in ranges
