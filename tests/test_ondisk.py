"""Unit tests for the slotted on-disk page store."""


import pytest

from repro.records import Record
from repro.storage.backend import DiskStore
from repro.storage.ondisk import (
    CorruptPageError,
    DiskPagedStore,
    HEADER,
    PageOverflowError,
    SLOT_HEADER,
    StorageError,
)
from repro.storage.pagefile import PageFile


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "store.dsf")


class TestLifecycle:
    def test_create_and_reopen_preserves_geometry(self, path):
        store = DiskPagedStore.create(path, num_pages=8, d=4, D=16, j=7)
        store.close()
        reopened = DiskPagedStore.open(path)
        assert (reopened.num_pages, reopened.d, reopened.D, reopened.j) == (
            8, 4, 16, 7,
        )
        reopened.close()

    def test_create_refuses_to_clobber(self, path):
        DiskPagedStore.create(path, num_pages=2, d=1, D=4).close()
        with pytest.raises(StorageError):
            DiskPagedStore.create(path, num_pages=2, d=1, D=4)
        DiskPagedStore.create(path, num_pages=2, d=1, D=4, overwrite=True).close()

    def test_open_missing_file(self, path):
        with pytest.raises(FileNotFoundError):
            DiskPagedStore.open(path)

    def test_open_rejects_bad_magic(self, path):
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 60)
        with pytest.raises(CorruptPageError):
            DiskPagedStore.open(path)

    def test_open_rejects_truncated_header(self, path):
        with open(path, "wb") as handle:
            handle.write(b"DS")
        with pytest.raises(CorruptPageError):
            DiskPagedStore.open(path)

    def test_context_manager_closes(self, path):
        with DiskPagedStore.create(path, num_pages=2, d=1, D=4) as store:
            assert not store.closed
        assert store.closed

    def test_operations_after_close_fail(self, path):
        store = DiskPagedStore.create(path, num_pages=2, d=1, D=4)
        store.close()
        with pytest.raises(StorageError):
            store.read_page(1)
        with pytest.raises(StorageError):
            store.write_page(1, [])


class TestPageIO:
    def test_fresh_pages_are_empty(self, path):
        with DiskPagedStore.create(path, num_pages=4, d=2, D=8) as store:
            assert all(store.read_page(p) == [] for p in range(1, 5))

    def test_write_read_roundtrip(self, path):
        records = [Record(1, "a"), Record(2, b"\x00")]
        with DiskPagedStore.create(path, num_pages=4, d=2, D=8) as store:
            store.write_page(3, records)
            assert store.read_page(3) == records
            assert store.read_page(2) == []

    def test_roundtrip_survives_reopen(self, path):
        records = [Record(k, k * 2) for k in range(5)]
        with DiskPagedStore.create(path, num_pages=4, d=2, D=8) as store:
            store.write_page(1, records)
        with DiskPagedStore.open(path) as store:
            assert store.read_page(1) == records

    def test_out_of_range_page(self, path):
        with DiskPagedStore.create(path, num_pages=4, d=2, D=8) as store:
            with pytest.raises(IndexError):
                store.read_page(0)
            with pytest.raises(IndexError):
                store.write_page(5, [])

    def test_oversized_payload_rejected(self, path):
        with DiskPagedStore.create(
            path, num_pages=2, d=1, D=2, slot_capacity=64
        ) as store:
            with pytest.raises(PageOverflowError):
                store.write_page(1, [Record(1, "x" * 100)])

    def test_corrupted_payload_detected(self, path):
        with DiskPagedStore.create(path, num_pages=2, d=2, D=8) as store:
            store.write_page(1, [Record(1, "payload")])
            offset = HEADER.size + SLOT_HEADER.size + 2
            slot_capacity = store.slot_capacity
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\xde\xad")
        with DiskPagedStore.open(path) as store:
            with pytest.raises(CorruptPageError, match="checksum"):
                store.read_page(1)
            assert store.verify_all() == [1]
        del slot_capacity

    def test_verify_all_clean_store(self, path):
        with DiskPagedStore.create(path, num_pages=3, d=2, D=8) as store:
            store.write_page(2, [Record(9)])
            assert store.verify_all() == []


class TestPageFileIntegration:
    def test_disk_store_mirrors_mutations(self, path):
        store = DiskStore.create(path, num_pages=8, d=4, D=16)
        pagefile = PageFile(8, store=store)
        pagefile.insert_record(3, Record(30))
        pagefile.insert_record(3, Record(31))
        pagefile.insert_record(5, Record(50))
        pagefile.move_records(5, 4, 1)
        assert [r.key for r in store.raw.read_page(3)] == [30, 31]
        assert [r.key for r in store.raw.read_page(4)] == [50]
        assert store.raw.read_page(5) == []
        store.close()

    def test_pagefile_rejects_geometry_mismatch(self, path):
        store = DiskStore.create(path, num_pages=8, d=4, D=16)
        with pytest.raises(ValueError):
            PageFile(4, store=store)
        store.close()

    def test_reopen_rebuilds_directory(self, path):
        raw = DiskPagedStore.create(path, num_pages=8, d=4, D=16)
        raw.write_page(2, [Record(20), Record(21)])
        raw.write_page(6, [Record(60)])
        raw.close()
        store = DiskStore.open(path)
        pagefile = PageFile(8, store=store)
        total = pagefile.rebuild_directory()
        assert total == 3
        assert pagefile.nonempty_pages() == [2, 6]
        assert pagefile.locate(21) == 2
        store.close()

    def test_redistribute_is_persisted(self, path):
        store = DiskStore.create(path, num_pages=4, d=4, D=16)
        pagefile = PageFile(4, store=store)
        pagefile.load_page(1, [Record(k) for k in range(8)])
        pagefile.redistribute(1, 4)
        assert [len(store.raw.read_page(p)) for p in range(1, 5)] == [2, 2, 2, 2]
        store.close()
