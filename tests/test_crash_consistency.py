"""Crash-consistency tests for the journaled dense file.

The central test sweeps the crash point across *every* physical write a
command performs (journal header, each journal entry, the commit
marker, the fsync slot, and each main-store page apply) and asserts
that reopening the file always lands on exactly the pre-command or the
post-command state — the atomicity contract.
"""

import os

import pytest

from repro import JournaledDenseFile
from repro.core.errors import InvariantViolationError
from repro.storage.wal import (
    FaultInjector,
    SimulatedCrash,
    TransactionJournal,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "atomic.dsf")


def contents(dense):
    return [(r.key, r.value) for r in dense.range(float("-inf"), float("inf"))]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        pages = {3: b"three", 7: b"seven"}
        journal.write_transaction(pages)
        assert journal.read_committed() == pages
        journal.clear()
        assert journal.read_committed() is None

    def test_missing_journal_is_none(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        assert journal.read_committed() is None

    def test_torn_journal_discarded(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        journal.write_transaction({1: b"payload"})
        # Truncate the commit marker off.
        size = os.path.getsize(journal.path)
        with open(journal.path, "r+b") as handle:
            handle.truncate(size - 4)
        assert journal.read_committed() is None

    def test_corrupted_entry_discarded(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        journal.write_transaction({1: b"payload-bytes"})
        with open(journal.path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff")
        assert journal.read_committed() is None

    def test_bad_magic_discarded(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        with open(journal.path, "wb") as handle:
            handle.write(b"WHAT" + b"\x00" * 32)
        assert journal.read_committed() is None

    def test_clear_is_idempotent(self, tmp_path):
        journal = TransactionJournal(str(tmp_path / "j"))
        journal.clear()
        journal.clear()


class TestFaultInjector:
    def test_disarmed_never_crashes(self):
        injector = FaultInjector()
        for _ in range(100):
            injector.check()

    def test_countdown(self):
        injector = FaultInjector()
        injector.arm(2)
        injector.check()
        injector.check()
        with pytest.raises(SimulatedCrash):
            injector.check()
        assert injector.crashes == 1


class TestBasicAtomicity:
    def test_normal_operation_matches_plain_persistent(self, path):
        with JournaledDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            f.insert(1, "one")
            f.insert_many(range(10, 20))
            f.delete(1)
            f.delete_range(10, 14)
            f.validate()
            expected = contents(f)
        with JournaledDenseFile.open(path) as f:
            f.validate()
            assert contents(f) == expected
            assert not f.journal.exists()

    def test_committed_journal_replayed_on_open(self, path):
        f = JournaledDenseFile.create(path, num_pages=64, d=8, D=40)
        f.insert(1)
        # Simulate: journal written, apply never happened.
        from repro.storage.packed import encode_records_image

        f.journal.write_transaction({2: encode_records_image([])})
        target = f.engine.pagefile.nonempty_pages()[0]
        f.journal.write_transaction(
            {target: encode_records_image([])}
        )  # "delete everything on that page" as a fake committed txn
        f.close()
        with JournaledDenseFile.open(path) as g:
            # The redo applied: the page is now empty on disk and in core.
            assert len(g) == 0
            assert not g.journal.exists()

    def test_validate_rejects_uncommitted_state(self, path):
        f = JournaledDenseFile.create(path, num_pages=64, d=8, D=40)
        f.engine.insert(5)  # bypasses the transactional wrapper
        with pytest.raises(InvariantViolationError, match="uncommitted"):
            f.validate()
        f._commit()  # repair for teardown
        f.validate()
        f.close()


def run_command(dense, step: int):
    """The scripted command sequence for the crash sweep."""
    if step == 0:
        dense.insert_many(range(0, 600, 2))  # big multi-page transaction
    elif step == 1:
        dense.insert(99)  # triggers in-page insert (+ possible shifts)
    elif step == 2:
        dense.delete_range(100, 299)  # multi-page bulk delete
    elif step == 3:
        dense.compact()  # rewrites every page
    else:
        raise AssertionError(step)


class TestCrashPointSweep:
    @pytest.mark.parametrize("step", [0, 1, 2, 3])
    def test_every_crash_point_is_atomic(self, tmp_path, step):
        base = str(tmp_path / f"sweep{step}.dsf")

        # Golden run: state before and after the command, no faults.
        with JournaledDenseFile.create(base, num_pages=32, d=12, D=48,
                                       overwrite=True) as golden:
            for earlier in range(step):
                run_command(golden, earlier)
            before = contents(golden)
            run_command(golden, step)
            after = contents(golden)

        crash_point = 0
        exhausted = False
        while not exhausted:
            path = str(tmp_path / f"sweep{step}-{crash_point}.dsf")
            injector = FaultInjector()
            dense = JournaledDenseFile.create(
                path, num_pages=32, d=12, D=48, injector=injector
            )
            for earlier in range(step):
                run_command(dense, earlier)
            injector.arm(crash_point)
            try:
                run_command(dense, step)
                exhausted = True  # command completed: no write left to fail
            except SimulatedCrash:
                pass
            injector.disarm()
            dense._raw.close()

            reopened = JournaledDenseFile.open(path)
            state = contents(reopened)
            assert state in (before, after), (
                f"step {step}, crash point {crash_point}: neither the "
                "pre- nor the post-command state"
            )
            reopened.validate()
            reopened.close()
            crash_point += 1
            assert crash_point < 300, "sweep runaway"
        # The sweep must have exercised real crash points.
        assert crash_point > 3
