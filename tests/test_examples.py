"""Smoke tests: every shipped example must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_all_examples_are_covered():
    # The suite below runs every example file; keep this list honest.
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_paper_example_asserts_the_match():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "paper_example.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "all 9 rows match the paper bit for bit" in completed.stdout
