"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every
public item; this test makes the requirement executable.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in iter_public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_is_documented():
    undocumented = []
    for module in iter_public_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_every_public_method_is_documented():
    undocumented = []
    for module in iter_public_modules():
        for class_name, cls in vars(module).items():
            if not is_public(class_name) or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for method_name, member in vars(cls).items():
                if not is_public(method_name):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (inspect.getdoc(member) or "").strip():
                    undocumented.append(
                        f"{module.__name__}.{class_name}.{method_name}"
                    )
    assert undocumented == []
