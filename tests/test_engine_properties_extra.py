"""Stateful property tests for the macro-block and adaptive engines.

Same model-based approach as the CONTROL 1/2 machines in
``test_properties.py``, applied to the two engine variants with their
own quirks: macro-granular pages with scaled costs, and the two-level
shift budget.
"""

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import AdaptiveControl2Engine, DensityParams, MacroBlockControl2Engine
from repro.core.errors import FileFullError


class MacroBlockMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # D - d = 2 <= 3*log2(16): plain CONTROL 2 is inapplicable here.
        self.engine = MacroBlockControl2Engine(num_pages=16, d=4, D=6)
        self.model = set()

    @rule(key=st.integers(0, 200))
    def insert(self, key):
        if key in self.model:
            return
        if len(self.model) >= self.engine.physical_max_records:
            with pytest.raises(FileFullError):
                self.engine.insert(key)
            return
        self.engine.insert(key)
        self.model.add(key)

    @rule(key=st.integers(0, 200))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.engine.delete(key)
        self.model.remove(key)

    @rule(lo=st.integers(0, 200), span=st.integers(0, 40))
    def delete_range(self, lo, span):
        removed = self.engine.delete_range(lo, lo + span)
        victims = {k for k in self.model if lo <= k <= lo + span}
        assert removed == len(victims)
        self.model -= victims

    @invariant()
    def matches_model(self):
        stored = [record.key for record in self.engine.pagefile.iter_all()]
        assert stored == sorted(self.model)

    @invariant()
    def structural_invariants_hold(self):
        self.engine.validate()

    @invariant()
    def no_defensive_fallbacks(self):
        assert self.engine.stuck_shifts == 0


TestMacroBlockMachine = MacroBlockMachine.TestCase


class AdaptiveMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = AdaptiveControl2Engine(
            DensityParams(num_pages=16, d=4, D=20), base_budget=1
        )
        self.model = set()

    @rule(key=st.integers(0, 300))
    def insert(self, key):
        if key in self.model:
            return
        if len(self.model) >= self.engine.params.max_records:
            return
        self.engine.insert(key)
        self.model.add(key)

    @rule(key=st.integers(0, 300))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.engine.delete(key)
        self.model.remove(key)

    @rule()
    def compact(self):
        self.engine.compact()

    @invariant()
    def matches_model(self):
        stored = [record.key for record in self.engine.pagefile.iter_all()]
        assert stored == sorted(self.model)

    @invariant()
    def structural_invariants_hold(self):
        self.engine.validate()


TestAdaptiveMachine = AdaptiveMachine.TestCase
