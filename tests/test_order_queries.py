"""Tests for min/max/successor/predecessor order queries."""

import pytest

from repro import Control2Engine, DenseSequentialFile, DensityParams
from repro.records import Record
from repro.storage.pagefile import PageFile


class TestPageFileOrderQueries:
    @pytest.fixture
    def pf(self):
        pf = PageFile(8)
        pf.load_page(2, [Record(10), Record(20)])
        pf.load_page(5, [Record(30)])
        pf.load_page(7, [Record(40), Record(50)])
        return pf

    def test_min_and_max(self, pf):
        assert pf.min_record().key == 10
        assert pf.max_record().key == 50

    def test_empty_file(self):
        pf = PageFile(4)
        assert pf.min_record() is None
        assert pf.max_record() is None
        assert pf.successor(5) is None
        assert pf.predecessor(5) is None

    def test_successor_within_page(self, pf):
        assert pf.successor(10).key == 20

    def test_successor_crosses_pages(self, pf):
        assert pf.successor(20).key == 30
        assert pf.successor(30).key == 40

    def test_successor_of_absent_key(self, pf):
        assert pf.successor(15).key == 20
        assert pf.successor(35).key == 40

    def test_successor_below_minimum(self, pf):
        assert pf.successor(-100).key == 10

    def test_successor_at_maximum(self, pf):
        assert pf.successor(50) is None

    def test_predecessor_within_page(self, pf):
        assert pf.predecessor(50).key == 40

    def test_predecessor_crosses_pages(self, pf):
        assert pf.predecessor(30).key == 20
        assert pf.predecessor(40).key == 30

    def test_predecessor_of_absent_key(self, pf):
        assert pf.predecessor(25).key == 20

    def test_predecessor_at_minimum(self, pf):
        assert pf.predecessor(10) is None

    def test_predecessor_above_maximum(self, pf):
        assert pf.predecessor(1000).key == 50

    def test_queries_charge_few_reads(self, pf):
        pf.disk.stats.reset()
        pf.successor(20)
        assert pf.disk.stats.reads <= 2
        pf.disk.stats.reset()
        pf.predecessor(30)
        assert pf.disk.stats.reads <= 2


class TestEngineAndFacade:
    def test_engine_delegation(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        engine.insert_many([3, 1, 4, 1.5, 9])
        assert engine.min_record().key == 1
        assert engine.max_record().key == 9
        assert engine.successor(3).key == 4
        assert engine.predecessor(3).key == 1.5

    def test_facade_order_api(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert_many(["b", "d", "a", "c"])
        assert dense.min().key == "a"
        assert dense.max().key == "d"
        assert dense.successor("b").key == "c"
        assert dense.predecessor("b").key == "a"
        assert list(dense) == ["a", "b", "c", "d"]

    def test_queries_track_mutations(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert_many(range(10))
        dense.delete(0)
        dense.delete(9)
        assert dense.min().key == 1
        assert dense.max().key == 8
        dense.delete_range(3, 6)
        assert dense.successor(2).key == 7

    def test_model_based_successor_predecessor(self):
        import random

        engine = Control2Engine(DensityParams(num_pages=32, d=4, D=24))
        rng = random.Random(3)
        keys = sorted(rng.sample(range(1000), 80))
        engine.insert_many(keys)
        for probe in rng.sample(range(1000), 50):
            expected_succ = next((k for k in keys if k > probe), None)
            expected_pred = next(
                (k for k in reversed(keys) if k < probe), None
            )
            succ = engine.successor(probe)
            pred = engine.predecessor(probe)
            assert (succ.key if succ else None) == expected_succ
            assert (pred.key if pred else None) == expected_pred
