"""Tests for rank / select / count_range / compact."""

import random

import pytest

from repro import Control2Engine, DenseSequentialFile, DensityParams


@pytest.fixture
def engine():
    engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
    engine.insert_many(range(0, 200, 2))  # keys 0,2,...,198
    return engine


class TestRank:
    def test_rank_of_stored_key(self, engine):
        assert engine.rank(0) == 0
        assert engine.rank(10) == 5
        assert engine.rank(198) == 99

    def test_rank_of_absent_key(self, engine):
        assert engine.rank(11) == 6
        assert engine.rank(1000) == 100

    def test_rank_below_minimum(self, engine):
        assert engine.rank(-5) == 0

    def test_rank_on_empty_file(self):
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=40))
        assert engine.rank(5) == 0

    def test_rank_charges_at_most_one_access(self, engine):
        engine.stats.checkpoint("rank")
        engine.rank(100)
        assert engine.stats.delta("rank").page_accesses <= 1

    def test_rank_matches_model_randomly(self):
        rng = random.Random(4)
        keys = sorted(rng.sample(range(5000), 300))
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=48))
        engine.insert_many(keys)
        for probe in rng.sample(range(5000), 60):
            expected = sum(1 for k in keys if k < probe)
            assert engine.rank(probe) == expected


class TestSelect:
    def test_select_returns_rank_order(self, engine):
        assert engine.select(0).key == 0
        assert engine.select(5).key == 10
        assert engine.select(99).key == 198

    def test_select_out_of_range(self, engine):
        with pytest.raises(IndexError):
            engine.select(100)
        with pytest.raises(IndexError):
            engine.select(-1)

    def test_select_inverts_rank(self, engine):
        for index in (0, 17, 50, 99):
            record = engine.select(index)
            assert engine.rank(record.key) == index

    def test_select_charges_one_access(self, engine):
        engine.stats.checkpoint("select")
        engine.select(50)
        assert engine.stats.delta("select").page_accesses == 1


class TestCountRange:
    def test_counts_inclusive(self, engine):
        assert engine.count_range(10, 20) == 6  # 10,12,...,20
        assert engine.count_range(0, 198) == 100

    def test_empty_and_inverted_ranges(self, engine):
        assert engine.count_range(11, 11) == 0
        assert engine.count_range(20, 10) == 0
        assert engine.count_range(1000, 2000) == 0

    def test_single_key(self, engine):
        assert engine.count_range(10, 10) == 1

    def test_cost_is_constant_in_range_size(self, engine):
        engine.stats.checkpoint("count")
        engine.count_range(0, 198)  # the whole file
        assert engine.stats.delta("count").page_accesses <= 2

    def test_agrees_with_scan(self, engine):
        scanned = sum(1 for _ in engine.range_scan(33, 121))
        assert engine.count_range(33, 121) == scanned

    def test_random_agreement(self):
        rng = random.Random(9)
        keys = sorted(rng.sample(range(3000), 250))
        engine = Control2Engine(DensityParams(num_pages=64, d=8, D=48))
        engine.insert_many(keys)
        for _ in range(40):
            lo = rng.randrange(3000)
            hi = lo + rng.randrange(500)
            expected = sum(1 for k in keys if lo <= k <= hi)
            assert engine.count_range(lo, hi) == expected


class TestCompact:
    def test_compact_levels_the_file(self, engine):
        engine.delete_range(0, 150)  # leave a sparse left region
        engine.compact()
        occupancies = engine.occupancies()
        assert max(occupancies) - min(occupancies) <= 1
        engine.validate()

    def test_compact_preserves_contents(self, engine):
        before = [record.key for record in engine.pagefile.iter_all()]
        engine.compact()
        after = [record.key for record in engine.pagefile.iter_all()]
        assert after == before

    def test_compact_clears_warnings(self):
        params = DensityParams(num_pages=64, d=8, D=40)
        engine = Control2Engine(params)
        from repro.workloads import converging_inserts

        for operation in converging_inserts(300):
            engine.insert(operation.key)
        engine.compact()
        assert engine.warning_nodes() == []
        engine.validate()

    def test_compact_shortens_scans_after_deletions(self, engine):
        engine.delete_range(40, 180)
        engine.stats.checkpoint("before")
        list(engine.range_scan(-1, 1000))
        sparse_cost = engine.stats.delta("before").page_accesses
        engine.compact()
        engine.stats.checkpoint("after")
        list(engine.range_scan(-1, 1000))
        compact_cost = engine.stats.delta("after").page_accesses
        # Same records, fewer-or-equal pages... the compacted layout
        # spreads over all M pages uniformly, so the comparison that
        # matters is pages-per-record; with most records deleted the
        # sparse layout touches nearly as many pages for far fewer
        # records.
        assert compact_cost <= sparse_cost + engine.params.num_pages

    def test_updates_continue_after_compact(self, engine):
        engine.compact()
        engine.insert_many(range(1001, 1050))
        engine.delete(0)
        engine.validate()


class TestFacadeAndPersistent:
    def test_facade_surface(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert_many(range(10))
        assert dense.rank(5) == 5
        assert dense.select(5).key == 5
        assert dense.count_range(2, 7) == 6
        assert dense.compact() == 64
        dense.validate()

    def test_persistent_surface(self, tmp_path):
        from repro.persistent import PersistentDenseFile

        path = str(tmp_path / "os.dsf")
        with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
            f.insert_many(range(30))
            assert f.rank(10) == 10
            assert f.select(3).key == 3
            assert f.count_range(5, 9) == 5
            f.compact()
        with PersistentDenseFile.open(path) as f:
            f.validate()
            assert len(f) == 30
