"""Tests for the moment recorder and operation log."""

import pytest

from repro import Control2Engine, DensityParams, MomentRecorder
from repro.core.trace import FLAG_STABLE_TYPES, Moment, OperationLog


@pytest.fixture
def engine():
    return Control2Engine(DensityParams(num_pages=16, d=4, D=20, j=2))


class TestMomentRecorder:
    def test_records_only_requested_types(self, engine):
        recorder = MomentRecorder(moment_types={"1"}).attach(engine)
        engine.insert(1)
        assert all(m.moment_type == "1" for m in recorder.moments)
        assert len(recorder.moments) == 1

    def test_default_types_are_flag_stable(self, engine):
        recorder = MomentRecorder().attach(engine)
        engine.insert(1)
        assert recorder.moments
        assert all(m.flag_stable for m in recorder.moments)
        assert all(m.moment_type in FLAG_STABLE_TYPES for m in recorder.moments)

    def test_moment_snapshot_content(self, engine):
        recorder = MomentRecorder(moment_types={"3"}).attach(engine)
        engine.insert(1)
        moment = recorder.moments[0]
        assert isinstance(moment, Moment)
        assert sum(moment.occupancies) == 1
        assert moment.command_index == 0

    def test_destination_of_unknown_node_is_none(self, engine):
        recorder = MomentRecorder(moment_types={"3"}).attach(engine)
        engine.insert(1)
        assert recorder.moments[0].destination_of(999) is None

    def test_distinct_rows_collapse_duplicates(self, engine):
        recorder = MomentRecorder().attach(engine)
        engine.insert(1)
        engine.insert(2)
        rows = recorder.distinct_occupancy_rows()
        assert len(rows) <= len(recorder.occupancy_rows())
        for first, second in zip(rows, rows[1:]):
            assert first != second

    def test_clear(self, engine):
        recorder = MomentRecorder().attach(engine)
        engine.insert(1)
        recorder.clear()
        assert recorder.moments == []


class TestOperationLog:
    def test_empty_log_statistics(self):
        log = OperationLog()
        assert log.worst_case_accesses == 0
        assert log.amortized_accesses == 0.0
        assert log.worst_case_moved == 0
        assert log.amortized_moved == 0.0

    def test_append_and_aggregate(self):
        log = OperationLog()
        log.append(accesses=3, moved=1, cost=3.0, label="insert")
        log.append(accesses=7, moved=5, cost=7.0, label="delete")
        assert len(log) == 2
        assert log.worst_case_accesses == 7
        assert log.amortized_accesses == 5.0
        assert log.worst_case_moved == 5
        assert log.amortized_moved == 3.0
        assert log.labels == ["insert", "delete"]

    def test_engine_integration(self, engine):
        log = engine.enable_operation_log()
        engine.insert(1)
        engine.insert(2)
        engine.delete(1)
        assert len(log) == 3
        assert log.labels == ["insert", "insert", "delete"]
        assert all(a > 0 for a in log.page_accesses)
