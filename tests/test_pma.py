"""Tests for the packed-memory-array baseline."""

import random

import pytest

from repro.baselines.pma import PackedMemoryArray
from repro.core.errors import FileFullError, RecordNotFoundError


@pytest.fixture
def pma():
    return PackedMemoryArray(num_pages=16, capacity=8)


class TestThresholds:
    def test_tau_interpolates_leaf_to_root(self, pma):
        assert pma._tau(0) == pytest.approx(1.0)
        assert pma._tau(pma.height) == pytest.approx(0.5)
        assert pma._tau(1) < pma._tau(0)

    def test_rho_interpolates_leaf_to_root(self, pma):
        assert pma._rho(0) == pytest.approx(0.10)
        assert pma._rho(pma.height) == pytest.approx(0.25)

    def test_window_alignment(self, pma):
        assert pma._window(5, 0) == (5, 5)
        assert pma._window(5, 1) == (5, 6)
        assert pma._window(5, 2) == (5, 8)
        assert pma._window(5, 4) == (1, 16)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PackedMemoryArray(num_pages=1, capacity=8)
        with pytest.raises(ValueError):
            PackedMemoryArray(num_pages=8, capacity=8, tau_root=1.5)
        with pytest.raises(ValueError):
            PackedMemoryArray(num_pages=8, capacity=8, rho_root=0.6)


class TestUpdates:
    def test_insert_search_roundtrip(self, pma):
        pma.insert(5, "five")
        assert pma.search(5).value == "five"
        assert 5 in pma

    def test_order_maintained_under_random_updates(self, pma):
        rng = random.Random(13)
        model = set()
        for _ in range(400):
            key = rng.randrange(500)
            if key in model:
                pma.delete(key)
                model.discard(key)
            else:
                try:
                    pma.insert(key)
                except FileFullError:
                    continue
                model.add(key)
        stored = [r.key for r in pma.pagefile.iter_all()]
        assert stored == sorted(model)

    def test_rebalance_spreads_hot_page(self, pma):
        for key in range(20):
            pma.insert(1000 + key)
        assert pma.rebalances >= 1
        assert max(pma.occupancies()) <= pma.capacity

    def test_root_threshold_enforced(self):
        pma = PackedMemoryArray(num_pages=4, capacity=4, tau_root=0.5)
        for key in range(8):  # 0.5 * 16 slots
            pma.insert(key)
        with pytest.raises(FileFullError):
            pma.insert(99)

    def test_delete_missing_raises(self, pma):
        with pytest.raises(RecordNotFoundError):
            pma.delete(42)

    def test_heavy_deletion_triggers_lower_threshold_rebalance(self, pma):
        pma.bulk_load(range(0, 60))
        before = pma.rebalances
        for key in range(0, 55):
            pma.delete(key)
        assert pma.rebalances > before or max(pma.occupancies()) <= pma.capacity

    def test_records_moved_total_tracks_rebalances(self, pma):
        for key in range(30):
            pma.insert(2000 + key)
        if pma.rebalances:
            assert pma.records_moved_total > 0


class TestScans:
    def test_range_scan(self, pma):
        pma.bulk_load(range(0, 100, 5))
        assert [r.key for r in pma.range_scan(10, 30)] == [10, 15, 20, 25, 30]

    def test_scan_count(self, pma):
        pma.bulk_load(range(10))
        assert [r.key for r in pma.scan_count(4, 3)] == [4, 5, 6]

    def test_bulk_load_respects_root_threshold(self):
        pma = PackedMemoryArray(num_pages=4, capacity=4, tau_root=0.5)
        with pytest.raises(FileFullError):
            pma.bulk_load(range(9))
