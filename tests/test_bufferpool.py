"""Tests for the LRU buffer-pool simulator."""

import pytest

from repro.storage.bufferpool import BufferPool, miss_curve, replay
from repro.storage.tracing import AccessEvent, READ, WRITE


def events(*pairs):
    return [AccessEvent(kind, page) for kind, page in pairs]


class TestBufferPool:
    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_first_touch_misses_then_hits(self):
        pool = BufferPool(2)
        assert not pool.access(READ, 1)
        assert pool.access(READ, 1)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access(READ, 1)
        pool.access(READ, 2)
        pool.access(READ, 1)  # 2 becomes LRU
        pool.access(READ, 3)  # evicts 2
        assert pool.resident_pages() == [1, 3]
        assert pool.stats.evictions == 1

    def test_clean_eviction_writes_nothing(self):
        pool = BufferPool(1)
        pool.access(READ, 1)
        pool.access(READ, 2)
        assert pool.stats.physical_writes == 0

    def test_dirty_eviction_writes_back(self):
        pool = BufferPool(1)
        pool.access(WRITE, 1)
        pool.access(READ, 2)
        assert pool.stats.physical_writes == 1

    def test_write_hit_marks_dirty(self):
        pool = BufferPool(2)
        pool.access(READ, 1)
        pool.access(WRITE, 1)
        pool.access(READ, 2)
        pool.access(READ, 3)  # evicts dirty 1
        assert pool.stats.physical_writes == 1

    def test_flush_writes_dirty_frames_once(self):
        pool = BufferPool(4)
        pool.access(WRITE, 1)
        pool.access(WRITE, 2)
        pool.access(READ, 3)
        assert pool.flush() == 2
        assert pool.flush() == 0  # now clean

    def test_every_miss_is_a_physical_read(self):
        pool = BufferPool(2)
        for page in (1, 2, 3, 1):
            pool.access(READ, page)
        assert pool.stats.physical_reads == pool.stats.misses


class TestReplay:
    def test_replay_counts_and_flushes(self):
        stats = replay(events((WRITE, 1), (READ, 1), (WRITE, 2)), capacity=4)
        assert stats.accesses == 3
        assert stats.hits == 1
        assert stats.physical_writes == 2  # final flush of pages 1 and 2

    def test_hit_rate_bounds(self):
        stats = replay(events((READ, 1)) * 0, capacity=2)
        assert stats.hit_rate == 0.0
        stats = replay(events((READ, 1), (READ, 1), (READ, 1)), capacity=2)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_miss_curve_is_monotone(self):
        trace = events(*[(READ, page % 8) for page in range(200)])
        curve = miss_curve(trace, [1, 2, 4, 8])
        rates = [stats.hit_rate for stats in curve]
        assert rates == sorted(rates)
        assert curve[-1].hit_rate > 0.9  # everything fits at 8 frames

    def test_sequential_sweep_needs_one_frame(self):
        trace = events(*[(READ, page) for page in range(1, 50)])
        stats = replay(trace, capacity=1)
        assert stats.hits == 0  # pure sweep: every page new
        assert stats.physical_reads == 49


class TestEngineLocality:
    def test_dense_updates_cache_better_than_btree(self):
        """The 'one fell swoop' claim, quantified at 8 frames."""
        from repro import Control2Engine, DensityParams
        from repro.baselines.btree import BPlusTree
        from repro.workloads import converging_inserts, run_workload

        dense = Control2Engine(DensityParams(num_pages=128, d=8, D=48))
        dense.disk.trace.enable()
        tree = BPlusTree(fanout=16, leaf_capacity=48)
        tree.disk.trace.enable()
        operations = converging_inserts(600)
        run_workload(dense, operations)
        run_workload(tree, operations)
        dense_stats = replay(list(dense.disk.trace), capacity=8)
        tree_stats = replay(list(tree.disk.trace), capacity=8)
        assert dense_stats.hit_rate > tree_stats.hit_rate
