"""Stateful property tests for the durable dense file.

The machine drives a persistent file with random inserts/deletes,
*reopens it from disk at arbitrary points*, and checks after every step
that the on-disk state equals a plain dict model — i.e. that the
write-through layer never lags, loses or reorders anything across
restarts.
"""

import os
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.persistent import PersistentDenseFile


class PersistentFileMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        handle, self.path = tempfile.mkstemp(suffix=".dsf")
        os.close(handle)
        os.unlink(self.path)
        self.dense = PersistentDenseFile.create(
            self.path, num_pages=16, d=4, D=20
        )
        self.model = {}

    def teardown(self):
        self.dense.close()
        if os.path.exists(self.path):
            os.unlink(self.path)

    @rule(key=st.integers(0, 120), value=st.one_of(st.none(), st.text(max_size=8)))
    def insert(self, key, value):
        if key in self.model:
            return
        if len(self.model) >= self.dense.params.max_records:
            return
        self.dense.insert(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 120))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.dense.delete(key)
        del self.model[key]

    @rule(lo=st.integers(0, 120), span=st.integers(0, 30))
    def delete_range(self, lo, span):
        removed = self.dense.delete_range(lo, lo + span)
        expected = [k for k in self.model if lo <= k <= lo + span]
        assert removed == len(expected)
        for key in expected:
            del self.model[key]

    @rule()
    def reopen(self):
        """Simulate a process restart."""
        self.dense.close()
        self.dense = PersistentDenseFile.open(self.path)

    @invariant()
    def disk_matches_model(self):
        stored = [
            (record.key, record.value)
            for record in self.dense.range(-1, 10**9)
        ]
        assert stored == sorted(self.model.items())

    @invariant()
    def structural_invariants_hold(self):
        self.dense.validate()


PersistentFileMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestPersistentFileMachine = PersistentFileMachine.TestCase
