"""Keeps docs/API.md in sync with the code's docstrings."""

import os
import sys

DOCS = os.path.join(os.path.dirname(__file__), "..", "docs", "API.md")
TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


def test_api_reference_is_up_to_date():
    sys.path.insert(0, TOOLS)
    try:
        import gen_api_docs
    finally:
        sys.path.remove(TOOLS)
    with open(DOCS) as handle:
        on_disk = handle.read()
    assert on_disk == gen_api_docs.generate(), (
        "docs/API.md is stale; run `python tools/gen_api_docs.py`"
    )


def test_api_reference_covers_the_headline_classes():
    with open(DOCS) as handle:
        text = handle.read()
    for name in (
        "DenseSequentialFile",
        "Control2Engine",
        "Control1Engine",
        "MacroBlockControl2Engine",
        "AdaptiveControl2Engine",
        "PersistentDenseFile",
        "JournaledDenseFile",
        "ThreadSafeDenseFile",
        "CalibratorTree",
        "BPlusTree",
        "PackedMemoryArray",
        "OverflowChainFile",
    ):
        assert f"class `{name}`" in text, name
