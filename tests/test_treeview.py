"""Tests for the calibrator ASCII renderer."""

from repro import Control2Engine, DensityParams
from repro.analysis import render_calibrator, render_figure_1b
from repro.core.calibrator import CalibratorTree


class TestRenderCalibrator:
    def test_one_line_per_depth(self):
        tree = CalibratorTree(8)
        text = render_calibrator(tree)
        lines = text.splitlines()
        assert len(lines) == 4  # depths 0..3
        assert lines[0].startswith("d0:")
        assert lines[3].startswith("d3:")

    def test_leaves_render_single_page_labels(self):
        tree = CalibratorTree(4)
        text = render_calibrator(tree, show_density=False)
        assert "[1]" in text and "[4]" in text
        assert "[1,2]" in text

    def test_densities_shown(self):
        tree = CalibratorTree(4)
        tree.add(1, 6)
        text = render_calibrator(tree)
        assert "p=6.00" in text          # the leaf
        assert "p=1.50" in text          # the root (6 records / 4 pages)

    def test_warning_markers_with_engine(self):
        params = DensityParams(num_pages=8, d=9, D=18, j=3)
        engine = Control2Engine(params)
        engine.load_occupancies([16, 1, 0, 1, 9, 9, 9, 16])
        engine.insert_at_page(8, 10_000)
        text = render_calibrator(engine.calibrator, engine=engine)
        assert "!DEST=" in text

    def test_width_centers_rows(self):
        tree = CalibratorTree(2)
        text = render_calibrator(tree, show_density=False, width=40)
        first = text.splitlines()[0]
        assert len(first) >= 40


class TestFigure1b:
    def test_reproduces_paper_densities(self):
        text = render_figure_1b([3, 2, 1, 2])
        assert "p=2.00" in text.splitlines()[0]  # root
        assert "p=2.50" in text and "p=1.50" in text
        assert "p=3.00" in text and "p=1.00" in text

    def test_explicit_page_count_pads_with_empty_pages(self):
        text = render_figure_1b([4], num_pages=4)
        assert "p=1.00" in text.splitlines()[0]  # 4 records over 4 pages
