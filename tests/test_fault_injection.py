"""Property tests for the fault-injection / self-healing storage stack.

Four contracts, each swept with Hypothesis-drawn fault schedules:

* **Transparency** — a *disabled* ``RetryingStore(FaultyStore(...))``
  is invisible: the wrapped backend sees a byte-identical operation
  stream on every backend (memory, disk, buffered).
* **Absorption** — every injected transient is retried away; the file
  always matches the model, and the retry counters account for every
  injected fault exactly.
* **Crash legality** — a :class:`FaultPlan` crash countdown driven
  through the journaled facade always recovers to the pre- or the
  post-command state, never anything in between.
* **Detection** — a bit-flipped or torn physical frame is either
  healed by a later write of the same page (in which case the file is
  simply healthy) or caught by its CRC, quarantined by ``scrub`` and
  survivable through the degraded read-only open.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DenseSequentialFile, JournaledDenseFile, PersistentDenseFile
from repro.core.errors import ReadOnlyError, TransientIOError
from repro.storage.backend import BufferedStore, DiskStore, MemoryStore
from repro.storage.faults import (
    BackoffPolicy,
    FaultPlan,
    FaultyStore,
    RetryingStore,
    SimulatedCrash,
    fault_tolerant_stack,
)
from repro.storage.scrub import scrub

GEOMETRY = dict(num_pages=16, d=4, D=24)
BACKENDS = ["memory", "disk", "buffered"]

#: A drawn command script: (op selector, key, span) triples.
commands_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "delete_range", "scan"]),
        st.integers(0, 200),
        st.integers(0, 40),
    ),
    min_size=5,
    max_size=60,
)


def make_backend(name: str, directory: str):
    """A fresh inner store of the requested flavour."""
    if name == "memory":
        return MemoryStore(GEOMETRY["num_pages"]), None
    path = os.path.join(directory, "f.dsf")
    disk = DiskStore.create(path, **GEOMETRY)
    if name == "disk":
        return disk, path
    return BufferedStore(disk, capacity=4), path


def apply_commands(dense, model, commands):
    """Drive the drawn script against the file and a sorted-set model."""
    capacity = GEOMETRY["num_pages"] * GEOMETRY["d"]
    for op, key, span in commands:
        if op == "insert" and key not in model and len(model) < capacity:
            dense.insert(key)
            model.add(key)
        elif op == "delete" and model:
            victim = sorted(model)[key % len(model)]
            dense.delete(victim)
            model.remove(victim)
        elif op == "delete_range":
            removed = dense.delete_range(key, key + span)
            expected = {k for k in model if key <= k <= key + span}
            assert removed == len(expected)
            model -= expected
        elif op == "scan":
            window = [record.key for record in dense.range(key, key + span)]
            assert window == sorted(
                k for k in model if key <= k <= key + span
            )


class TestDisabledLayerIsTransparent:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(commands=commands_strategy)
    @settings(max_examples=15, deadline=None)
    def test_counter_parity(self, backend, commands):
        """Bare backend and disabled fault stack see identical traffic."""
        observed = []
        for decorate in (False, True):
            with tempfile.TemporaryDirectory() as directory:
                inner, _ = make_backend(backend, directory)
                store = (
                    fault_tolerant_stack(inner, FaultPlan(seed=0))
                    if decorate
                    else inner
                )
                dense = DenseSequentialFile(**GEOMETRY, store=store)
                apply_commands(dense, set(), commands)
                dense.flush()
                counters = dict(inner.stats())
                counters.pop("path", None)  # tempdir differs by run
                if "inner" in counters:  # buffered wraps disk: same path
                    counters["inner"] = dict(counters["inner"])
                    counters["inner"].pop("path", None)
                observed.append(counters)
                dense.close()
        assert observed[0] == observed[1]


class TestTransientAbsorption:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        seed=st.integers(0, 10_000),
        rate=st.sampled_from([0.02, 0.1, 0.3]),
        commands=commands_strategy,
    )
    @settings(max_examples=15, deadline=None)
    def test_every_transient_retried_away(self, backend, seed, rate, commands):
        with tempfile.TemporaryDirectory() as directory:
            inner, _ = make_backend(backend, directory)
            plan = FaultPlan(seed=seed, transient_rate=rate)
            stack = fault_tolerant_stack(
                inner, plan, BackoffPolicy(max_attempts=50)
            )
            dense = DenseSequentialFile(**GEOMETRY, store=stack)
            model = set()
            apply_commands(dense, model, commands)
            stored = [r.key for r in dense.engine.pagefile.iter_all()]
            assert stored == sorted(model)
            dense.validate()
            assert stack.giveups == 0
            assert stack.retries == plan.transients_injected
            dense.close()

    def test_bounded_budget_gives_up_loudly(self):
        """When the fault outlives the retry budget, the transient
        surfaces (it must never be swallowed into silent data loss)."""
        plan = FaultPlan(seed=3, transient_rate=1.0)
        stack = RetryingStore(
            FaultyStore(MemoryStore(4), plan), BackoffPolicy(max_attempts=3)
        )
        with pytest.raises(TransientIOError):
            stack.get_page(1)
        assert stack.giveups == 1
        assert stack.retries == 2  # max_attempts - 1
        assert plan.transients_injected == 3

    def test_backoff_delays_are_slept_deterministically(self):
        plan = FaultPlan(seed=5, transient_rate=1.0, max_transients=4)
        slept = []
        stack = RetryingStore(
            FaultyStore(MemoryStore(4), plan),
            BackoffPolicy(max_attempts=10, base_delay=0.25, max_delay=1.0),
            sleep=slept.append,
        )
        stack.get_page(1)  # 4 transients then success
        assert slept == [0.25, 0.5, 1.0, 1.0]
        assert stack.backoff_total == pytest.approx(2.75)


class TestCrashSchedulesLandOnLegalStates:
    @given(crash_point=st.integers(1, 60), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_recovery_is_pre_or_post_state(self, crash_point, seed):
        """A FaultPlan countdown through the journaled facade is exactly
        the old wal.FaultInjector contract: atomic per command."""
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "crash.dsf")
            plan = FaultPlan(seed=seed)
            dense = JournaledDenseFile.create(
                path, num_pages=16, d=8, D=28, injector=plan
            )
            dense.insert_many(range(0, 60, 3))
            before = [r.key for r in dense.range(-1, 10**9)]
            batch = range(100, 160, 4)  # disjoint from the preload
            prospective = sorted(set(before) | set(batch))
            plan.arm(crash_point)
            crashed = False
            try:
                dense.insert_many(batch)
            except SimulatedCrash:
                crashed = True
            plan.disarm()
            dense._raw.close()
            reopened = JournaledDenseFile.open(path)
            state = [r.key for r in reopened.range(-1, 10**9)]
            assert state in (before, prospective)
            if not crashed:
                assert state == prospective
            reopened.validate()
            reopened.close()
            assert plan.crashes == (1 if crashed else 0)


class TestPhysicalCorruptionLadder:
    @given(
        flip_at=st.integers(0, 80),
        torn=st.booleans(),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_bitflip_or_torn_write_never_goes_unnoticed(
        self, flip_at, torn, seed
    ):
        """Corrupt one physical frame mid-workload; afterwards the file
        is either fully healthy (a later write of the same page healed
        it) or scrub quarantines exactly a corrupted page and the
        degraded open serves the surviving records read-only."""
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "flip.dsf")
            disk = DiskStore.create(path, **GEOMETRY)
            plan = FaultPlan(
                seed=seed,
                torn_write_at=flip_at if torn else None,
                bitflip_at=None if torn else flip_at,
            )
            dense = DenseSequentialFile(
                **GEOMETRY, store=FaultyStore(disk, plan)
            )
            model = set()
            rng_keys = [(seed * 7 + i * 13) % 300 for i in range(50)]
            for key in rng_keys:
                if key in model:
                    model.remove(key)
                    dense.delete(key)
                else:
                    model.add(key)
                    dense.insert(key)
            dense.close()

            injected = plan.torn_writes + plan.bitflips
            report = scrub(path)
            if not injected or not report.degraded:
                # Schedule never fired, or a later write healed the
                # frame, or the journal-less scrub found it intact.
                assert report.quarantined == ()
                if injected:
                    assert plan.corrupted_pages  # it DID corrupt a frame
                with PersistentDenseFile.open(path) as healthy:
                    stored = [r.key for r in healthy.range(-1, 10**9)]
                    assert stored == sorted(model)
                    healthy.validate()
                return

            # The quarantine names only pages the plan actually hit.
            assert set(report.quarantined) <= set(plan.corrupted_pages)
            degraded = PersistentDenseFile.open(
                path, on_corruption="degrade"
            )
            assert degraded.read_only
            assert degraded.quarantined == report.quarantined
            surviving = [r.key for r in degraded.range(-1, 10**9)]
            assert set(surviving) <= model
            for refused in (
                lambda: degraded.insert(10**6),
                lambda: degraded.delete(rng_keys[0]),
                lambda: degraded.compact(),
            ):
                with pytest.raises(ReadOnlyError):
                    refused()
            degraded.validate()
            degraded.close()


class TestGroupCommitBoundaryFaults:
    """Faults landing exactly at the group-commit record boundary of
    ``transaction()``: the group must commit whole or not at all."""

    PRELOAD = range(0, 40, 2)
    GROUP_INSERTS = (101, 103, 105)
    GROUP_DELETES = (0, 4)

    def _run_group(self, dense):
        with dense.transaction():
            for key in self.GROUP_INSERTS:
                dense.insert(key)
            for key in self.GROUP_DELETES:
                dense.delete(key)

    def _expected_after(self, before):
        return sorted(
            (set(before) | set(self.GROUP_INSERTS))
            - set(self.GROUP_DELETES)
        )

    @given(crash_point=st.integers(0, 40), seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_crash_inside_group_commit_is_all_or_nothing(
        self, crash_point, seed
    ):
        """A crash at any check boundary of the group's journal write or
        apply recovers to exactly the pre-group or post-group state —
        never a partial subset of the group's commands."""
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "group.dsf")
            plan = FaultPlan(seed=seed)
            dense = JournaledDenseFile.create(
                path, num_pages=16, d=8, D=28, injector=plan
            )
            dense.insert_many(self.PRELOAD)
            before = [r.key for r in dense.range(-1, 10**9)]
            plan.arm(crash_point)
            crashed = False
            try:
                self._run_group(dense)
            except SimulatedCrash:
                crashed = True
            plan.disarm()
            dense._raw.close()
            reopened = JournaledDenseFile.open(path)
            state = [r.key for r in reopened.range(-1, 10**9)]
            assert state in (before, self._expected_after(before))
            if not crashed:
                assert state == self._expected_after(before)
            reopened.validate()
            reopened.close()

    @given(
        offset=st.integers(0, 12),
        torn=st.booleans(),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=25, deadline=None)
    def test_torn_or_flipped_group_apply_heals_to_whole_group(
        self, offset, torn, seed
    ):
        """Tear (or bit-flip) the Nth physical frame of the group's
        apply phase — any page of the commit, including the first and
        last record boundary.  The journal retains the whole group's
        images, so scrub must heal back to the complete post-group
        state; the group is never observed partially applied."""
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "group.dsf")
            plan = FaultPlan(seed=seed)
            dense = JournaledDenseFile.create(
                path, num_pages=16, d=8, D=28, injector=plan
            )
            dense.insert_many(self.PRELOAD)
            before = [r.key for r in dense.range(-1, 10**9)]
            with dense.transaction():
                for key in self.GROUP_INSERTS:
                    dense.insert(key)
                for key in self.GROUP_DELETES:
                    dense.delete(key)
                # Arm now: the group's pages are written at block exit,
                # so this lands the corruption on the (offset mod n)-th
                # frame of the apply — a precise record boundary of the
                # group commit.
                group_pages = len(dense._dirty)
                target = plan.physical_writes + (offset % group_pages)
                if torn:
                    plan.torn_write_at = target
                else:
                    plan.bitflip_at = target
            assert plan.torn_writes + plan.bitflips == 1
            dense._raw.close()

            report = scrub(path)
            assert report.healthy, report.summary()
            healed = set(report.repaired) | set(report.healed)
            assert healed == set(plan.corrupted_pages)
            with JournaledDenseFile.open(path) as reopened:
                state = [r.key for r in reopened.range(-1, 10**9)]
                assert state == self._expected_after(before)
                reopened.validate()
