"""Tests for the packed sequential file strawman."""

import pytest

from repro.baselines.sequential_file import PackedSequentialFile
from repro.core.errors import FileFullError, RecordNotFoundError
from repro.records import Record


@pytest.fixture
def packed():
    f = PackedSequentialFile(num_pages=8, capacity=4)
    f.bulk_load(range(0, 40, 2))  # 20 records = 5 full pages
    return f


class TestPacking:
    def test_bulk_load_packs_prefix(self, packed):
        assert packed.occupancies() == [4, 4, 4, 4, 4, 0, 0, 0]

    def test_insert_keeps_file_packed(self, packed):
        packed.insert(5)
        assert packed.occupancies() == [4, 4, 4, 4, 4, 1, 0, 0]
        keys = [r.key for r in packed.range_scan(-1, 100)]
        assert keys == sorted(keys)

    def test_delete_keeps_file_packed(self, packed):
        packed.delete(0)
        assert packed.occupancies() == [4, 4, 4, 4, 3, 0, 0, 0]

    def test_middle_insert_shifts_the_tail(self, packed):
        packed.stats.reset()
        packed.insert(1)  # lands on page 1: pages 1..5 all rewritten
        # Ripple touches every page from the insertion point to the end.
        assert packed.stats.writes >= 5

    def test_append_is_cheap(self, packed):
        packed.stats.reset()
        packed.insert(1000)
        assert packed.stats.writes <= 3


class TestSemantics:
    def test_search(self, packed):
        assert packed.search(10) == Record(10, None)
        assert packed.search(11) is None
        assert 10 in packed

    def test_delete_missing_raises(self, packed):
        with pytest.raises(RecordNotFoundError):
            packed.delete(11)

    def test_full_file_rejects_insert(self):
        f = PackedSequentialFile(num_pages=2, capacity=2)
        f.bulk_load(range(4))
        with pytest.raises(FileFullError):
            f.insert(99)

    def test_scan_count(self, packed):
        assert [r.key for r in packed.scan_count(9, 3)] == [10, 12, 14]

    def test_many_updates_stay_ordered(self, packed):
        for key in (5, 7, 9, 11, 13):
            packed.insert(key)
        for key in (0, 2, 4):
            packed.delete(key)
        keys = [r.key for r in packed.range_scan(-1, 1000)]
        assert keys == sorted(keys)
        assert len(keys) == len(packed)

    def test_bulk_load_requires_empty(self, packed):
        with pytest.raises(ValueError):
            packed.bulk_load([1])
