"""Tests for batch updates: insert_many and bulk delete_range."""

import pytest

from repro import (
    Control1Engine,
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
)
from repro.records import Record


@pytest.fixture(params=[Control1Engine, Control2Engine])
def engine(request):
    return request.param(DensityParams(num_pages=64, d=8, D=40))


class TestInsertMany:
    def test_inserts_everything_in_order(self, engine):
        count = engine.insert_many([5, 1, (3, "three"), Record(2, "two")])
        assert count == 4
        keys = [record.key for record in engine.pagefile.iter_all()]
        assert keys == [1, 2, 3, 5]
        assert engine.search(3).value == "three"

    def test_empty_iterable(self, engine):
        assert engine.insert_many([]) == 0

    def test_large_batch_stays_valid(self, engine):
        engine.insert_many(range(0, 500))
        engine.validate()
        assert len(engine) == 500

    def test_duplicates_in_batch_raise(self, engine):
        from repro.core.errors import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            engine.insert_many([1, 1])

    def test_generator_input(self, engine):
        assert engine.insert_many(k * 2 for k in range(10)) == 10


class TestDeleteRange:
    def test_deletes_inclusive_range(self, engine):
        engine.insert_many(range(20))
        removed = engine.delete_range(5, 9)
        assert removed == 5
        engine.validate()
        keys = [record.key for record in engine.pagefile.iter_all()]
        assert keys == [0, 1, 2, 3, 4] + list(range(10, 20))

    def test_empty_range_is_noop(self, engine):
        engine.insert_many(range(10))
        assert engine.delete_range(100, 200) == 0
        assert len(engine) == 10

    def test_range_on_empty_file(self, engine):
        assert engine.delete_range(0, 10) == 0

    def test_delete_everything(self, engine):
        engine.insert_many(range(200))
        removed = engine.delete_range(-1, 10**9)
        assert removed == 200
        assert len(engine) == 0
        engine.validate()

    def test_range_spanning_many_pages(self, engine):
        engine.insert_many(range(400))
        removed = engine.delete_range(50, 349)
        assert removed == 300
        engine.validate()
        assert len(engine) == 100

    def test_size_and_counters_consistent(self, engine):
        engine.insert_many(range(100))
        engine.delete_range(10, 40)
        assert len(engine) == engine.calibrator.count[engine.calibrator.root]

    def test_cost_is_one_pass(self, engine):
        engine.insert_many(range(400))
        engine.stats.checkpoint("rd")
        engine.delete_range(0, 399)
        delta = engine.stats.delta("rd")
        # One read + one write per touched page, nothing quadratic.
        touched = 64
        assert delta.page_accesses <= 2 * touched + 4

    def test_single_key_range(self, engine):
        engine.insert_many(range(10))
        assert engine.delete_range(4, 4) == 1
        assert 4 not in engine


class TestControl2FlagRepair:
    def test_warning_flags_lowered_after_range_delete(self):
        params = DensityParams(num_pages=64, d=8, D=40, j=1)
        engine = Control2Engine(params)
        from repro.workloads import converging_inserts

        for operation in converging_inserts(300):
            engine.insert(operation.key)
        # Bulk-delete the hot region; densities collapse, flags must drop.
        engine.delete_range(-1, 10)
        engine.validate()  # includes Fact 5.1(a)

    def test_updates_continue_after_range_delete(self):
        params = DensityParams(num_pages=64, d=8, D=40)
        engine = Control2Engine(params)
        engine.insert_many(range(300))
        engine.delete_range(100, 199)
        engine.insert_many(range(1000, 1100))
        engine.validate()
        assert len(engine) == 300


class TestFacade:
    def test_dense_file_batch_api(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert_many([(k, str(k)) for k in range(50)])
        assert dense.delete_range(10, 19) == 10
        dense.validate()
        assert len(dense) == 40

    def test_macro_engine_batch_api(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=12)  # macro blocks
        dense.insert_many(range(100))
        assert dense.delete_range(0, 49) == 50
        dense.validate()
        assert len(dense) == 50
