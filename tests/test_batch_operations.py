"""Tests for batch updates: insert_many and bulk delete_range."""

import pytest

from repro import (
    Control1Engine,
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
)
from repro.records import Record


@pytest.fixture(params=[Control1Engine, Control2Engine])
def engine(request):
    return request.param(DensityParams(num_pages=64, d=8, D=40))


class TestInsertMany:
    def test_inserts_everything_in_order(self, engine):
        count = engine.insert_many([5, 1, (3, "three"), Record(2, "two")])
        assert count == 4
        keys = [record.key for record in engine.pagefile.iter_all()]
        assert keys == [1, 2, 3, 5]
        assert engine.search(3).value == "three"

    def test_empty_iterable(self, engine):
        assert engine.insert_many([]) == 0

    def test_large_batch_stays_valid(self, engine):
        engine.insert_many(range(0, 500))
        engine.validate()
        assert len(engine) == 500

    def test_duplicates_in_batch_raise(self, engine):
        from repro.core.errors import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            engine.insert_many([1, 1])

    def test_generator_input(self, engine):
        assert engine.insert_many(k * 2 for k in range(10)) == 10


class TestDeleteRange:
    def test_deletes_inclusive_range(self, engine):
        engine.insert_many(range(20))
        removed = engine.delete_range(5, 9)
        assert removed == 5
        engine.validate()
        keys = [record.key for record in engine.pagefile.iter_all()]
        assert keys == [0, 1, 2, 3, 4] + list(range(10, 20))

    def test_empty_range_is_noop(self, engine):
        engine.insert_many(range(10))
        assert engine.delete_range(100, 200) == 0
        assert len(engine) == 10

    def test_range_on_empty_file(self, engine):
        assert engine.delete_range(0, 10) == 0

    def test_delete_everything(self, engine):
        engine.insert_many(range(200))
        removed = engine.delete_range(-1, 10**9)
        assert removed == 200
        assert len(engine) == 0
        engine.validate()

    def test_range_spanning_many_pages(self, engine):
        engine.insert_many(range(400))
        removed = engine.delete_range(50, 349)
        assert removed == 300
        engine.validate()
        assert len(engine) == 100

    def test_size_and_counters_consistent(self, engine):
        engine.insert_many(range(100))
        engine.delete_range(10, 40)
        assert len(engine) == engine.calibrator.count[engine.calibrator.root]

    def test_cost_is_one_pass(self, engine):
        engine.insert_many(range(400))
        engine.stats.checkpoint("rd")
        engine.delete_range(0, 399)
        delta = engine.stats.delta("rd")
        # One read + one write per touched page, nothing quadratic.
        touched = 64
        assert delta.page_accesses <= 2 * touched + 4

    def test_single_key_range(self, engine):
        engine.insert_many(range(10))
        assert engine.delete_range(4, 4) == 1
        assert 4 not in engine


class TestBatchFastPath:
    """The coalesced write path: grouping, hints, and the I/O win."""

    def test_monotone_page_visits_for_sorted_input(self, engine):
        """Sorted input + hint => destination groups open left to right.

        On a quiescent bulk-loaded file with wide slack, no maintenance
        moves the boundary between groups, so the sequence of pages
        opened by ``group_read`` must be non-decreasing — the hinted
        locate never re-searches behind the previous destination.
        """
        engine.bulk_load(range(0, 400, 2))
        visits = []
        original = engine.pagefile.group_read

        def spy(page_number):
            visits.append(page_number)
            return original(page_number)

        engine.pagefile.group_read = spy
        engine.insert_many(range(1, 401, 8))
        assert visits, "batched path must route through group_read"
        assert visits == sorted(visits)

    def test_hinted_locate_equals_plain_locate(self, engine):
        engine.insert_many(range(0, 300, 3))
        pagefile = engine.pagefile
        for key in range(-5, 305, 7):
            expected = pagefile.locate_in_core(key)
            for hint in (None, 1, 17, expected, engine.params.num_pages):
                assert pagefile.locate_in_core_hinted(key, hint) == expected

    def test_batch_false_escape_hatch(self, engine):
        assert engine.insert_many(range(30), batch=False) == 30
        assert engine.delete_range(5, 14, batch=False) == 10
        engine.validate()
        assert len(engine) == 20

    def test_file_full_raised_mid_batch(self, engine):
        cap = engine.params.max_records
        from repro.core.errors import FileFullError

        with pytest.raises(FileFullError):
            engine.insert_many(range(cap + 10))
        # Everything up to the cap landed and the file is consistent.
        assert len(engine) == cap
        engine.validate()

    def test_sorted_burst_batched_does_less_io(self):
        """Acceptance: a 10k sorted burst pays measurably less I/O.

        Physical reads+writes are metered at the MemoryStore seam
        (gets + puts) and logical accesses at the simulated disk; the
        batched path must beat the per-record loop on both while
        producing the identical final file.
        """
        from repro.storage.backend import MemoryStore

        params = DensityParams(num_pages=2048, d=8, D=48)
        results = {}
        for batch in (True, False):
            store = MemoryStore(2048)
            engine = Control2Engine(params, store=store)
            engine.insert_many(range(10_000), batch=batch)
            engine.validate()
            stats = store.stats()
            results[batch] = {
                "physical": stats["gets"] + stats["puts"],
                "logical": engine.stats.page_accesses,
                "occupancies": engine.occupancies(),
                "flags": list(engine.calibrator.flag),
            }
        assert results[True]["occupancies"] == results[False]["occupancies"]
        assert results[True]["flags"] == results[False]["flags"]
        # "Measurably fewer": at least 25% off both meters on this burst.
        assert results[True]["physical"] < 0.75 * results[False]["physical"]
        assert results[True]["logical"] < 0.75 * results[False]["logical"]

    def test_delete_range_jumps_to_first_affected_page(self, engine):
        """The bisect satellite: pages left of the range are never read."""
        engine.insert_many(range(400))
        engine.stats.checkpoint("jump")
        engine.delete_range(390, 399)
        delta = engine.stats.delta("jump")
        # Two boundary-ish pages at most — nothing proportional to the
        # ~50 pages holding keys below the range.
        assert delta.page_accesses <= 6

    def test_nonempty_in_range_matches_scan(self, engine):
        engine.insert_many(range(0, 300, 3))
        pagefile = engine.pagefile
        nonempty = pagefile.nonempty_pages()
        for lo, hi in [(0, 10), (50, 200), (290, 400), (400, 500), (7, 7)]:
            got = pagefile.nonempty_in_range(lo, hi)
            holding = [
                page
                for page in nonempty
                if any(lo <= r.key <= hi for r in pagefile.page(page))
            ]
            # Covers every page holding a key in range, as a contiguous
            # run of nonempty pages with at most one extra boundary
            # page on the left (where lo may fall mid-page).
            assert set(holding) <= set(got)
            assert got == [p for p in nonempty if got and got[0] <= p <= got[-1]]
            extras = [p for p in got if p not in holding]
            assert len(extras) <= 1 if holding else True

    def test_empty_range_returns_empty(self, engine):
        engine.insert_many(range(10))
        assert engine.pagefile.nonempty_in_range(5, 2) == []


class TestControl2FlagRepair:
    def test_warning_flags_lowered_after_range_delete(self):
        params = DensityParams(num_pages=64, d=8, D=40, j=1)
        engine = Control2Engine(params)
        from repro.workloads import converging_inserts

        for operation in converging_inserts(300):
            engine.insert(operation.key)
        # Bulk-delete the hot region; densities collapse, flags must drop.
        engine.delete_range(-1, 10)
        engine.validate()  # includes Fact 5.1(a)

    def test_updates_continue_after_range_delete(self):
        params = DensityParams(num_pages=64, d=8, D=40)
        engine = Control2Engine(params)
        engine.insert_many(range(300))
        engine.delete_range(100, 199)
        engine.insert_many(range(1000, 1100))
        engine.validate()
        assert len(engine) == 300


class TestFacade:
    def test_dense_file_batch_api(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert_many([(k, str(k)) for k in range(50)])
        assert dense.delete_range(10, 19) == 10
        dense.validate()
        assert len(dense) == 40

    def test_macro_engine_batch_api(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=12)  # macro blocks
        dense.insert_many(range(100))
        assert dense.delete_range(0, 49) == 50
        dense.validate()
        assert len(dense) == 50
