"""Unit tests for the calibrator tree."""

import pytest

from repro.core.calibrator import CalibratorTree


class TestStructure:
    def test_root_spans_whole_file(self):
        tree = CalibratorTree(8)
        assert (tree.lo[tree.root], tree.hi[tree.root]) == (1, 8)
        assert tree.depth[tree.root] == 0

    def test_floor_midpoint_split(self):
        tree = CalibratorTree(8)
        left, right = tree.left[tree.root], tree.right[tree.root]
        assert (tree.lo[left], tree.hi[left]) == (1, 4)
        assert (tree.lo[right], tree.hi[right]) == (5, 8)

    def test_every_page_has_a_leaf(self):
        tree = CalibratorTree(8)
        for page in range(1, 9):
            leaf = tree.leaf_of_page[page]
            assert tree.is_leaf(leaf)
            assert tree.lo[leaf] == tree.hi[leaf] == page

    def test_power_of_two_tree_is_perfect(self):
        tree = CalibratorTree(8)
        assert len(tree) == 15
        assert all(tree.depth[tree.leaf_of_page[p]] == 3 for p in range(1, 9))

    def test_non_power_of_two_uneven_leaves(self):
        tree = CalibratorTree(6)  # splits 1-3 / 4-6, then 1-2/3, 4-5/6
        depths = {tree.depth[tree.leaf_of_page[p]] for p in range(1, 7)}
        assert depths == {2, 3}

    def test_single_page_tree(self):
        tree = CalibratorTree(1)
        assert len(tree) == 1
        assert tree.is_leaf(tree.root)

    def test_direction_flag(self):
        tree = CalibratorTree(8)
        assert tree.is_right_child(tree.right[tree.root])
        assert not tree.is_right_child(tree.left[tree.root])
        with pytest.raises(ValueError):
            tree.is_right_child(tree.root)

    def test_pages_in(self):
        tree = CalibratorTree(8)
        assert tree.pages_in(tree.root) == 8
        assert tree.pages_in(tree.left[tree.root]) == 4

    def test_path_from_leaf_is_leaf_to_root(self):
        tree = CalibratorTree(8)
        path = tree.path_from_leaf(5)
        assert path[0] == tree.leaf_of_page[5]
        assert path[-1] == tree.root
        assert [tree.depth[node] for node in path] == [3, 2, 1, 0]


class TestCounters:
    def test_add_updates_whole_path(self):
        tree = CalibratorTree(8)
        tree.add(5, 3)
        for node in tree.path_from_leaf(5):
            assert tree.count[node] == 3
        assert tree.count[tree.leaf_of_page[4]] == 0

    def test_add_negative_delta(self):
        tree = CalibratorTree(8)
        tree.add(5, 3)
        tree.add(5, -2)
        assert tree.leaf_count(5) == 1

    def test_underflow_rejected(self):
        tree = CalibratorTree(8)
        with pytest.raises(ValueError):
            tree.add(5, -1)

    def test_transfer_moves_counts_between_subtrees(self):
        tree = CalibratorTree(8)
        tree.add(5, 10)
        tree.transfer(source_page=5, dest_page=2, moved=4)
        assert tree.leaf_count(5) == 6
        assert tree.leaf_count(2) == 4
        assert tree.count[tree.root] == 10

    def test_transfer_within_sibling_pages(self):
        tree = CalibratorTree(8)
        tree.add(7, 6)
        tree.transfer(source_page=7, dest_page=8, moved=2)
        # Parent of leaves 7,8 is unchanged.
        parent = tree.parent[tree.leaf_of_page[7]]
        assert tree.count[parent] == 6
        assert tree.leaf_count(8) == 2

    def test_nodes_separating_matches_up_set_definition(self):
        tree = CalibratorTree(8)
        nodes = tree.nodes_separating(dest_page=2, source_page=4)
        ranges = {(tree.lo[n], tree.hi[n]) for n in nodes}
        # Nodes containing page 2 but not page 4: L2 and [1,2].
        assert ranges == {(2, 2), (1, 2)}

    def test_nodes_separating_adjacent_pages(self):
        tree = CalibratorTree(8)
        nodes = tree.nodes_separating(dest_page=7, source_page=8)
        assert [(tree.lo[n], tree.hi[n]) for n in nodes] == [(7, 7)]

    def test_nodes_separating_is_leaf_first(self):
        tree = CalibratorTree(8)
        nodes = tree.nodes_separating(dest_page=1, source_page=8)
        depths = [tree.depth[n] for n in nodes]
        assert depths == sorted(depths, reverse=True)


class TestFlags:
    def test_set_flag_updates_subtree_counts(self):
        tree = CalibratorTree(8)
        leaf = tree.leaf_of_page[3]
        tree.set_flag(leaf, True)
        for node in tree.path_from_leaf(3):
            assert tree.flags_below[node] == 1
        assert tree.any_flagged()

    def test_set_flag_is_idempotent(self):
        tree = CalibratorTree(8)
        leaf = tree.leaf_of_page[3]
        tree.set_flag(leaf, True)
        tree.set_flag(leaf, True)
        assert tree.flags_below[tree.root] == 1

    def test_lower_flag(self):
        tree = CalibratorTree(8)
        leaf = tree.leaf_of_page[3]
        tree.set_flag(leaf, True)
        tree.set_flag(leaf, False)
        assert not tree.any_flagged()
        assert tree.flags_below[tree.root] == 0

    def test_flagged_nodes_listing(self):
        tree = CalibratorTree(8)
        a = tree.leaf_of_page[1]
        b = tree.right[tree.root]
        tree.set_flag(a, True)
        tree.set_flag(b, True)
        assert sorted(tree.flagged_nodes()) == sorted([a, b])

    def test_clear_flags(self):
        tree = CalibratorTree(8)
        tree.set_flag(tree.leaf_of_page[1], True)
        tree.clear_flags()
        assert not tree.any_flagged()


class TestSelectQueries:
    def test_lowest_ancestor_prefers_nearby_warnings(self):
        # Matches Example 5.2's first SELECT: from leaf 8 with L8 and v3
        # flagged, alpha is the parent of leaves 7-8.
        tree = CalibratorTree(8)
        leaf8 = tree.leaf_of_page[8]
        v3 = tree.right[tree.root]
        tree.set_flag(leaf8, True)
        tree.set_flag(v3, True)
        alpha = tree.lowest_ancestor_with_flagged_proper_descendant(8)
        assert (tree.lo[alpha], tree.hi[alpha]) == (7, 8)

    def test_lowest_ancestor_walks_to_root_when_needed(self):
        # Matches Example 5.2's second SELECT: only v3 flagged, alpha is
        # the root, the deepest flagged descendant is v3 itself.
        tree = CalibratorTree(8)
        v3 = tree.right[tree.root]
        tree.set_flag(v3, True)
        alpha = tree.lowest_ancestor_with_flagged_proper_descendant(8)
        assert alpha == tree.root
        assert tree.deepest_flagged_descendant(alpha) == v3

    def test_no_flags_returns_none(self):
        tree = CalibratorTree(8)
        assert tree.lowest_ancestor_with_flagged_proper_descendant(4) is None
        assert tree.deepest_flagged_descendant(tree.root) is None

    def test_deepest_flagged_descendant_prefers_depth(self):
        tree = CalibratorTree(8)
        shallow = tree.left[tree.root]
        deep = tree.leaf_of_page[6]
        tree.set_flag(shallow, True)
        tree.set_flag(deep, True)
        assert tree.deepest_flagged_descendant(tree.root) == deep

    def test_depth_ties_break_to_smaller_range_start(self):
        tree = CalibratorTree(8)
        left_leaf = tree.leaf_of_page[2]
        right_leaf = tree.leaf_of_page[7]
        tree.set_flag(right_leaf, True)
        tree.set_flag(left_leaf, True)
        assert tree.deepest_flagged_descendant(tree.root) == left_leaf

    def test_search_scoped_to_subtree(self):
        tree = CalibratorTree(8)
        outside = tree.leaf_of_page[1]
        tree.set_flag(outside, True)
        right = tree.right[tree.root]
        assert tree.deepest_flagged_descendant(right) is None

    def test_leaf_own_flag_found_via_parent(self):
        tree = CalibratorTree(8)
        leaf = tree.leaf_of_page[4]
        tree.set_flag(leaf, True)
        alpha = tree.lowest_ancestor_with_flagged_proper_descendant(4)
        assert alpha == tree.parent[leaf]
        assert tree.deepest_flagged_descendant(alpha) == leaf
