"""Group commit: coalescing commands into one journaled transaction.

``JournaledDenseFile.transaction()`` defers the per-command commit so a
burst of mutations pays one journal write, one fsync and one write-back
of the *union* of the dirty page sets.  Atomicity widens to the group:
either every command in the block is on disk after the exit, or (on an
exception inside the block) none of them are.
"""

import pytest

from repro import JournaledDenseFile
from repro.core.errors import InvariantViolationError

GEOMETRY = dict(num_pages=32, d=8, D=40)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "group.dsf")


def contents(dense):
    return [(r.key, r.value) for r in dense.range(float("-inf"), float("inf"))]


class TestFsyncCoalescing:
    def test_group_pays_one_fsync(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            for key in range(20):
                dense.insert(key)
        counters = dense.store_stats()["journal"]
        assert counters["transactions"] == 1
        assert counters["fsyncs"] == 1
        dense.close()

    def test_per_command_pays_n_fsyncs(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        for key in range(20):
            dense.insert(key)
        counters = dense.store_stats()["journal"]
        assert counters["transactions"] == 20
        assert counters["fsyncs"] == 20
        dense.close()

    def test_hot_page_journaled_once_per_group(self, path):
        """Commands hitting the same page coalesce to one journal entry."""
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            for key in range(10):
                dense.insert(key)  # clustered: few distinct pages
        grouped = dense.store_stats()["journal"]["pages_journaled"]
        dense.close()

        reference = JournaledDenseFile.create(path + ".ref", **GEOMETRY)
        for key in range(10):
            reference.insert(key)
        per_command = reference.store_stats()["journal"]["pages_journaled"]
        reference.close()
        assert grouped < per_command

    def test_batch_calls_allowed_inside_group(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            dense.insert_many(range(50))
            dense.delete_range(10, 19)
            dense.insert(100)
        assert dense.store_stats()["journal"]["fsyncs"] == 1
        assert len(dense) == 41
        dense.close()


class TestGroupAtomicity:
    def test_clean_exit_is_durable(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            dense.insert_many(range(30))
            dense.delete_range(0, 9)
        # Abandon without close: the group already committed.
        with JournaledDenseFile.open(path) as reopened:
            assert [k for k, _ in contents(reopened)] == list(range(10, 30))

    def test_exception_rolls_back_whole_group(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        dense.insert_many(range(10))  # committed pre-state
        with pytest.raises(RuntimeError):
            with dense.transaction():
                dense.insert(100)
                dense.delete(3)
                raise RuntimeError("power cut")
        # Nothing inside the block reached disk.
        with JournaledDenseFile.open(path) as reopened:
            assert [k for k, _ in contents(reopened)] == list(range(10))
            reopened.validate()

    def test_nested_blocks_commit_once_at_outermost(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            dense.insert(1)
            with dense.transaction():
                dense.insert(2)
            # Inner exit must not have committed anything yet.
            assert dense.store_stats()["journal"]["transactions"] == 0
            dense.insert(3)
        assert dense.store_stats()["journal"]["transactions"] == 1
        dense.close()
        with JournaledDenseFile.open(path) as reopened:
            assert [k for k, _ in contents(reopened)] == [1, 2, 3]

    def test_close_inside_group_commits(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        group = dense.transaction()
        group.__enter__()
        dense.insert_many(range(5))
        dense.close()  # never exits the block; close flushes the group
        with JournaledDenseFile.open(path) as reopened:
            assert [k for k, _ in contents(reopened)] == list(range(5))

    def test_validate_refuses_mid_group(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            dense.insert(1)
            with pytest.raises(InvariantViolationError, match="uncommitted"):
                dense.validate()
        dense.validate()  # fine after the group lands
        dense.close()


class TestCounterPlumbing:
    def test_journal_counters_exposed(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        dense.insert_many(range(25))
        counters = dense.store_stats()["journal"]
        assert set(counters) == {
            "transactions",
            "pages_journaled",
            "bytes_journaled",
            "fsyncs",
            "sequence",
        }
        assert counters["transactions"] == 1
        assert counters["sequence"] == 1
        assert counters["pages_journaled"] >= 1
        assert counters["bytes_journaled"] > 0
        dense.close()

    def test_empty_group_writes_nothing(self, path):
        dense = JournaledDenseFile.create(path, **GEOMETRY)
        with dense.transaction():
            pass
        assert dense.store_stats()["journal"]["transactions"] == 0
        dense.close()
