"""Tests for the thread-safe wrapper under real thread contention."""

import random
import time
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import DenseSequentialFile
from repro.concurrent import ThreadSafeDenseFile


@pytest.fixture
def shared():
    return ThreadSafeDenseFile(DenseSequentialFile(num_pages=128, d=16, D=56))


class TestBasicDelegation:
    def test_api_surface(self, shared):
        shared.insert(1, "one")
        shared.insert_many([2, 3, 4])
        assert shared.search(1).value == "one"
        assert len(shared) == 4
        assert 2 in shared
        assert [r.key for r in shared.range(1, 3)] == [1, 2, 3]
        assert shared.rank(3) == 2
        assert shared.count_range(1, 4) == 4
        assert shared.select(0).key == 1
        assert shared.min().key == 1
        assert shared.max().key == 4
        assert shared.successor(2).key == 3
        assert shared.predecessor(2).key == 1
        shared.update(1, "uno")
        shared.delete(4)
        assert shared.delete_range(2, 3) == 2
        shared.compact()
        shared.validate()

    def test_range_returns_a_snapshot_list(self, shared):
        shared.insert_many(range(10))
        window = shared.range(0, 9)
        shared.delete_range(0, 9)
        # The snapshot is unaffected by the later mutation.
        assert len(window) == 10


class TestThreadedWrites:
    def test_disjoint_inserters(self, shared):
        def worker(base):
            for offset in range(100):
                shared.insert(base * 1000 + offset)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        assert len(shared) == 800
        shared.validate()

    def test_readers_and_writers_interleaved(self, shared):
        shared.insert_many(range(0, 2000, 4))
        errors = []

        def reader(seed):
            rng = random.Random(seed)
            for _ in range(200):
                start = rng.randrange(2000)
                window = shared.range(start, start + 100)
                keys = [record.key for record in window]
                if keys != sorted(keys):
                    errors.append("unsorted snapshot")
                # Yield the lock so writers interleave rather than starve.
                time.sleep(0)

        def writer(base):
            for offset in range(150):
                shared.insert(10_000 + base * 1000 + offset)
                time.sleep(0)

        readers = [
            threading.Thread(target=reader, args=(seed,)) for seed in range(3)
        ]
        for thread in readers:
            thread.start()
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(writer, range(4)))
        for thread in readers:
            thread.join()
        assert errors == []
        assert len(shared) == 500 + 600
        shared.validate()

    def test_mixed_operations_with_key_ownership(self, shared):
        """Each worker owns a key stripe, so semantics stay deterministic
        per stripe while the structure is fully shared."""

        def worker(stripe):
            rng = random.Random(stripe)
            owned = set()
            for _ in range(200):
                if rng.random() < 0.6 or not owned:
                    key = stripe * 100_000 + rng.randrange(50_000)
                    if key in owned:
                        continue
                    shared.insert(key)
                    owned.add(key)
                else:
                    key = owned.pop()
                    shared.delete(key)
            return owned

        with ThreadPoolExecutor(max_workers=6) as pool:
            survivors = list(pool.map(worker, range(6)))
        expected = sorted(set().union(*survivors))
        assert [r.key for r in shared.range(-1, 10**9)] == expected
        shared.validate()

    def test_concurrent_range_deletes_and_inserts(self, shared):
        shared.insert_many(range(0, 5000, 5))

        def deleter(block):
            shared.delete_range(block * 1000, block * 1000 + 999)

        def inserter(block):
            for key in range(block * 1000 + 10_001, block * 1000 + 10_050):
                shared.insert(key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for block in range(4):
                pool.submit(deleter, block)
                pool.submit(inserter, block)
        shared.validate()
        # Every original key below 4000 is gone; the inserted stripes are in.
        assert shared.count_range(0, 3999) == 0
        assert shared.count_range(10_000, 14_999) == 4 * 49


class TestLifecyclePassThrough:
    def test_flush_close_and_context_manager(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "shared.dsf")
        with ThreadSafeDenseFile(
            PersistentDenseFile.create(path, num_pages=32, d=8, D=40)
        ) as shared:
            shared.insert_many(range(50))
            shared.flush()
            assert not shared.closed
            # The flushed state is already durable before close.
            from repro.storage.ondisk import DiskPagedStore

            # (peek at the OS file through a second handle)
            with DiskPagedStore.open(path) as raw:
                stored = sum(
                    len(raw.read_page(p)) for p in range(1, 33)
                )
            assert stored == 50
        assert shared.closed
        with PersistentDenseFile.open(path) as reopened:
            assert len(reopened) == 50

    def test_flush_close_on_memory_file(self, shared):
        shared.insert_many(range(10))
        shared.flush()  # no-op on the memory backend
        shared.close()  # idem: a memory store holds no OS resources
        assert not shared.closed  # memory backends never report closed
        assert len(shared) == 10

    def test_concurrent_flushes_are_serialized(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "flushy.dsf")
        shared = ThreadSafeDenseFile(
            PersistentDenseFile.create(
                path, num_pages=64, d=8, D=40, cache_pages=4,
                write_through=False,
            )
        )

        def writer(base):
            for offset in range(40):
                shared.insert(base * 1000 + offset)
                if offset % 10 == 0:
                    shared.flush()

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(writer, range(4)))
        shared.validate()
        assert len(shared) == 160
        shared.close()
        with PersistentDenseFile.open(path) as reopened:
            assert len(reopened) == 160
