"""Tests for the thread-safe wrapper under real thread contention."""

import random
import time
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import DenseSequentialFile
from repro.concurrent import Deadline, ThreadSafeDenseFile
from repro.core.errors import OperationTimeout, OverloadError
from repro.storage import (
    BackoffPolicy,
    FaultPlan,
    MemoryStore,
    fault_tolerant_stack,
)


@pytest.fixture
def shared():
    return ThreadSafeDenseFile(DenseSequentialFile(num_pages=128, d=16, D=56))


class TestBasicDelegation:
    def test_api_surface(self, shared):
        shared.insert(1, "one")
        shared.insert_many([2, 3, 4])
        assert shared.search(1).value == "one"
        assert len(shared) == 4
        assert 2 in shared
        assert [r.key for r in shared.range(1, 3)] == [1, 2, 3]
        assert shared.rank(3) == 2
        assert shared.count_range(1, 4) == 4
        assert shared.select(0).key == 1
        assert shared.min().key == 1
        assert shared.max().key == 4
        assert shared.successor(2).key == 3
        assert shared.predecessor(2).key == 1
        shared.update(1, "uno")
        shared.delete(4)
        assert shared.delete_range(2, 3) == 2
        shared.compact()
        shared.validate()

    def test_range_returns_a_snapshot_list(self, shared):
        shared.insert_many(range(10))
        window = shared.range(0, 9)
        shared.delete_range(0, 9)
        # The snapshot is unaffected by the later mutation.
        assert len(window) == 10


class TestThreadedWrites:
    def test_disjoint_inserters(self, shared):
        def worker(base):
            for offset in range(100):
                shared.insert(base * 1000 + offset)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        assert len(shared) == 800
        shared.validate()

    def test_readers_and_writers_interleaved(self, shared):
        shared.insert_many(range(0, 2000, 4))
        errors = []

        def reader(seed):
            rng = random.Random(seed)
            for _ in range(200):
                start = rng.randrange(2000)
                window = shared.range(start, start + 100)
                keys = [record.key for record in window]
                if keys != sorted(keys):
                    errors.append("unsorted snapshot")
                # Yield the lock so writers interleave rather than starve.
                time.sleep(0)

        def writer(base):
            for offset in range(150):
                shared.insert(10_000 + base * 1000 + offset)
                time.sleep(0)

        readers = [
            threading.Thread(target=reader, args=(seed,)) for seed in range(3)
        ]
        for thread in readers:
            thread.start()
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(writer, range(4)))
        for thread in readers:
            thread.join()
        assert errors == []
        assert len(shared) == 500 + 600
        shared.validate()

    def test_mixed_operations_with_key_ownership(self, shared):
        """Each worker owns a key stripe, so semantics stay deterministic
        per stripe while the structure is fully shared."""

        def worker(stripe):
            rng = random.Random(stripe)
            owned = set()
            for _ in range(200):
                if rng.random() < 0.6 or not owned:
                    key = stripe * 100_000 + rng.randrange(50_000)
                    if key in owned:
                        continue
                    shared.insert(key)
                    owned.add(key)
                else:
                    key = owned.pop()
                    shared.delete(key)
            return owned

        with ThreadPoolExecutor(max_workers=6) as pool:
            survivors = list(pool.map(worker, range(6)))
        expected = sorted(set().union(*survivors))
        assert [r.key for r in shared.range(-1, 10**9)] == expected
        shared.validate()

    def test_concurrent_range_deletes_and_inserts(self, shared):
        shared.insert_many(range(0, 5000, 5))

        def deleter(block):
            shared.delete_range(block * 1000, block * 1000 + 999)

        def inserter(block):
            for key in range(block * 1000 + 10_001, block * 1000 + 10_050):
                shared.insert(key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for block in range(4):
                pool.submit(deleter, block)
                pool.submit(inserter, block)
        shared.validate()
        # Every original key below 4000 is gone; the inserted stripes are in.
        assert shared.count_range(0, 3999) == 0
        assert shared.count_range(10_000, 14_999) == 4 * 49


class TestReaderWriterSemantics:
    def test_memory_stack_auto_enables_shared_reads(self, shared):
        assert shared.shared_reads is True

    def test_readers_share_while_writers_wait(self, shared):
        shared.insert(1)
        shared.lock.acquire_read()
        try:
            # A second reader enters alongside the held read lock...
            assert shared.search(1).key == 1
            # ...while a writer is excluded until the reader leaves.
            with pytest.raises(OperationTimeout):
                shared.insert(2, timeout=0.05)
        finally:
            shared.lock.release_read()
        shared.insert(2)
        assert len(shared) == 2

    def test_disk_backed_reads_are_serialized(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "serial.dsf")
        shared = ThreadSafeDenseFile(
            PersistentDenseFile.create(path, num_pages=32, d=8, D=40)
        )
        # A shared seekable file handle means reads must not overlap.
        assert shared.shared_reads is False
        shared.close()

    def test_shared_reads_override(self):
        inner = DenseSequentialFile(num_pages=64, d=8, D=40)
        assert ThreadSafeDenseFile(inner, shared_reads=False).shared_reads is False


class TestDeadlines:
    def test_timeout_while_writer_holds_the_lock(self, shared):
        shared.insert(1)
        shared.lock.acquire_write()
        try:
            with pytest.raises(OperationTimeout):
                shared.search(1, timeout=0.05)
            with pytest.raises(OperationTimeout):
                shared.insert(2, timeout=0.05)
        finally:
            shared.lock.release_write()
        # The timed-out waiters left the queue; the file still works.
        assert shared.search(1).key == 1
        shared.insert(2)
        assert shared.lock.stats()["timeouts"] == 2

    def test_timeout_and_deadline_are_mutually_exclusive(self, shared):
        with pytest.raises(ValueError):
            shared.search(1, timeout=1.0, deadline=Deadline.unbounded())

    def test_one_deadline_spans_several_calls(self, shared):
        shared.insert_many(range(100))
        budget = Deadline.after(30.0)
        assert shared.count_range(0, 99, deadline=budget) == 100
        assert shared.rank(50, deadline=budget) == 50

    def test_default_timeout_covers_locked_properties(self):
        """The stats/params properties take the read lock (and therefore
        honour the default budget) instead of peeking at a moving file."""
        inner = DenseSequentialFile(num_pages=64, d=8, D=40)
        shared = ThreadSafeDenseFile(inner, default_timeout=0.05)
        shared.lock.acquire_write()
        try:
            with pytest.raises(OperationTimeout):
                shared.stats
            with pytest.raises(OperationTimeout):
                shared.params
        finally:
            shared.lock.release_write()
        assert shared.params.num_pages == 64
        assert shared.stats is inner.stats


class TestOverload:
    def test_saturated_gate_sheds_writes_and_serves_reads(self):
        inner = DenseSequentialFile(num_pages=64, d=8, D=40)
        shared = ThreadSafeDenseFile(inner, max_in_flight=1, shed_load=True)
        shared.insert(1)
        # Saturate the only in-flight slot.
        slot = shared.gate.enter("read")
        try:
            # Writes are rejected immediately — no queueing, no timeout.
            start = time.monotonic()
            with pytest.raises(OverloadError) as info:
                shared.insert(2, timeout=5.0)
            assert time.monotonic() - start < 1.0
            assert info.value.in_flight == 1
            # A read queues and completes once the slot frees, well
            # within its deadline.
            releaser = threading.Timer(
                0.05, lambda: slot.__exit__(None, None, None)
            )
            releaser.start()
            try:
                assert shared.search(1, timeout=5.0).key == 1
            finally:
                releaser.join()
        finally:
            pass
        stats = shared.gate.stats()
        assert stats["shed_writes"] == 1
        assert stats["rejected"] == 1
        # The shed write never reached the file.
        assert len(shared) == 1

    def test_full_wait_queue_rejects_everything(self):
        inner = DenseSequentialFile(num_pages=64, d=8, D=40)
        shared = ThreadSafeDenseFile(inner, max_in_flight=1, max_queued=0)
        slot = shared.gate.enter("read")
        try:
            with pytest.raises(OverloadError):
                shared.search(1, timeout=5.0)
            with pytest.raises(OverloadError):
                shared.insert(1, timeout=5.0)
        finally:
            slot.__exit__(None, None, None)
        shared.insert(1)
        assert len(shared) == 1

    def test_no_gate_by_default(self, shared):
        assert shared.gate is None
        report = shared.concurrency_stats()
        assert report["admission"] is None
        assert report["lock"]["writers_served"] >= 0

    def test_overload_reports_queue_depth_under_concurrent_writers(self):
        """Shed writes carry an honest snapshot of the congestion.

        With one in-flight slot held and several readers queued, every
        concurrently shed writer must see ``queue_depth`` equal to the
        real number of waiters and ``in_flight`` equal to the saturated
        slot count — the numbers a load balancer would shed on.
        """
        from repro.concurrent import AdmissionGate

        gate = AdmissionGate(max_in_flight=1, max_queued=8, shed_load=True)
        slot = gate.enter("read")
        readers = []
        try:
            # Three readers pile up behind the held slot.
            budget = Deadline.after(10.0)
            for _ in range(3):
                reader = threading.Thread(
                    target=lambda: gate.enter("read", budget).__exit__(
                        None, None, None
                    )
                )
                reader.start()
                readers.append(reader)
            deadline = time.monotonic() + 5.0
            while gate.queue_depth < 3:
                assert time.monotonic() < deadline, "readers never queued"
                time.sleep(0.005)

            # Concurrent writers are all shed, each with the true depth.
            errors = []

            def write():
                try:
                    gate.enter("write")
                except OverloadError as error:
                    errors.append(error)

            writers = [threading.Thread(target=write) for _ in range(4)]
            for writer in writers:
                writer.start()
            for writer in writers:
                writer.join(5.0)
            assert len(errors) == 4
            for error in errors:
                assert error.queue_depth == 3
                assert error.in_flight == 1
            assert gate.stats()["shed_writes"] == 4
        finally:
            slot.__exit__(None, None, None)
            for reader in readers:
                reader.join(5.0)
        assert gate.queue_depth == 0 and gate.in_flight == 0


class TestDeadlineAwareRetries:
    def test_retry_backoff_stops_at_the_deadline(self):
        # Every logical operation faults, so the retry loop would spin
        # (with 50ms backoff) until max_attempts without a budget.
        plan = FaultPlan(seed=1, transient_rate=1.0)
        stack = fault_tolerant_stack(
            MemoryStore(64),
            plan,
            BackoffPolicy(max_attempts=10_000, base_delay=0.05),
        )
        inner = DenseSequentialFile(num_pages=64, d=8, D=40, store=stack)
        shared = ThreadSafeDenseFile(inner)
        start = time.monotonic()
        with pytest.raises(OperationTimeout):
            shared.insert(1, timeout=0.2)
        # The loop gave up near the budget, not after 10k attempts.
        assert time.monotonic() - start < 2.0
        assert stack.deadline_giveups >= 1
        report = shared.concurrency_stats()
        assert report["retries"][0]["deadline_giveups"] >= 1

    def test_unbounded_calls_keep_absorbing_transients(self):
        plan = FaultPlan(seed=2, transient_rate=0.2, max_transients=50)
        stack = fault_tolerant_stack(
            MemoryStore(64), plan, BackoffPolicy(max_attempts=100)
        )
        inner = DenseSequentialFile(num_pages=64, d=8, D=40, store=stack)
        shared = ThreadSafeDenseFile(inner)
        shared.insert_many(range(100))
        assert len(shared) == 100
        assert stack.giveups == 0
        assert stack.deadline_giveups == 0
        assert stack.retries == plan.transients_injected > 0


class TestThreadsafeOpenFlag:
    def test_journaled_threadsafe_round_trip(self, tmp_path):
        from repro import JournaledDenseFile

        path = str(tmp_path / "ts.dsf")
        created = JournaledDenseFile.create(
            path, num_pages=32, d=8, D=40, threadsafe=True
        )
        assert isinstance(created, ThreadSafeDenseFile)
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(
                pool.map(
                    lambda base: [
                        created.insert(base * 100 + i) for i in range(25)
                    ],
                    range(4),
                )
            )
        created.validate()
        created.close()
        reopened = JournaledDenseFile.open(path, threadsafe=True)
        assert isinstance(reopened, ThreadSafeDenseFile)
        assert len(reopened) == 100
        assert reopened.shared_reads is False
        reopened.close()

    def test_persistent_threadsafe_flag(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "ps.dsf")
        created = PersistentDenseFile.create(
            path, num_pages=32, d=8, D=40, threadsafe=True
        )
        assert isinstance(created, ThreadSafeDenseFile)
        created.insert_many(range(10))
        created.close()
        # Default stays the unwrapped facade.
        plain = PersistentDenseFile.open(path)
        assert not isinstance(plain, ThreadSafeDenseFile)
        plain.close()


class TestLifecyclePassThrough:
    def test_flush_close_and_context_manager(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "shared.dsf")
        with ThreadSafeDenseFile(
            PersistentDenseFile.create(path, num_pages=32, d=8, D=40)
        ) as shared:
            shared.insert_many(range(50))
            shared.flush()
            assert not shared.closed
            # The flushed state is already durable before close.
            from repro.storage.ondisk import DiskPagedStore

            # (peek at the OS file through a second handle)
            with DiskPagedStore.open(path) as raw:
                stored = sum(
                    len(raw.read_page(p)) for p in range(1, 33)
                )
            assert stored == 50
        assert shared.closed
        with PersistentDenseFile.open(path) as reopened:
            assert len(reopened) == 50

    def test_flush_close_on_memory_file(self, shared):
        shared.insert_many(range(10))
        shared.flush()  # no-op on the memory backend
        shared.close()  # idem: a memory store holds no OS resources
        assert not shared.closed  # memory backends never report closed
        assert len(shared) == 10

    def test_concurrent_flushes_are_serialized(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "flushy.dsf")
        shared = ThreadSafeDenseFile(
            PersistentDenseFile.create(
                path, num_pages=64, d=8, D=40, cache_pages=4,
                write_through=False,
            )
        )

        def writer(base):
            for offset in range(40):
                shared.insert(base * 1000 + offset)
                if offset % 10 == 0:
                    shared.flush()

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(writer, range(4)))
        shared.validate()
        assert len(shared) == 160
        shared.close()
        with PersistentDenseFile.open(path) as reopened:
            assert len(reopened) == 160
