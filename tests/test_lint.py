"""The linter against its known-bad corpus — and against the live tree.

Every checker is exercised in both directions: each ``bad_*.py``
fixture must produce its directory's rule, and each ``ok_*.py``
negative control must stay clean under the same rule.  On top of that
the live tree itself must lint clean (the CI gate this PR installs),
pragmas must suppress and be counted, JSON output must be stable, and
``--fix`` must be idempotent.
"""

import io
import json
import os
import shutil

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.lint import (
    CHECKER_TYPES,
    DEFAULT_ROOTS,
    Finding,
    SourceFile,
    fix_bare_excepts,
    fresh_checkers,
    rule_table,
    run_lint,
)

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
CORPUS = os.path.join(REPO, "tests", "lint_corpus")


def corpus_root(name):
    return os.path.join(CORPUS, name)


def lint_corpus(name, rule):
    return run_lint([corpus_root(name)], rules=[rule])


# ---------------------------------------------------------------------------
# every rule against its corpus directory
# ---------------------------------------------------------------------------

CASES = [
    # (corpus dir, rule slug, rule id, expected finding count,
    #  substring expected in at least one message)
    ("accounting", "accounting", "LNT001", 7, "bypasses the"),
    ("lock_discipline", "lock-discipline", "LNT002", 2, "outside the lock"),
    ("lock_order", "lock-order", "LNT003", 2, "inversion"),
    ("lock_order_cycle", "lock-order", "LNT003", 1, "cycle"),
    ("errors", "errors", "LNT004", 4, "bare `except:`"),
    ("determinism", "determinism", "LNT005", 6, "wall-clock"),
    ("deadlines", "deadlines", "LNT006", 10, "unbounded"),
    # The interprocedural rules: findings that need the project-wide
    # call graph (cross-function and cross-file paths).
    ("deadlines_interproc", "deadlines", "LNT006", 1, "drops the caller's"),
    ("lock_order_callgraph", "lock-order", "LNT003", 1, "cycle"),
    ("atomicity", "atomicity", "LNT007", 2, "no lock"),
    ("leaks", "leaks", "LNT008", 2, "leak"),
]


@pytest.mark.parametrize(
    "corpus, rule, rule_id, count, needle",
    CASES,
    ids=[case[0] for case in CASES],
)
def test_corpus_triggers_rule(corpus, rule, rule_id, count, needle):
    report = lint_corpus(corpus, rule)
    assert len(report.findings) == count
    assert all(f.rule == rule_id for f in report.findings)
    assert any(needle in f.message for f in report.findings)
    # Findings carry usable locations and hints.
    for finding in report.findings:
        assert finding.line >= 1
        assert finding.hint
        assert os.path.exists(finding.path)


@pytest.mark.parametrize(
    "corpus, rule, rule_id, count, needle",
    CASES,
    ids=[case[0] for case in CASES],
)
def test_negative_controls_stay_clean(corpus, rule, rule_id, count, needle):
    flagged = {os.path.basename(f.path) for f in lint_corpus(corpus, rule).findings}
    assert all(name.startswith("bad_") or name.startswith("half_") for name in flagged)


def test_accounting_does_not_cover_storage_modules():
    # storage/ *implements* the primitives; the rule is scoped to the
    # algorithm layers, so the same call shapes are fine there.
    report = lint_corpus("accounting", "accounting")
    assert not any("not_covered" in f.path for f in report.findings)


def test_cycle_fixture_is_locally_clean_per_half():
    # Each half of the cycle corpus is consistent on its own; only the
    # accumulated graph reveals the ABBA deadlock.
    for half in ("half_ab.py", "half_ba.py"):
        path = os.path.join(corpus_root("lock_order_cycle"), "concurrent", half)
        report = run_lint([path], rules=["lock-order"])
        assert report.clean, report.render()


def test_cycle_finding_names_a_corpus_file():
    report = lint_corpus("lock_order_cycle", "lock-order")
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert "cycle" in finding.message
    assert "half_" in os.path.basename(finding.path)


# ---------------------------------------------------------------------------
# interprocedural rules: what per-file analysis provably cannot see
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "corpus, rule",
    [
        ("atomicity", "atomicity"),
        ("lock_order_callgraph", "lock-order"),
    ],
)
def test_cross_file_fixtures_are_locally_clean_per_half(corpus, rule, tmp_path):
    # Each half of the cross-file fixtures is clean when linted alone —
    # the defect exists only in the composition, which only the
    # whole-project call graph can see.  Together, they must be caught.
    # Each half is copied into a fresh scan root preserving the
    # `concurrent/` layout, so the rule genuinely runs on it.
    root = os.path.join(corpus_root(corpus), "concurrent")
    halves = sorted(
        name for name in os.listdir(root) if name.startswith("half_")
    )
    assert len(halves) >= 2
    for half in halves:
        alone = tmp_path / half[: -len(".py")] / "concurrent"
        alone.mkdir(parents=True)
        shutil.copy(os.path.join(root, half), alone / half)
        report = run_lint([str(alone.parent)], rules=[rule])
        assert report.clean, f"{half} alone:\n" + report.render()
    combined = lint_corpus(corpus, rule)
    flagged = {os.path.basename(f.path) for f in combined.findings}
    assert any(name.startswith("half_") for name in flagged)


def test_atomicity_names_the_full_unguarded_path():
    report = lint_corpus("atomicity", "atomicity")
    split = [f for f in report.findings if "half_entry" in f.path]
    assert len(split) == 1
    # The witness chain crosses the file boundary: entry -> helper ->
    # terminal mutation.
    assert "apply_unguarded" in split[0].message
    assert "engine.insert" in split[0].message


def test_atomicity_guarded_call_cuts_the_path():
    report = lint_corpus("atomicity", "atomicity")
    assert not any("ok_guarded" in f.path for f in report.findings)


def test_callgraph_resolution_is_conservative():
    # Names shared by several project functions (or common stdlib
    # method names) never resolve, so facts cannot flow through an
    # ambiguous edge and poison an innocent caller.
    from repro.lint.callgraph import COMMON_METHOD_NAMES, Project

    source = SourceFile.load(
        os.path.join(
            corpus_root("atomicity"), "concurrent", "bad_one_file.py"
        ),
        "concurrent/bad_one_file.py",
    )
    project = Project([source])
    assert "insert" in COMMON_METHOD_NAMES
    entry = project.functions["concurrent/bad_one_file.py::ThreadSafeShim.insert"]
    resolved = {
        callee.name
        for _, callee in project.callsites(entry)
        if callee is not None
    }
    # self._apply resolves (same class); self._inner.insert must not
    # (an attribute call with a too-common name).
    assert resolved == {"_apply"}


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------


def test_line_above_and_file_pragmas_suppress_and_are_counted():
    report = run_lint([corpus_root("pragmas")], rules=["accounting", "determinism"])
    assert report.clean, report.render()
    assert report.suppressed == 3  # trailing, line-above, file-wide


def test_pragma_only_suppresses_the_named_rule():
    source = SourceFile.load(
        os.path.join(corpus_root("pragmas"), "core", "ok_suppressed.py"),
        "core/ok_suppressed.py",
    )
    assert source.allows("LNT001", "accounting", 8)
    assert not source.allows("LNT004", "errors", 8)  # pragma names accounting
    assert not source.allows("LNT001", "accounting", 17)  # other lines
    assert source.allows("LNT005", "determinism", 17)  # file pragma, any line


# ---------------------------------------------------------------------------
# the live tree is the ultimate negative control
# ---------------------------------------------------------------------------


def test_live_tree_is_clean():
    roots = [os.path.join(REPO, root) for root in ("src/repro", "tools")]
    report = run_lint(roots)
    assert report.clean, "live tree has lint findings:\n" + report.render()
    assert report.files_checked > 50
    assert report.suppressed > 0  # the allowlist is in use and visible


def test_default_roots_cover_package_and_tools():
    assert DEFAULT_ROOTS == ("src/repro", "tools")


# ---------------------------------------------------------------------------
# framework behavior
# ---------------------------------------------------------------------------


def test_rule_table_lists_all_eight_rules():
    table = rule_table()
    assert [rule["id"] for rule in table] == [
        "LNT001", "LNT002", "LNT003", "LNT004", "LNT005", "LNT006",
        "LNT007", "LNT008",
    ]
    assert len({rule["slug"] for rule in table}) == len(CHECKER_TYPES)


def test_fresh_checkers_accepts_ids_and_slugs():
    by_id = fresh_checkers(["LNT003"])
    by_slug = fresh_checkers(["lock-order"])
    assert type(by_id[0]) is type(by_slug[0])
    with pytest.raises(ConfigurationError):
        fresh_checkers(["no-such-rule"])


def test_missing_root_is_a_configuration_error():
    with pytest.raises(ConfigurationError):
        run_lint([os.path.join(REPO, "no", "such", "dir")])


def test_unparsable_file_is_a_configuration_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    with pytest.raises(ConfigurationError):
        run_lint([str(bad)])


def test_findings_sort_stably_and_serialize():
    report = lint_corpus("errors", "errors")
    assert report.findings == sorted(report.findings)
    payload = json.loads(report.to_json())
    assert payload["tool"] == "repro-lint"
    assert payload["files_checked"] == 4
    assert len(payload["findings"]) == 4
    for entry in payload["findings"]:
        assert set(entry) == {"path", "line", "rule", "message", "hint"}
    # Finding is hashable/frozen: report data cannot be mutated downstream.
    assert isinstance(hash(report.findings[0]), int)
    assert isinstance(report.findings[0], Finding)


# ---------------------------------------------------------------------------
# CLI surface (the spelling CI runs)
# ---------------------------------------------------------------------------


def run_cli(*argv):
    out = io.StringIO()
    code = main(["lint", *argv], out=out)
    return code, out.getvalue()


def test_cli_exits_nonzero_on_corpus_and_zero_on_clean_controls():
    code, text = run_cli(corpus_root("errors"))
    assert code == 1
    assert "LNT004" in text
    code, text = run_cli(
        os.path.join(corpus_root("errors"), "core", "ok_taxonomy.py")
    )
    assert code == 0
    assert "0 finding(s)" in text


def test_cli_json_format_is_machine_readable():
    code, text = run_cli(corpus_root("deadlines"), "--format=json")
    assert code == 1
    payload = json.loads(text)
    assert [f["rule"] for f in payload["findings"]] == ["LNT006"] * 10


def test_cli_rules_filter():
    # The deadlines corpus is clean under the unrelated accounting rule.
    code, _ = run_cli(corpus_root("deadlines"), "--rules", "accounting")
    assert code == 0


def test_cli_list_rules():
    code, text = run_cli("--list-rules")
    assert code == 0
    for rule_id in ("LNT001", "LNT006"):
        assert rule_id in text


def test_cli_runs_against_live_tree_by_default():
    code, text = run_cli()
    assert code == 0, text


# ---------------------------------------------------------------------------
# --fix: the mechanical bare-except rewrite
# ---------------------------------------------------------------------------


def test_fix_rewrites_bare_except_and_is_idempotent(tmp_path):
    fixture = os.path.join(corpus_root("errors"), "core", "bad_bare_except.py")
    target = tmp_path / "bad_bare_except.py"
    shutil.copy(fixture, target)

    code, text = run_cli(str(target), "--fix")
    assert "fixed" in text and "1 bare" in text
    fixed = target.read_text()
    assert "except Exception:" in fixed
    assert "\n    except:" not in fixed
    # The rewrite leaves the handler body untouched.
    assert "return None" in fixed
    # The bare-except finding is gone; the over-broad-swallow finding
    # the rewrite leaves behind is the human's decision, not --fix's.
    report = run_lint([str(target)], rules=["errors"])
    messages = [f.message for f in report.findings]
    assert not any("bare `except:`" in message for message in messages)

    # Second pass: nothing left to rewrite, output unchanged.
    code, text = run_cli(str(target), "--fix")
    assert "fixed" not in text
    assert target.read_text() == fixed


def test_fix_preserves_handler_bodies_exactly(tmp_path):
    source_text = (
        "def f(risky):\n"
        "    try:\n"
        "        return risky()\n"
        "    except:  # trailing comment survives\n"
        "        return None\n"
        "    finally:\n"
        "        pass\n"
    )
    target = tmp_path / "nested.py"
    target.write_text(source_text)
    source = SourceFile.load(str(target), "nested.py")
    fixed, rewrites = fix_bare_excepts(source)
    assert rewrites == 1
    assert "except Exception:  # trailing comment survives" in fixed
    before_body = source_text.split("except")[1].split("\n", 1)[1]
    after_body = fixed.split("except Exception")[1].split("\n", 1)[1]
    assert before_body == after_body


def test_fix_does_not_touch_typed_excepts(tmp_path):
    target = tmp_path / "typed.py"
    target.write_text(
        "def f(op):\n"
        "    try:\n"
        "        return op()\n"
        "    except KeyError:\n"
        "        return None\n"
    )
    original = target.read_text()
    run_cli(str(target), "--fix")
    assert target.read_text() == original
