"""Tests for the DenseSequentialFile public facade."""

import pytest

from repro import (
    ConfigurationError,
    Control1Engine,
    Control2Engine,
    DenseSequentialFile,
    MacroBlockControl2Engine,
    Record,
    build_engine,
)
from repro.core.errors import RecordNotFoundError


class TestEngineSelection:
    def test_control2_selected_by_default(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        assert isinstance(dense.engine, Control2Engine)
        assert not isinstance(dense.engine, MacroBlockControl2Engine)

    def test_control1_on_request(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40, algorithm="control1")
        assert isinstance(dense.engine, Control1Engine)

    def test_macro_blocks_when_slack_too_small(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=12)
        assert isinstance(dense.engine, MacroBlockControl2Engine)

    def test_macro_blocks_can_be_refused(self):
        with pytest.raises(ConfigurationError):
            DenseSequentialFile(num_pages=64, d=8, D=12, auto_macroblock=False)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            build_engine(64, 8, 40, algorithm="btree")

    def test_explicit_j_passed_through(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40, j=25)
        assert dense.params.shift_budget == 25


class TestDictionaryApi:
    @pytest.fixture
    def dense(self):
        return DenseSequentialFile(num_pages=64, d=8, D=40)

    def test_insert_search_roundtrip(self, dense):
        dense.insert(10, "ten")
        found = dense.search(10)
        assert found == Record(10, "ten")

    def test_contains_and_len(self, dense):
        dense.insert(1)
        dense.insert(2)
        assert 1 in dense
        assert 3 not in dense
        assert len(dense) == 2

    def test_delete_returns_record(self, dense):
        dense.insert(5, "five")
        assert dense.delete(5) == Record(5, "five")
        assert 5 not in dense

    def test_update_replaces_value_without_moving(self, dense):
        dense.insert(7, "old")
        old = dense.update(7, "new")
        assert old.value == "old"
        assert dense.search(7).value == "new"
        assert len(dense) == 1

    def test_update_missing_key_raises(self, dense):
        with pytest.raises(RecordNotFoundError):
            dense.update(123, "x")

    def test_keys_and_items_in_order(self, dense):
        for key in (5, 1, 3):
            dense.insert(key, key * 10)
        assert list(dense.keys()) == [1, 3, 5]
        assert list(dense.items()) == [(1, 10), (3, 30), (5, 50)]

    def test_string_keys_work(self, dense):
        for word in ("pear", "apple", "fig"):
            dense.insert(word)
        assert list(dense.keys()) == ["apple", "fig", "pear"]


class TestScans:
    @pytest.fixture
    def dense(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.bulk_load(range(0, 200, 2))
        return dense

    def test_range_is_inclusive_and_ordered(self, dense):
        keys = [record.key for record in dense.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_scan_counts_from_start_key(self, dense):
        keys = [record.key for record in dense.scan(99, 5)]
        assert keys == [100, 102, 104, 106, 108]

    def test_empty_range(self, dense):
        assert list(dense.range(1001, 2000)) == []


class TestBulkLoad:
    def test_from_records_constructor(self):
        dense = DenseSequentialFile.from_records(
            [(1, "a"), (2, "b")], num_pages=64, d=8, D=40
        )
        assert len(dense) == 2
        assert dense.search(2).value == "b"

    def test_bulk_load_spreads_uniformly(self):
        dense = DenseSequentialFile(num_pages=8, d=9, D=18, j=3)
        dense.bulk_load(range(40))
        occupancies = dense.occupancies()
        assert sum(occupancies) == 40
        assert max(occupancies) - min(occupancies) <= 1
        dense.validate()

    def test_bulk_load_then_updates(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.bulk_load(range(0, 300, 2))
        for key in range(1, 100, 2):
            dense.insert(key)
        dense.validate()
        assert len(dense) == 200

    def test_bulk_load_requires_empty_file(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert(1)
        with pytest.raises(ValueError):
            dense.bulk_load([2, 3])

    def test_bulk_load_respects_cap(self):
        from repro.core.errors import FileFullError

        dense = DenseSequentialFile(num_pages=16, d=4, D=20)
        with pytest.raises(FileFullError):
            dense.bulk_load(range(65))


class TestStatsSurface:
    def test_stats_count_accesses(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        dense.insert(1)
        assert dense.stats.page_accesses > 0

    def test_validate_passes_on_healthy_file(self):
        dense = DenseSequentialFile(num_pages=64, d=8, D=40)
        for key in range(100):
            dense.insert(key)
        dense.validate()
