"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_key


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "cli.dsf")


@pytest.fixture
def created(path):
    code, _ = run(
        "create", path, "--pages", "64", "--low-density", "8",
        "--capacity", "40",
    )
    assert code == 0
    return path


class TestParseKey:
    def test_int(self):
        assert parse_key("42") == 42
        assert isinstance(parse_key("42"), int)

    def test_float(self):
        assert parse_key("4.5") == 4.5

    def test_string_fallback(self):
        assert parse_key("alpha") == "alpha"


class TestCreate:
    def test_create_reports_geometry(self, path):
        code, output = run(
            "create", path, "--pages", "64", "--low-density", "8",
            "--capacity", "40",
        )
        assert code == 0
        assert "M=64" in output
        assert "cap 512 records" in output

    def test_create_refuses_overwrite_without_force(self, created):
        code, output = run(
            "create", created, "--pages", "64", "--low-density", "8",
            "--capacity", "40",
        )
        assert code == 1
        assert "error" in output

    def test_force_overwrites(self, created):
        code, _ = run(
            "create", created, "--pages", "32", "--low-density", "8",
            "--capacity", "40", "--force",
        )
        assert code == 0

    def test_create_rejects_bad_slack(self, path):
        code, output = run(
            "create", path, "--pages", "64", "--low-density", "8",
            "--capacity", "10",
        )
        assert code == 1
        assert "slack" in output


class TestPutGetDelete:
    def test_roundtrip(self, created):
        assert run("put", created, "7", "seven")[0] == 0
        code, output = run("get", created, "7")
        assert code == 0
        assert output.strip() == "7\tseven"

    def test_get_missing(self, created):
        code, output = run("get", created, "9")
        assert code == 2
        assert "not found" in output

    def test_delete(self, created):
        run("put", created, "7")
        assert run("delete", created, "7")[0] == 0
        assert run("get", created, "7")[0] == 2

    def test_delete_missing_is_an_error(self, created):
        code, output = run("delete", created, "7")
        assert code == 1
        assert "error" in output

    def test_duplicate_put_is_an_error(self, created):
        run("put", created, "7")
        code, output = run("put", created, "7")
        assert code == 1
        assert "error" in output


class TestScans:
    def test_load_then_scan(self, created):
        code, output = run("load", created, "--keys", "0:100:2")
        assert code == 0
        assert "loaded 50" in output
        code, output = run("scan", created, "--start", "10", "--count", "3")
        assert code == 0
        assert [line.split("\t")[0] for line in output.splitlines()] == [
            "10", "12", "14",
        ]

    def test_range(self, created):
        run("load", created, "--keys", "0:20")
        code, output = run("range", created, "--lo", "5", "--hi", "8")
        assert [line.split("\t")[0] for line in output.splitlines()] == [
            "5", "6", "7", "8",
        ]

    def test_delete_range(self, created):
        run("load", created, "--keys", "0:100")
        code, output = run("delete-range", created, "--lo", "10", "--hi", "89")
        assert code == 0
        assert "deleted 80" in output

    def test_bad_keys_spec(self, created):
        code, output = run("load", created, "--keys", "0")
        assert code == 1
        assert "start:stop" in output


class TestInfoVerify:
    def test_info_shows_fill_and_heatmap(self, created):
        run("load", created, "--keys", "0:200")
        code, output = run("info", created)
        assert code == 0
        assert "CONTROL 2" in output
        assert "200 records" in output
        assert "|" in output  # the heatmap strip

    def test_verify_clean(self, created):
        run("load", created, "--keys", "0:50")
        code, output = run("verify", created)
        assert code == 0
        assert "ok" in output

    def test_verify_detects_corruption(self, created):
        run("load", created, "--keys", "0:50")
        from repro.persistent import PersistentDenseFile
        from repro.storage.ondisk import HEADER, SLOT_HEADER

        with PersistentDenseFile.open(created) as dense:
            page = dense.engine.pagefile.nonempty_pages()[0]
            slot = dense._raw.slot_capacity
        offset = HEADER.size + (page - 1) * slot + SLOT_HEADER.size + 1
        with open(created, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\x99")
        code, output = run("verify", created)
        assert code == 3
        assert "CORRUPT" in output

    def test_open_missing_file(self, path):
        code, output = run("info", path)
        assert code == 1


class TestDemo:
    def test_demo_replays_figure_4(self):
        code, output = run("demo")
        assert code == 0
        assert "t8: [15, 9, 0, 0, 4, 9, 15, 11]" in output
        assert "matches Figure 4" in output


class TestExitCodeContract:
    """Every exit code in the documented contract, pinned.

    0 clean, 1 error, 2 not-found, 3 corrupt, 4 bench regression,
    5 degraded read-only, 6 pending journal replay.  Operators script
    against these numbers; changing one is a breaking change.
    """

    def test_constants_match_the_documented_table(self):
        from repro import cli

        assert (
            cli.EXIT_OK,
            cli.EXIT_ERROR,
            cli.EXIT_NOT_FOUND,
            cli.EXIT_CORRUPT,
            cli.EXIT_REGRESSION,
            cli.EXIT_DEGRADED,
            cli.EXIT_PENDING_REPLAY,
        ) == (0, 1, 2, 3, 4, 5, 6)

    def test_docstring_documents_every_code(self):
        from repro import cli

        for line in ("0  clean", "5  ", "6  "):
            assert any(
                line.split()[0] in docline
                for docline in cli.__doc__.splitlines()
            )
        assert "degraded" in cli.__doc__
        assert "pending" in cli.__doc__

    def test_clean_verify_is_0(self, created):
        run("put", created, "1")
        assert run("verify", created)[0] == 0

    def test_usage_error_is_1(self, created):
        assert run("delete", created, "99")[0] == 1

    def test_missing_key_is_2(self, created):
        assert run("get", created, "42")[0] == 2


class TestClusterCli:
    def test_serve_binds_and_shuts_down(self):
        code, output = run(
            "serve", "--seconds", "0.2", "--port", "0", "--shards", "2",
            "--key-space", "100",
        )
        assert code == 0
        assert "shard 0" in output and "shard 1" in output
        assert "serving" in output

    def test_chaos_single_profile_holds(self):
        code, output = run(
            "chaos", "--ops", "24", "--seed", "2", "--profile", "clean",
        )
        assert code == 0
        assert "TRICHOTOMY HELD" in output
        assert "1/1 profiles held" in output

    def test_chaos_writes_a_json_artifact(self, tmp_path):
        artifact = str(tmp_path / "chaos.json")
        code, output = run(
            "chaos", "--ops", "24", "--seed", "2", "--profile", "kill-shard",
            "--out", artifact,
        )
        assert code == 0
        import json

        with open(artifact) as handle:
            payload = json.load(handle)
        assert payload["schema"] == "repro-chaos/1"
        assert payload["ok"] is True
        assert "kill-shard" in payload["profiles"]

    def test_chaos_rejects_unknown_profile(self):
        code, output = run("chaos", "--ops", "10", "--profile", "nonsense")
        assert code == 1
        assert "unknown chaos profile" in output
