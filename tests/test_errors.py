"""Coverage for the exception hierarchy in ``repro.core.errors``.

Every library exception must be catchable both as :class:`ReproError`
(one ``except`` clause for the whole package) and as its stdlib mixin,
so callers using idiomatic ``except KeyError`` / ``except OSError``
code keep working.  The tests raise each error through a real code
path where one exists.
"""

import pytest

from repro import DenseSequentialFile
from repro.core.errors import (
    ConfigurationError,
    DuplicateKeyError,
    FileFullError,
    InvariantViolationError,
    OperationTimeout,
    OverloadError,
    ReadOnlyError,
    RecordNotFoundError,
    ReproError,
    TransientIOError,
)

#: (exception class, stdlib base it must mix in).
HIERARCHY = [
    (ConfigurationError, ValueError),
    (DuplicateKeyError, KeyError),
    (RecordNotFoundError, KeyError),
    (InvariantViolationError, AssertionError),
    (FileFullError, Exception),
    (TransientIOError, OSError),
    (ReadOnlyError, PermissionError),
    (OperationTimeout, TimeoutError),
    (OverloadError, Exception),
]


class TestHierarchy:
    @pytest.mark.parametrize("exc, mixin", HIERARCHY)
    def test_is_repro_error_and_stdlib_mixin(self, exc, mixin):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, mixin)

    @pytest.mark.parametrize("exc, mixin", HIERARCHY)
    def test_catchable_both_ways(self, exc, mixin):
        with pytest.raises(ReproError):
            raise exc("boom")
        with pytest.raises(mixin):
            raise exc("boom")

    @pytest.mark.parametrize("exc, _", HIERARCHY)
    def test_message_round_trips(self, exc, _):
        # OSError subclasses special-case multi-arg construction; the
        # single-message form every raise site uses must stay intact.
        error = exc("what went wrong")
        assert "what went wrong" in str(error)

    def test_operation_timeout_is_a_timeout(self):
        # Generic ``except TimeoutError`` handlers must see deadline
        # expiries from the concurrency front-end.
        assert issubclass(OperationTimeout, TimeoutError)

    def test_overload_error_carries_load_shape(self):
        error = OverloadError("full", queue_depth=7, in_flight=64)
        assert error.queue_depth == 7
        assert error.in_flight == 64

    def test_read_only_is_also_an_os_error(self):
        # PermissionError sits under OSError, so generic I/O handlers
        # see degraded-mode refusals too.
        assert issubclass(ReadOnlyError, OSError)

    def test_storage_errors_join_the_family(self):
        from repro.storage.faults import SimulatedCrash
        from repro.storage.ondisk import (
            CorruptPageError,
            PageOverflowError,
            StorageError,
        )

        for exc in (
            StorageError,
            CorruptPageError,
            PageOverflowError,
            SimulatedCrash,
        ):
            assert issubclass(exc, ReproError)


class TestRaisedFromRealPaths:
    def test_configuration_error(self):
        with pytest.raises(ValueError):
            DenseSequentialFile(num_pages=16, d=10, D=4)

    def test_duplicate_key(self):
        f = DenseSequentialFile(num_pages=16, d=4, D=24)
        f.insert(1)
        with pytest.raises(KeyError):
            f.insert(1)

    def test_record_not_found(self):
        f = DenseSequentialFile(num_pages=16, d=4, D=24)
        with pytest.raises(KeyError):
            f.delete(42)

    def test_file_full(self):
        f = DenseSequentialFile(num_pages=16, d=4, D=24)
        f.insert_many(range(16 * 4))
        with pytest.raises(ReproError):
            f.insert(10_000)

    def test_transient_io_error_from_fault_plan(self):
        from repro.storage.backend import MemoryStore
        from repro.storage.faults import FaultPlan, FaultyStore

        store = FaultyStore(
            MemoryStore(4), FaultPlan(seed=1, transient_rate=1.0)
        )
        with pytest.raises(OSError):
            store.get_page(1)
        with pytest.raises(ReproError):
            store.put_page(1)

    def test_read_only_error_from_degraded_file(self, tmp_path):
        from repro import PersistentDenseFile

        path = str(tmp_path / "ro.dsf")
        with PersistentDenseFile.create(
            path, num_pages=32, d=8, D=40
        ) as f:
            f.insert_many(range(100))
            target = f.engine.pagefile.nonempty_pages()[0]
            offset = f._raw._slot_offset(target)
        with open(path, "r+b") as handle:
            handle.seek(offset + 10)
            handle.write(b"\xde\xad")
        degraded = PersistentDenseFile.open(path, on_corruption="degrade")
        with pytest.raises(PermissionError):
            degraded.insert(10_000)
        with pytest.raises(ReproError):
            degraded.delete(0)
        degraded.close()
