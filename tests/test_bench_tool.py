"""The wall-clock benchmark harness: schema, matrix, regression gate.

Runs use quick sizes throughout — the point here is that the harness
produces valid, complete reports and that the gate trips on an injected
regression, not the absolute numbers.
"""

import copy
import io
import json
import os
import subprocess
import sys

import pytest

from repro import benchmark
from repro.cli import main

TOOL = os.path.join(os.path.dirname(__file__), "..", "tools", "bench.py")


@pytest.fixture(scope="module")
def quick_report():
    return benchmark.run_bench(
        backends=("memory", "buffered"), quick=True, ops=300
    )


def _inflate(report, factor=10.0):
    """A fake 'faster past' baseline every fresh run regresses against."""
    doctored = copy.deepcopy(report)
    for cell in doctored["results"]:
        cell["ops_per_sec"] *= factor
    return doctored


class TestReportSchema:
    def test_quick_report_validates(self, quick_report):
        assert benchmark.validate_report(quick_report) == []

    def test_full_matrix_present(self, quick_report):
        cells = {
            (cell["scenario"], cell["backend"])
            for cell in quick_report["results"]
        }
        scenarios = {scenario for scenario, _ in cells}
        backends = {backend for _, backend in cells}
        assert scenarios == set(benchmark.SCENARIOS)
        assert len(scenarios) >= 4
        assert backends == {"memory", "buffered"}
        assert len(cells) == len(scenarios) * len(backends)

    def test_cells_carry_required_metrics(self, quick_report):
        for cell in quick_report["results"]:
            assert cell["ops_per_sec"] > 0
            assert cell["page_accesses"] > 0
            assert cell["latency_p99_us"] >= cell["latency_p50_us"] >= 0
            assert isinstance(cell["counters"], dict)

    def test_logical_accesses_backend_invariant(self, quick_report):
        """The paper's meter must not depend on the physical stack."""
        by_scenario = {}
        for cell in quick_report["results"]:
            by_scenario.setdefault(cell["scenario"], set()).add(
                cell["page_accesses"]
            )
        for scenario, meters in by_scenario.items():
            assert len(meters) == 1, scenario

    def test_stream_scan_includes_btree_baseline(self, quick_report):
        scans = [
            cell
            for cell in quick_report["results"]
            if cell["scenario"] == "stream_scan"
        ]
        assert scans
        for cell in scans:
            assert "baseline" in cell["extra"]

    def test_validator_rejects_broken_reports(self, quick_report):
        assert benchmark.validate_report({}) != []
        missing = copy.deepcopy(quick_report)
        del missing["results"][0]["ops_per_sec"]
        assert benchmark.validate_report(missing) != []
        wrong_schema = copy.deepcopy(quick_report)
        wrong_schema["schema"] = "other/9"
        assert benchmark.validate_report(wrong_schema) != []


class TestRegressionGate:
    def test_self_comparison_is_clean(self, quick_report):
        assert benchmark.compare_reports(quick_report, quick_report) == []

    def test_injected_regression_detected(self, quick_report):
        regressions = benchmark.compare_reports(
            _inflate(quick_report), quick_report
        )
        assert regressions

    def test_access_regression_detected(self, quick_report):
        doctored = copy.deepcopy(quick_report)
        doctored["results"][0]["page_accesses"] = int(
            doctored["results"][0]["page_accesses"] / 1.5
        )
        regressions = benchmark.compare_reports(doctored, quick_report)
        assert any("page accesses" in line for line in regressions)

    def test_threshold_is_respected(self, quick_report):
        mild = _inflate(quick_report, factor=1.05)
        assert (
            benchmark.compare_reports(mild, quick_report, max_regression=50.0)
            == []
        )


class TestCli:
    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_bench_writes_report(self, tmp_path):
        out_path = str(tmp_path / "bench.json")
        code, output = self._run(
            "bench", "--quick", "--ops", "300", "--out", out_path,
            "--scenario", "bulk_load", "--scenario", "insert_burst",
        )
        assert code == 0
        with open(out_path) as handle:
            report = json.load(handle)
        assert benchmark.validate_report(report) == []
        assert "bulk_load" in output

    def test_bench_baseline_gate_exits_nonzero(self, tmp_path, quick_report):
        baseline_path = str(tmp_path / "inflated.json")
        with open(baseline_path, "w") as handle:
            json.dump(_inflate(quick_report), handle)
        code, output = self._run(
            "bench", "--quick", "--ops", "300", "--out", "-",
            "--scenario", "bulk_load", "--baseline", baseline_path,
        )
        assert code == 4
        assert "REGRESSION" in output

    def test_bench_clean_baseline_passes(self, tmp_path, quick_report):
        baseline_path = str(tmp_path / "self.json")
        with open(baseline_path, "w") as handle:
            json.dump(quick_report, handle)
        code, output = self._run(
            "bench", "--quick", "--ops", "300", "--out", "-",
            "--baseline", baseline_path, "--max-regression", "95",
        )
        assert code == 0
        assert "no regression" in output


class TestStandaloneTool:
    def _tool(self, *argv):
        return subprocess.run(
            [sys.executable, TOOL, *argv],
            capture_output=True,
            text=True,
        )

    def test_validate_mode(self, tmp_path, quick_report):
        report_path = str(tmp_path / "report.json")
        with open(report_path, "w") as handle:
            json.dump(quick_report, handle)
        result = self._tool("--validate", report_path)
        assert result.returncode == 0, result.stdout + result.stderr

        with open(report_path, "w") as handle:
            json.dump({"schema": "nope"}, handle)
        assert self._tool("--validate", report_path).returncode == 2

    def test_compare_mode_flags_regression(self, tmp_path, quick_report):
        old = str(tmp_path / "old.json")
        new = str(tmp_path / "new.json")
        with open(old, "w") as handle:
            json.dump(_inflate(quick_report), handle)
        with open(new, "w") as handle:
            json.dump(quick_report, handle)
        result = self._tool("--compare", old, new)
        assert result.returncode == 4
        assert "REGRESSION" in result.stdout
        assert self._tool("--compare", new, new).returncode == 0
