"""Runs short campaigns of the standalone fuzzer as part of the suite."""

import os
import random
import sys

import pytest

TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


@pytest.fixture(scope="module")
def fuzz():
    sys.path.insert(0, TOOLS)
    try:
        import fuzz as module
    finally:
        sys.path.remove(TOOLS)
    return module


def test_engine_differential_iterations(fuzz):
    rng = random.Random(1234)
    for _ in range(8):
        fuzz.fuzz_engines_once(rng.randrange(1 << 30), commands=60)


def test_crash_injection_iterations(fuzz):
    rng = random.Random(5678)
    for _ in range(8):
        fuzz.fuzz_crash_once(rng.randrange(1 << 30))


def test_thread_fuzz_iterations(fuzz):
    rng = random.Random(9012)
    for _ in range(4):
        fuzz.fuzz_threads_once(rng.randrange(1 << 30))


def test_thread_fuzz_is_registered(fuzz):
    assert fuzz.FUZZERS["threads"] is fuzz.fuzz_threads_once


def test_random_geometry_is_always_legal(fuzz):
    from repro import DensityParams

    rng = random.Random(42)
    for _ in range(50):
        num_pages, d, cap_d = fuzz.random_geometry(rng)
        params = DensityParams(num_pages=num_pages, d=d, D=cap_d)
        assert params.satisfies_slack_condition


def test_engine_builder_covers_every_variant(fuzz):
    from repro import (
        AdaptiveControl2Engine,
        Control1Engine,
        Control2Engine,
        MacroBlockControl2Engine,
    )

    rng = random.Random(7)
    seen = set()
    for _ in range(80):
        engine = fuzz.build_engine(rng, 64, 8, 40)
        seen.add(type(engine))
    assert {
        Control1Engine,
        Control2Engine,
        AdaptiveControl2Engine,
        MacroBlockControl2Engine,
    } <= seen
