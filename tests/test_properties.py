"""Property-based tests (hypothesis) on the core data structures.

These tests drive randomly generated command sequences through the
structures and assert the paper's invariants plus set-semantics
equivalence with a trivial model.  They are the strongest correctness
evidence in the suite: any divergence between CONTROL 2 and a sorted
set, any BALANCE violation, or any counter desync on *any* reachable
state shrinks to a minimal reproducing command list.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro import Control1Engine, Control2Engine, DensityParams
from repro.baselines.btree import BPlusTree
from repro.baselines.pma import PackedMemoryArray
from repro.core.errors import FileFullError
from repro.records import Record
from repro.storage.page import Page
from repro.storage.pagefile import PageFile

KEYS = st.integers(min_value=-(10**6), max_value=10**6)


# ----------------------------------------------------------------------
# Page properties
# ----------------------------------------------------------------------


class TestPageProperties:
    @given(st.lists(KEYS, unique=True))
    def test_page_iterates_in_sorted_order(self, keys):
        page = Page(Record(key) for key in keys)
        assert [record.key for record in page] == sorted(keys)

    @given(st.lists(KEYS, unique=True, min_size=1), st.integers(0, 20))
    def test_take_lowest_plus_remainder_is_original(self, keys, count):
        page = Page(Record(key) for key in keys)
        taken = page.take_lowest(count)
        remaining = page.records()
        assert [r.key for r in taken] + [r.key for r in remaining] == sorted(keys)

    @given(st.lists(KEYS, unique=True, min_size=1), st.integers(0, 20))
    def test_take_highest_plus_remainder_is_original(self, keys, count):
        page = Page(Record(key) for key in keys)
        taken = page.take_highest(count)
        remaining = page.records()
        assert [r.key for r in remaining] + [r.key for r in taken] == sorted(keys)


# ----------------------------------------------------------------------
# PageFile properties
# ----------------------------------------------------------------------


class TestPageFileProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 16), KEYS),
            max_size=60,
        )
    )
    def test_locate_finds_the_owning_page(self, placements):
        """Whatever pages records land on (in key-consistent placements),
        locate() finds the page that holds any stored key."""
        pf = PageFile(16)
        stored = {}
        for page, key in placements:
            if key in stored:
                continue
            # Keep the placement order-consistent: a key may go to a
            # page only if it does not break the global ordering.
            lower_ok = all(
                other_page <= page
                for other_key, other_page in stored.items()
                if other_key < key
            )
            upper_ok = all(
                other_page >= page
                for other_key, other_page in stored.items()
                if other_key > key
            )
            if not (lower_ok and upper_ok):
                continue
            pf.insert_record(page, Record(key))
            stored[key] = page
        for key, page in stored.items():
            assert pf.locate(key) == page

    @given(st.lists(KEYS, unique=True, min_size=2, max_size=100))
    def test_redistribute_preserves_multiset_and_order(self, keys):
        pf = PageFile(8)
        pf.load_page(4, [Record(key) for key in sorted(keys)])
        pf.redistribute(1, 8)
        collected = [r.key for _, records in pf.snapshot() for r in records]
        assert collected == sorted(keys)
        counts = pf.occupancies()
        assert max(counts) - min(counts) <= 1


# ----------------------------------------------------------------------
# Dense-file engines vs a sorted-set model (stateful)
# ----------------------------------------------------------------------


class DenseFileMachine(RuleBasedStateMachine):
    """Drives CONTROL 2 and a plain set with the same commands."""

    engine_class = Control2Engine
    params = DensityParams(num_pages=16, d=4, D=20, j=None)

    def __init__(self):
        super().__init__()
        self.engine = self.engine_class(self.params)
        self.model = set()

    @rule(key=st.integers(0, 300))
    def insert(self, key):
        if key in self.model:
            return
        if len(self.model) >= self.params.max_records:
            with pytest.raises(FileFullError):
                self.engine.insert(key)
            return
        self.engine.insert(key)
        self.model.add(key)

    @rule(key=st.integers(0, 300))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.engine.delete(key)
        self.model.remove(key)

    @invariant()
    def matches_model(self):
        stored = [record.key for record in self.engine.pagefile.iter_all()]
        assert stored == sorted(self.model)

    @invariant()
    def structural_invariants_hold(self):
        self.engine.validate()

    @invariant()
    def never_needed_the_defensive_fallback(self):
        if hasattr(self.engine, "stuck_shifts"):
            assert self.engine.stuck_shifts == 0


class Control1Machine(DenseFileMachine):
    engine_class = Control1Engine


TestControl2StateMachine = DenseFileMachine.TestCase
TestControl1StateMachine = Control1Machine.TestCase


# ----------------------------------------------------------------------
# B+-tree vs model
# ----------------------------------------------------------------------


class BTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(fanout=4, leaf_capacity=4)
        self.model = dict()

    @rule(key=st.integers(0, 200), value=st.integers())
    def insert(self, key, value):
        if key in self.model:
            return
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 200))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.tree.delete(key)
        del self.model[key]

    @rule(key=st.integers(0, 200))
    def search_agrees(self, key):
        found = self.tree.search(key)
        if key in self.model:
            assert found == Record(key, self.model[key])
        else:
            assert found is None

    @invariant()
    def tree_is_structurally_valid(self):
        self.tree.check_invariants()

    @invariant()
    def scan_matches_model(self):
        keys = [r.key for r in self.tree.range_scan(-1, 10**9)]
        assert keys == sorted(self.model)


TestBTreeStateMachine = BTreeMachine.TestCase


# ----------------------------------------------------------------------
# PMA vs model (bounded size to stay under the root threshold)
# ----------------------------------------------------------------------


class PMAMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pma = PackedMemoryArray(num_pages=8, capacity=8)
        self.model = set()

    @rule(key=st.integers(0, 500))
    def insert(self, key):
        if key in self.model:
            return
        try:
            self.pma.insert(key)
        except FileFullError:
            return
        self.model.add(key)

    @rule(key=st.integers(0, 500))
    def delete_if_present(self, key):
        if key not in self.model:
            return
        self.pma.delete(key)
        self.model.remove(key)

    @invariant()
    def matches_model(self):
        stored = [r.key for r in self.pma.pagefile.iter_all()]
        assert stored == sorted(self.model)


TestPMAStateMachine = PMAMachine.TestCase


# ----------------------------------------------------------------------
# Whole-workload properties for CONTROL 2
# ----------------------------------------------------------------------


class TestControl2WorkloadProperties:
    @settings(
        max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
    )
    @given(st.lists(KEYS, unique=True, min_size=1, max_size=120))
    def test_any_unique_key_list_is_maintained(self, keys):
        params = DensityParams(num_pages=32, d=4, D=24)
        engine = Control2Engine(params)
        for key in keys:
            engine.insert(key)
        engine.validate()
        stored = [record.key for record in engine.pagefile.iter_all()]
        assert stored == sorted(keys)

    @settings(
        max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
    )
    @given(
        st.lists(KEYS, unique=True, min_size=4, max_size=100),
        st.data(),
    )
    def test_insert_then_delete_subset(self, keys, data):
        params = DensityParams(num_pages=32, d=4, D=24)
        engine = Control2Engine(params)
        for key in keys:
            engine.insert(key)
        victims = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        for key in victims:
            engine.delete(key)
        engine.validate()
        stored = [record.key for record in engine.pagefile.iter_all()]
        assert stored == sorted(set(keys) - set(victims))

    @settings(
        max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
    )
    @given(st.lists(KEYS, unique=True, min_size=1, max_size=100))
    def test_cost_bound_holds_on_arbitrary_inputs(self, keys):
        params = DensityParams(num_pages=32, d=4, D=24)
        engine = Control2Engine(params)
        log = engine.enable_operation_log()
        for key in keys:
            engine.insert(key)
        bound = 3 * params.shift_budget + 2 * params.log_m + 4
        assert log.worst_case_accesses <= bound
