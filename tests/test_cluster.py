"""Tests for the fault-tolerant sharded cluster front-end.

Covers the stack bottom-up: shard maps, the wire protocol, circuit
breakers, the sharded store's partial-failure degradation, the
client/server RPC path (in-process and over real TCP sockets),
idempotent retried writes, seeded network faults, and the chaos
harness's success / typed-failure / provably-not-applied trichotomy.
"""

import threading
import time

import pytest

from repro.cluster import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    ChaosChannel,
    ChaosConfig,
    CircuitBreaker,
    ClusterClient,
    ClusterServer,
    IdempotencyTable,
    LocalChannel,
    NetFaultPlan,
    ShardMap,
    ShardedDenseFile,
    run_chaos,
    run_sweep,
)
from repro.cluster import wire
from repro.cluster.chaos import SWEEP_PROFILES
from repro.concurrent.retry import RetryPolicy
from repro.core.errors import (
    CircuitOpenError,
    ConfigurationError,
    DuplicateKeyError,
    OperationTimeout,
    RecordNotFoundError,
    ShardUnavailableError,
    TransientNetworkError,
    WireProtocolError,
)


class FakeClock:
    def __init__(self):
        self._t = 1000.0

    def __call__(self):
        return self._t

    def advance(self, seconds):
        self._t += seconds


# ----------------------------------------------------------------------
# shard maps
# ----------------------------------------------------------------------


class TestShardMap:
    def test_uniform_partitions_cover_the_key_space(self):
        shard_map = ShardMap.uniform(4, 1000)
        assert shard_map.num_shards == 4
        ranges = shard_map.ranges()
        assert ranges[0].lo == 0 and ranges[-1].hi == 1000
        # Interior boundaries chain: each hi is the next lo.
        for left, right in zip(ranges, ranges[1:]):
            assert left.hi == right.lo

    def test_routing_is_total_and_ordered(self):
        shard_map = ShardMap.uniform(4, 1000)
        owners = [shard_map.shard_for(key) for key in range(0, 1000, 50)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2, 3}
        # Out-of-envelope keys still route (first/last shards absorb).
        assert shard_map.shard_for(-5) == 0
        assert shard_map.shard_for(10**9) == 3

    def test_boundary_key_belongs_to_the_right_shard(self):
        shard_map = ShardMap.uniform(4, 1000)
        cut = shard_map.range_of(1).lo
        # Half-open [lo, hi): the cut key itself lives in shard 1.
        assert shard_map.shard_for(cut) == 1
        assert shard_map.shard_for(cut - 1) == 0

    def test_shards_for_range_is_minimal(self):
        shard_map = ShardMap.uniform(4, 1000)
        assert shard_map.shards_for_range(0, 100) == [0]
        assert shard_map.shards_for_range(200, 600) == [0, 1, 2]
        assert shard_map.shards_for_range(0, 999) == [0, 1, 2, 3]

    def test_wire_round_trip(self):
        shard_map = ShardMap.uniform(5, 777)
        clone = ShardMap.from_wire(shard_map.to_wire())
        assert clone.num_shards == 5
        for key in (0, 100, 399, 776, -3, 10**6):
            assert clone.shard_for(key) == shard_map.shard_for(key)

    def test_single_shard_map_has_no_cuts(self):
        shard_map = ShardMap.uniform(1, 100)
        assert shard_map.num_shards == 1
        assert shard_map.shard_for(-1) == 0
        assert shard_map.shard_for(10**9) == 0

    def test_key_ranges_describe_ownership(self):
        shard_map = ShardMap.uniform(4, 1000)
        ((lo, hi),) = shard_map.key_ranges([1])
        assert shard_map.shard_for(lo) == 1
        assert shard_map.shard_for(hi - 1) == 1
        assert shard_map.shard_for(hi) == 2


# ----------------------------------------------------------------------
# the wire protocol
# ----------------------------------------------------------------------


class TestWire:
    def test_round_trip(self):
        body = wire.request("insert", "c0:r1", {"key": 7}, token="c0:t1",
                            budget=0.25)
        assert wire.decode_bytes(wire.encode_frame(body)) == body

    def test_corrupted_body_fails_crc(self):
        frame = bytearray(wire.encode_frame({"op": "ping", "id": "x"}))
        frame[-1] ^= 0xFF
        with pytest.raises(WireProtocolError, match="CRC"):
            wire.decode_bytes(bytes(frame))

    def test_bad_magic_is_refused(self):
        frame = b"XX" + wire.encode_frame({"op": "ping", "id": "x"})[2:]
        with pytest.raises(WireProtocolError, match="magic"):
            wire.decode_bytes(frame)

    def test_truncated_frame_is_detected(self):
        frame = wire.encode_frame({"op": "ping", "id": "x"})
        with pytest.raises(WireProtocolError, match="mid-"):
            wire.decode_bytes(frame[: len(frame) // 2])

    def test_oversized_length_refused_before_allocation(self):
        header = wire.HEADER.pack(wire.MAGIC, wire.MAX_FRAME + 1, 0)
        with pytest.raises(WireProtocolError, match="cap"):
            wire.decode_bytes(header)

    def test_correlation_mismatch_is_typed(self):
        response = wire.ok_response("other-request", None)
        with pytest.raises(WireProtocolError, match="correlation"):
            wire.check_correlation(response, "my-request")
        wire.check_correlation(wire.ok_response("mine", 1), "mine")


# ----------------------------------------------------------------------
# circuit breakers
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(shard_id=2, failure_threshold=3,
                                 reset_timeout=1.0, clock=clock)
        assert breaker.state == CLOSED
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.shard_id == 2
        assert 0.0 < info.value.retry_after <= 1.0

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # a second concurrent call is rejected

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["closes"] == 1

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_release_reopens_a_half_open_probe_without_bias(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()  # the probe is admitted...
        breaker.release()  # ...but ends inconclusively (connection died)
        # Neither closed (nothing proved the shard healthy) nor wedged:
        # another full cooldown, failure streak untouched.
        assert breaker.state == OPEN
        assert breaker.stats()["consecutive_failures"] == 1
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(1.5)
        breaker.allow()  # a fresh probe slot exists: not wedged

    def test_release_in_closed_is_a_no_op(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.allow()
        breaker.release()
        stats = breaker.stats()
        assert stats["state"] == CLOSED
        # A connection-scoped fault must not reset the failure streak
        # the way record_success() would.
        assert stats["consecutive_failures"] == 1
        assert stats["releases"] == 1


# ----------------------------------------------------------------------
# the sharded store: routing + partial-failure degradation
# ----------------------------------------------------------------------


@pytest.fixture
def store():
    sharded = ShardedDenseFile.build(num_shards=4, key_space=1000,
                                     capacity_hint=512)
    yield sharded
    sharded.close()


@pytest.fixture
def populated(store):
    for key in range(0, 1000, 10):
        store.insert(key, f"v{key}")
    return store


class TestShardedStore:
    def test_operations_route_across_all_shards(self, populated):
        assert len(populated) == 100
        for key in (0, 250, 500, 990):
            assert populated.search(key).key == key
        sizes = populated.stats()["records_per_shard"]
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == 100

    def test_scan_stitches_shards_in_key_order(self, populated):
        result = populated.scan(240, 10)
        assert result.complete and not result.partial
        assert [record.key for record in result] == list(range(240, 340, 10))

    def test_range_spans_shard_boundaries(self, populated):
        result = populated.range(200, 600)
        assert result.complete
        keys = [record.key for record in result]
        assert keys == sorted(keys)
        assert keys[0] == 200 and keys[-1] == 600

    def test_down_shard_rejects_writes_with_its_key_ranges(self, populated):
        populated.mark_down(1)
        victim = populated.shard_map.range_of(1)
        with pytest.raises(ShardUnavailableError) as info:
            populated.insert(victim.lo, "nope")
        assert info.value.shard_ids == (1,)
        assert info.value.mode == "down"
        ((lo, hi),) = info.value.key_ranges
        assert lo == victim.lo and hi == victim.hi

    def test_surviving_shards_keep_serving(self, populated):
        populated.mark_down(1)
        dead = populated.shard_map.range_of(1)
        for key in (0, 990):
            assert populated.search(key).key == key
        populated.insert(1, "still-writable")
        assert populated.search(1).value == "still-writable"
        # The dead shard's reads fail fast and typed.
        with pytest.raises(ShardUnavailableError):
            populated.search(dead.lo)

    def test_scan_through_a_hole_reports_partial(self, populated):
        populated.mark_down(1)
        dead = populated.shard_map.range_of(1)
        result = populated.scan(0, 100)
        assert result.partial and not result.complete
        assert result.unavailable == ((dead.lo, dead.hi),)
        # Every returned record is from a live shard.
        assert all(
            not (dead.lo <= record.key < dead.hi) for record in result
        )

    def test_count_range_refuses_rather_than_undercounts(self, populated):
        populated.mark_down(1)
        dead = populated.shard_map.range_of(1)
        with pytest.raises(ShardUnavailableError):
            populated.count_range(dead.lo - 5, dead.lo + 5)
        # A range that avoids the hole still counts exactly.
        assert populated.count_range(0, 99) == 10

    def test_degraded_shard_serves_reads_rejects_writes(self, populated):
        populated.mark_degraded(2)
        key = populated.shard_map.range_of(2).lo
        probe = ((key // 10) + 1) * 10  # a populated key inside shard 2
        assert populated.search(probe).key == probe
        with pytest.raises(ShardUnavailableError) as info:
            populated.insert(key + 3, "nope")
        assert info.value.mode == "degraded"

    def test_revive_restores_service(self, populated):
        populated.mark_down(3)
        populated.revive(3)
        key = populated.shard_map.range_of(3).lo
        populated.insert(key + 1, "back")
        assert populated.search(key + 1).value == "back"
        health = populated.health()[3]
        assert health["state"] == "up"
        assert health["downs"] == 1 and health["revives"] == 1

    def test_len_skips_down_shards(self, populated):
        before = len(populated)
        populated.mark_down(0)
        assert len(populated) < before
        populated.revive(0)
        assert len(populated) == before

    def test_duplicate_and_missing_keys_stay_typed(self, populated):
        with pytest.raises(DuplicateKeyError):
            populated.insert(0, "again")
        with pytest.raises(RecordNotFoundError):
            populated.delete(5)

    def test_build_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            ShardedDenseFile.build(num_shards=0, key_space=100)


# ----------------------------------------------------------------------
# idempotency table
# ----------------------------------------------------------------------


class TestIdempotencyTable:
    def test_records_and_replays(self):
        table = IdempotencyTable()
        assert table.get("c0:t0") is None
        table.put("c0:t0", {"ok": True})
        assert table.get("c0:t0") == {"ok": True}
        assert table.hits == 1

    def test_peek_does_not_count_a_hit(self):
        table = IdempotencyTable()
        table.put("t", {"ok": True})
        assert table.peek("t") == {"ok": True}
        assert table.hits == 0

    def test_bounded_capacity_evicts_oldest(self):
        table = IdempotencyTable(capacity=2)
        table.put("a", {"n": 1})
        table.put("b", {"n": 2})
        table.put("c", {"n": 3})
        assert len(table) == 2
        assert table.peek("a") is None
        assert table.peek("c") == {"n": 3}
        assert table.evictions == 1

    def test_reserve_owns_then_waits_then_replays(self):
        table = IdempotencyTable()
        claim, payload = table.reserve("t")
        assert claim == "execute" and payload is None
        # A duplicate arriving while the first attempt executes must
        # wait, never run the op a second time.
        dup, event = table.reserve("t")
        assert dup == "wait" and not event.is_set()
        table.finish("t", {"ok": True})
        assert event.is_set()
        assert table.reserve("t") == ("replay", {"ok": True})
        assert table.waits == 1

    def test_finish_without_outcome_frees_the_token(self):
        table = IdempotencyTable()
        claim, _ = table.reserve("t")
        assert claim == "execute"
        table.finish("t", None)  # the attempt ended not-applied
        assert table.peek("t") is None
        claim, _ = table.reserve("t")
        assert claim == "execute"  # a retry may still execute


# ----------------------------------------------------------------------
# client <-> server over the in-process channel
# ----------------------------------------------------------------------


@pytest.fixture
def cluster():
    sharded = ShardedDenseFile.build(num_shards=3, key_space=300,
                                     capacity_hint=256)
    server = ClusterServer(sharded)
    client = ClusterClient(LocalChannel(server.handle_frame),
                           retry_policy=RetryPolicy(max_attempts=3))
    yield sharded, server, client
    client.close()
    sharded.close()


class TestClientServer:
    def test_full_operation_surface(self, cluster):
        _, _, client = cluster
        assert client.ping() is True
        for key in range(0, 300, 20):
            client.insert(key, f"v{key}")
        assert len(client) == 15
        assert client.search(40).value == "v40"
        assert client.search(41) is None
        removed = client.delete(40)
        assert removed.key == 40 and removed.value == "v40"
        assert client.search(40) is None
        scan = client.scan(0, 5)
        assert [record.key for record in scan] == [0, 20, 60, 80, 100]
        window = client.range(100, 200)
        assert [record.key for record in window] == [100, 120, 140, 160, 180, 200]
        assert client.count_range(0, 299) == 14

    def test_hello_primes_the_shard_map(self, cluster):
        sharded, _, client = cluster
        assert client.shard_map.num_shards == 3
        for key in (0, 150, 299):
            assert client.shard_map.shard_for(key) == sharded.shard_map.shard_for(key)

    def test_typed_errors_cross_the_wire(self, cluster):
        _, _, client = cluster
        client.insert(7)
        with pytest.raises(DuplicateKeyError):
            client.insert(7)
        with pytest.raises(RecordNotFoundError):
            client.delete(8)

    def test_shard_unavailable_detail_survives_serialization(self, cluster):
        sharded, _, client = cluster
        client.kill_shard(1)
        victim = sharded.shard_map.range_of(1)
        with pytest.raises(ShardUnavailableError) as info:
            client.insert(victim.lo)
        assert info.value.shard_ids == (1,)
        assert info.value.key_ranges == ((victim.lo, victim.hi),)
        assert info.value.mode == "down"

    def test_partial_scan_markers_cross_the_wire(self, cluster):
        sharded, _, client = cluster
        for key in range(0, 300, 20):
            client.insert(key)
        client.kill_shard(1)
        dead = sharded.shard_map.range_of(1)
        result = client.scan(0, 15)
        assert result.partial
        assert result.unavailable == ((dead.lo, dead.hi),)

    def test_kill_and_revive_round_trip(self, cluster):
        _, _, client = cluster
        assert client.kill_shard(2) == "down"
        assert client.degrade_shard(0) == "degraded"
        states = [entry["state"] for entry in client.health()]
        assert states == ["degraded", "up", "down"]
        assert client.revive_shard(2) == "up"
        assert client.revive_shard(0) == "up"

    def test_retried_write_applies_at_most_once(self, cluster):
        sharded, server, _ = cluster
        body = wire.request("insert", "c9:r1", {"key": 42, "value": "x"},
                            token="c9:t1")
        first = server.handle_body(body)
        assert first["ok"]
        # The retry carries the same token under a new correlation id.
        retry = wire.request("insert", "c9:r2", {"key": 42, "value": "x"},
                             token="c9:t1")
        second = server.handle_body(retry)
        assert second["ok"] and second["replayed"]
        assert second["id"] == "c9:r2"
        assert sharded.search(42).value == "x"
        assert server.dedup_replays == 1

    def test_domain_errors_are_definite_outcomes(self, cluster):
        _, server, client = cluster
        client.insert(5)
        body = wire.request("insert", "r1", {"key": 5}, token="dup:t1")
        first = server.handle_body(body)
        assert first["error"] == "DuplicateKeyError"
        # Replayed, not re-executed: same typed error comes back.
        second = server.handle_body(
            wire.request("insert", "r2", {"key": 5}, token="dup:t1")
        )
        assert second["error"] == "DuplicateKeyError"
        assert second["replayed"]

    def test_not_applied_failures_are_never_recorded(self, cluster):
        _, server, client = cluster
        client.kill_shard(0)
        body = wire.request("insert", "r1", {"key": 0}, token="na:t1")
        response = server.handle_body(body)
        assert response["error"] == "ShardUnavailableError"
        # Absence from the table is the proof of non-application — and
        # leaves the token free to succeed after the shard revives.
        assert server.tokens.peek("na:t1") is None
        client.revive_shard(0)
        retry = server.handle_body(
            wire.request("insert", "r2", {"key": 0}, token="na:t1")
        )
        assert retry["ok"] and "replayed" not in retry

    def test_transient_faults_are_absorbed_by_retry(self, cluster):
        _, server, _ = cluster

        class FlakyChannel:
            def __init__(self, inner, failures):
                self.inner = inner
                self.failures = failures

            def request(self, frame, timeout=None):
                if self.failures > 0:
                    self.failures -= 1
                    raise TransientNetworkError("injected blip")
                return self.inner.request(frame, timeout)

            def close(self):
                self.inner.close()

        client = ClusterClient(
            FlakyChannel(LocalChannel(server.handle_frame), failures=2),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        client.insert(77, "made-it")
        assert client.search(77).value == "made-it"
        assert client.client_stats()["retries"] == 2

    def test_budget_spent_surfaces_as_operation_timeout(self, cluster):
        _, server, _ = cluster

        class BlackHole:
            def request(self, frame, timeout=None):
                raise TransientNetworkError("dropped")

            def close(self):
                pass

        slept = []
        client = ClusterClient(
            BlackHole(),
            retry_policy=RetryPolicy(max_attempts=10, base_delay=1.0),
            sleep=slept.append,
        )
        client.prime(ShardMap.uniform(3, 300))
        with pytest.raises(OperationTimeout):
            client.search(1, timeout=0.2)
        # The 1s backoff would overrun the 0.2s budget: fail, don't sleep.
        assert slept == []

    def test_breaker_opens_after_repeated_shard_failures(self, cluster):
        sharded, server, client = cluster
        client.kill_shard(1)
        victim = sharded.shard_map.range_of(1).lo
        for _ in range(5):
            with pytest.raises(ShardUnavailableError):
                client.search(victim)
        # The breaker now fails fast locally without touching the wire.
        before = server.requests
        with pytest.raises(CircuitOpenError) as info:
            client.search(victim)
        assert server.requests == before
        assert info.value.shard_id == 1
        # Other shards' breakers stay closed and keep serving.
        client.insert(0, "fine")
        assert client.search(0).value == "fine"

    def test_probe_domain_error_closes_instead_of_wedging(self):
        # Regression: a half-open probe whose outcome is a domain error
        # (the shard ANSWERED, just unhappily) must report an outcome
        # to the breaker, or the probe slot leaks and every later call
        # to a recovered shard raises CircuitOpenError forever.
        clock = FakeClock()
        sharded = ShardedDenseFile.build(num_shards=2, key_space=100)
        server = ClusterServer(sharded)
        client = ClusterClient(
            LocalChannel(server.handle_frame),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=1, breaker_reset=1.0, clock=clock,
        )
        try:
            client.prime(sharded.shard_map)
            sharded.mark_down(0)
            with pytest.raises(ShardUnavailableError):
                client.delete(0)
            assert client.breaker(0).state == OPEN
            sharded.revive(0)
            clock.advance(1.5)
            # The probe is a delete of a missing key: a definite answer
            # from a healthy shard, so the breaker closes.
            with pytest.raises(RecordNotFoundError):
                client.delete(0)
            assert client.breaker(0).state == CLOSED
            client.insert(0, "ok")  # would be CircuitOpenError if wedged
            assert client.search(0).value == "ok"
        finally:
            client.close()
            sharded.close()

    def test_probe_network_error_reopens_instead_of_closing(self):
        # Regression: a half-open probe that dies with a connection
        # reset proved nothing — it must NOT close the circuit and
        # resume full traffic, and must not reset the failure streak.
        clock = FakeClock()
        sharded = ShardedDenseFile.build(num_shards=2, key_space=100)
        server = ClusterServer(sharded)

        class Flaky:
            def __init__(self, inner):
                self.inner = inner
                self.fail_next = False

            def request(self, frame, timeout=None):
                if self.fail_next:
                    self.fail_next = False
                    raise TransientNetworkError("probe reset")
                return self.inner.request(frame, timeout)

            def close(self):
                self.inner.close()

        channel = Flaky(LocalChannel(server.handle_frame))
        client = ClusterClient(
            channel,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_threshold=1, breaker_reset=1.0, clock=clock,
        )
        try:
            client.prime(sharded.shard_map)
            sharded.mark_down(0)
            with pytest.raises(ShardUnavailableError):
                client.search(0)
            assert client.breaker(0).state == OPEN
            clock.advance(1.5)
            channel.fail_next = True
            with pytest.raises(TransientNetworkError):
                client.search(0)
            breaker = client.breaker(0)
            assert breaker.state == OPEN
            assert breaker.stats()["consecutive_failures"] == 1
            with pytest.raises(CircuitOpenError):
                client.search(0)
        finally:
            client.close()
            sharded.close()

    def test_spent_client_budget_never_touches_the_breaker(self, cluster):
        # Regression: a budget that expired before any network I/O is
        # the CLIENT's timeout; feeding it to record_failure() could
        # trip a healthy shard's breaker without ever contacting it.
        _, server, client = cluster
        shard_id = client.shard_map.shard_for(1)
        before = server.requests
        with pytest.raises(OperationTimeout):
            client.search(1, timeout=0.0)
        stats = client.breaker(shard_id).stats()
        assert stats["state"] == CLOSED
        assert stats["consecutive_failures"] == 0
        assert server.requests == before  # the wire was never touched

    def test_malformed_requests_get_typed_responses(self, cluster):
        # Regression: a missing args key or a non-numeric budget used
        # to escape handle_body as KeyError/TypeError and kill the
        # connection thread with no response at all.
        _, server, _ = cluster
        response = server.handle_body({"op": "insert", "id": "r1"})
        assert response["ok"] is False
        assert response["error"] == "WireProtocolError"
        assert response["id"] == "r1"
        response = server.handle_body(
            {"op": "ping", "id": "r2", "budget": "soon"}
        )
        assert response["error"] == "WireProtocolError"
        response = server.handle_body({"op": "search", "id": "r3", "args": [1]})
        assert response["error"] == "WireProtocolError"
        # A malformed mutating request must not burn its token either.
        response = server.handle_body(
            {"op": "insert", "id": "r4", "token": "m:t1"}
        )
        assert response["error"] == "WireProtocolError"
        assert server.tokens.peek("m:t1") is None
        # The dispatcher survived all of it.
        assert server.handle_body({"op": "ping", "id": "r5"})["result"] == "pong"

    def test_duplicate_token_waits_for_in_flight_first_attempt(self):
        # Regression: check-then-execute on the idempotency table let a
        # retry racing a still-executing first attempt double-execute —
        # for a delete, the retry then recorded RecordNotFoundError as
        # the token's definite outcome even though the delete applied.
        sharded = ShardedDenseFile.build(num_shards=1, key_space=100)
        server = ClusterServer(sharded)
        sharded.insert(7, "x")
        entered = threading.Event()
        release = threading.Event()
        original = server._dispatch

        def slow_dispatch(op, args, deadline):
            if op == "delete":
                entered.set()
                assert release.wait(5.0)
            return original(op, args, deadline)

        server._dispatch = slow_dispatch
        results = {}

        def run(name, request_id):
            results[name] = server.handle_body(
                wire.request("delete", request_id, {"key": 7},
                             token="race:t1")
            )

        try:
            first = threading.Thread(target=run, args=("first", "r1"))
            first.start()
            assert entered.wait(5.0)
            # The retry arrives while the first attempt is mid-execute.
            second = threading.Thread(target=run, args=("second", "r2"))
            second.start()
            time.sleep(0.05)  # let the retry reach the reservation
            release.set()
            first.join(5.0)
            second.join(5.0)
        finally:
            release.set()
            sharded.close()
        assert results["first"]["ok"]
        assert results["first"]["result"] == [7, "x"]
        # The retry replayed the applied delete — it did not re-execute
        # and fabricate a RecordNotFoundError.
        assert results["second"]["ok"]
        assert results["second"]["replayed"]
        assert results["second"]["id"] == "r2"
        assert server.dedup_replays == 1


# ----------------------------------------------------------------------
# client <-> server over real TCP
# ----------------------------------------------------------------------


class TestTcpTransport:
    def test_end_to_end_over_sockets(self):
        sharded = ShardedDenseFile.build(num_shards=3, key_space=300)
        server = ClusterServer(sharded)
        host, port = server.start()
        try:
            with ClusterClient.connect(host, port) as client:
                assert client.ping() is True
                for key in range(0, 300, 30):
                    client.insert(key, f"v{key}")
                assert len(client) == 10
                assert client.search(90).value == "v90"
                assert client.delete(90).key == 90
                # Admin ops and degradation work over the wire too.
                client.kill_shard(1)
                dead = client.shard_map.range_of(1)
                with pytest.raises(ShardUnavailableError):
                    client.insert(dead.lo)
                result = client.scan(0, 10)
                assert result.partial
        finally:
            server.stop()
            sharded.close()

    def test_two_clients_get_distinct_identities(self):
        sharded = ShardedDenseFile.build(num_shards=2, key_space=100)
        server = ClusterServer(sharded)
        host, port = server.start()
        try:
            with ClusterClient.connect(host, port) as a, \
                    ClusterClient.connect(host, port) as b:
                assert a.client_id != b.client_id
                a.insert(1)
                b.insert(2)
                assert a.search(2).key == 2
                assert b.search(1).key == 1
        finally:
            server.stop()
            sharded.close()

    def test_connection_refused_is_transient(self):
        # Nothing listens on the ephemeral port the kernel just released.
        sharded = ShardedDenseFile.build(num_shards=1, key_space=10)
        server = ClusterServer(sharded)
        host, port = server.start()
        server.stop()
        sharded.close()
        client = ClusterClient(
            __import__("repro.cluster.transport", fromlist=["SocketChannel"])
            .SocketChannel(host, port, connect_timeout=0.5),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        client.prime(ShardMap.uniform(1, 10))
        with pytest.raises(TransientNetworkError):
            client.ping()


# ----------------------------------------------------------------------
# seeded network faults
# ----------------------------------------------------------------------


class TestNetFaults:
    def test_plan_replays_byte_identically(self):
        plan_a = NetFaultPlan(seed=9, drop_rate=0.3, delay_rate=0.3)
        plan_b = NetFaultPlan(seed=9, drop_rate=0.3, delay_rate=0.3)
        draws_a = [plan_a.draw() for _ in range(50)]
        assert draws_a == [plan_b.draw() for _ in range(50)]
        assert any(kind is not None for kind, _ in draws_a)

    def test_disabled_plan_injects_nothing(self):
        plan = NetFaultPlan(seed=1)
        assert not plan.enabled
        assert all(plan.draw() == (None, 0.0) for _ in range(20))

    def test_drop_loses_the_request_entirely(self, cluster_pair):
        server, client = cluster_pair(NetFaultPlan(seed=0, drop_rate=1.0,
                                                   max_faults=1))
        token = client.new_token()
        with pytest.raises(TransientNetworkError):
            client.insert_with_token(3, token=token, timeout=0.5)
        # The request never reached the server: provably not applied.
        assert server.tokens.peek(token) is None
        assert server.store.search(3) is None

    def test_drop_after_delivers_then_loses_the_response(self, cluster_pair):
        server, client = cluster_pair(NetFaultPlan(seed=0, drop_after_rate=1.0,
                                                   max_faults=1))
        token = client.new_token()
        with pytest.raises(TransientNetworkError):
            client.insert_with_token(3, token=token, timeout=0.5)
        # The write WAS applied; the idempotency table is the witness.
        assert server.tokens.peek(token) is not None
        assert server.store.search(3).key == 3

    def test_retry_rides_through_drop_after_exactly_once(self, cluster_pair):
        server, client = cluster_pair(
            NetFaultPlan(seed=0, drop_after_rate=1.0, max_faults=1),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        client.insert(3, "once")
        assert server.store.search(3).value == "once"
        assert server.dedup_replays == 1  # the retry was replayed, not re-run

    def test_truncated_response_is_a_wire_error_then_retried(self, cluster_pair):
        server, client = cluster_pair(
            NetFaultPlan(seed=0, truncate_rate=1.0, max_faults=1),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        client.insert(5)
        assert server.store.search(5).key == 5

    @pytest.fixture
    def cluster_pair(self):
        built = []

        def factory(plan, retry_policy=None):
            sharded = ShardedDenseFile.build(num_shards=2, key_space=100)
            server = ClusterServer(sharded)
            channel = ChaosChannel(LocalChannel(server.handle_frame), plan)
            client = ClusterClient(
                channel,
                retry_policy=retry_policy or RetryPolicy(max_attempts=1),
            )
            client.prime(sharded.shard_map)
            built.append((sharded, client))
            return server, client

        yield factory
        for sharded, client in built:
            client.close()
            sharded.close()


# ----------------------------------------------------------------------
# the chaos harness
# ----------------------------------------------------------------------


class TestChaosHarness:
    def test_clean_run_holds_the_trichotomy(self):
        report = run_chaos(ChaosConfig(seed=11, total_ops=60, threads=2))
        assert report.ok, report.summary()
        # The schedule rounds ops up to fill its batches.
        assert report.ops_issued >= 60
        assert report.outcomes.get("ok", 0) > 0

    def test_chaos_runs_are_deterministic(self):
        config = dict(seed=13, total_ops=40, threads=2, drop_rate=0.1,
                      drop_after_rate=0.1, delay_rate=0.05)
        a = run_chaos(ChaosConfig(**config))
        b = run_chaos(ChaosConfig(**config))
        assert a.digest == b.digest
        assert a.outcomes == b.outcomes
        assert a.faults == b.faults

    def test_storm_resolves_every_ambiguous_write(self):
        report = run_chaos(ChaosConfig(
            seed=5, total_ops=80, threads=3,
            drop_rate=0.08, drop_after_rate=0.08, delay_rate=0.08,
            duplicate_rate=0.08, reorder_rate=0.08, truncate_rate=0.08,
        ))
        assert report.ok, report.summary()
        assert report.ambiguous_writes == (
            report.resolved_applied + report.proven_not_applied
        )

    def test_kill_shard_mid_run_degrades_gracefully(self):
        report = run_chaos(ChaosConfig(
            seed=7, total_ops=80, threads=3, kill_at=2, kill_shard_id=1,
        ))
        assert report.ok, report.summary()
        # Surviving ranges kept serving after the kill.
        assert report.post_kill_successes > 0

    def test_sweep_covers_every_fault_family(self):
        names = [name for name, _ in SWEEP_PROFILES]
        assert "storm" in names and "kill-shard" in names
        results = run_sweep(seed=3, total_ops=30, threads=2,
                            profiles=SWEEP_PROFILES[:2])
        assert [name for name, _ in results] == names[:2]
        assert all(report.ok for _, report in results)

    def test_report_is_json_ready(self):
        report = run_chaos(ChaosConfig(seed=1, total_ops=20, threads=2))
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["ops_issued"] >= 20
        import json

        json.dumps(payload)  # must not raise

    def test_config_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(threads=0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(op_timeout=0.0)
