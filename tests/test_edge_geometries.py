"""Edge-case geometries: the smallest, sparsest and tightest files."""

import pytest

from repro import (
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
    MacroBlockControl2Engine,
    build_engine,
)
from repro.core.errors import ConfigurationError, FileFullError
from repro.workloads import mixed_workload, run_workload


class TestTwoPageFile:
    def test_m_equals_two_works(self):
        # L = 1; slack condition needs D - d > 3.
        params = DensityParams(num_pages=2, d=4, D=8)
        engine = Control2Engine(params)
        for key in range(params.max_records):
            engine.insert(key)
        engine.validate()
        assert len(engine) == 8
        with pytest.raises(FileFullError):
            engine.insert(99)

    def test_m_equals_two_deletions(self):
        params = DensityParams(num_pages=2, d=4, D=8)
        engine = Control2Engine(params)
        engine.insert_many(range(8))
        for key in range(8):
            engine.delete(key)
        engine.validate()
        assert len(engine) == 0


class TestSparseFiles:
    def test_d_equals_one(self):
        # One record per page on average; huge slack.
        params = DensityParams(num_pages=64, d=1, D=32)
        engine = Control2Engine(params)
        run_workload(engine, mixed_workload(120, seed=1), validate_every=30)

    def test_single_record_capacity_cap(self):
        params = DensityParams(num_pages=2, d=1, D=8)
        engine = Control2Engine(params)
        engine.insert(1)
        engine.insert(2)
        with pytest.raises(FileFullError):
            engine.insert(3)


class TestTightSlack:
    def test_slack_of_one_uses_macro_blocks(self):
        dense = DenseSequentialFile(num_pages=64, d=4, D=5)
        assert isinstance(dense.engine, MacroBlockControl2Engine)
        assert dense.engine.block_factor * 1 > 3 * 6  # K * slack > 3 logM
        dense.insert_many(range(100))
        dense.validate()

    def test_macro_blocks_refused_when_file_too_small(self):
        # K would leave fewer than 2 macro blocks.
        with pytest.raises(ConfigurationError):
            build_engine(4, 4, 5)


class TestLargeFiles:
    def test_m_4096_quick_run(self):
        params = DensityParams(num_pages=4096, d=4, D=48)
        engine = Control2Engine(params)
        run_workload(engine, mixed_workload(400, seed=2))
        engine.validate()
        assert engine.stuck_shifts == 0

    def test_huge_d(self):
        params = DensityParams(num_pages=8, d=1000, D=1100)
        engine = Control2Engine(params)
        engine.insert_many(range(3000))
        engine.validate()
        assert max(engine.occupancies()) <= 1100


class TestDegenerateCommands:
    def test_insert_delete_same_key_repeatedly(self):
        params = DensityParams(num_pages=16, d=4, D=20)
        engine = Control2Engine(params)
        for _ in range(100):
            engine.insert(42)
            engine.delete(42)
        engine.validate()
        assert len(engine) == 0

    def test_alternating_extremes(self):
        params = DensityParams(num_pages=16, d=4, D=20)
        engine = Control2Engine(params)
        low, high = 0, 10**9
        for index in range(30):
            engine.insert(low + index)
            engine.insert(high - index)
        engine.validate()
        assert engine.min_record().key == 0
        assert engine.max_record().key == 10**9
