"""Cross-layer integration: wrappers and facades composed together."""

import random
from concurrent.futures import ThreadPoolExecutor


from repro import JournaledDenseFile
from repro.applications import DensePriorityQueue, TimeSeriesStore
from repro.concurrent import ThreadSafeDenseFile


class TestThreadSafeOverJournaled:
    def test_threaded_writes_commit_atomically(self, tmp_path):
        path = str(tmp_path / "shared.dsf")
        inner = JournaledDenseFile.create(path, num_pages=64, d=16, D=56)
        shared = ThreadSafeDenseFile(inner)

        def worker(base):
            for offset in range(60):
                shared.insert(base * 1000 + offset, f"w{base}")

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        shared.validate()
        inner.close()

        with JournaledDenseFile.open(path) as reopened:
            assert len(reopened) == 360
            reopened.validate()

    def test_concurrent_mixed_commands(self, tmp_path):
        path = str(tmp_path / "mixed.dsf")
        inner = JournaledDenseFile.create(path, num_pages=64, d=16, D=56)
        shared = ThreadSafeDenseFile(inner)
        shared.insert_many(range(0, 600, 2))

        def deleter():
            shared.delete_range(100, 299)

        def inserter():
            for key in range(1001, 1101, 2):
                shared.insert(key)

        with ThreadPoolExecutor(max_workers=4) as pool:
            pool.submit(deleter)
            pool.submit(inserter)
        shared.validate()
        expected = len([k for k in range(0, 600, 2) if not 100 <= k <= 299])
        assert len(shared) == expected + 50
        inner.close()


class TestApplicationsOverFacadeVariants:
    def test_priority_queue_under_threads(self):
        queue = DensePriorityQueue(num_pages=128, d=8, D=48)
        lock_wrapped = ThreadSafeDenseFile(queue._file)
        # The queue object itself is not thread-safe; drive its file
        # through the wrapper for the parallel load, then use the queue
        # sequentially.
        with ThreadPoolExecutor(max_workers=4) as pool:
            def loader(base):
                for offset in range(50):
                    lock_wrapped.insert((base, offset), f"{base}/{offset}")
            list(pool.map(loader, range(4)))
        drained = [queue.pop() for _ in range(10)]
        priorities = [priority for priority, _ in drained]
        assert priorities == sorted(priorities)
        queue.validate()

    def test_timeseries_survives_many_retention_cycles(self):
        store = TimeSeriesStore(num_pages=128, d=8, D=48)
        rng = random.Random(3)
        clock = 0
        for cycle in range(12):
            store.record_batch(
                (clock + i + rng.random(), "s", i) for i in range(60)
            )
            clock += 60
            if cycle % 3 == 2:
                store.expire(clock - 120, compact=(cycle % 6 == 5))
            store.validate()
        assert store.count(0, clock) == len(store)
