"""Unit tests for the binary record codec."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.records import Record
from repro.storage.codec import (
    CodecError,
    decode_page,
    decode_record,
    decode_value,
    encode_page,
    encode_record,
    encode_value,
)


def roundtrip_value(value):
    out = []
    encode_value(value, out)
    decoded, offset = decode_value(b"".join(out), 0)
    assert offset == len(b"".join(out))
    return decoded


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**100,
            -(2**100),
            1.5,
            float("inf"),
            "",
            "héllo",
            b"",
            b"\x00\xff",
            Fraction(1, 3),
            Fraction(-7, 2),
            (),
            (1, "a", None),
            ((1, 2), (3, (4,))),
        ],
    )
    def test_roundtrip(self, value):
        assert roundtrip_value(value) == value

    def test_bool_stays_bool(self):
        decoded = roundtrip_value(True)
        assert decoded is True

    def test_int_zero_vs_false_distinct(self):
        assert roundtrip_value(0) == 0
        assert not isinstance(roundtrip_value(0), bool)

    def test_fraction_type_preserved(self):
        assert isinstance(roundtrip_value(Fraction(1, 3)), Fraction)

    def test_unsupported_type_rejected(self):
        with pytest.raises(CodecError):
            encode_value({1, 2, 3}, [])

    @pytest.mark.parametrize(
        "value",
        [
            {},
            {"name": "widget", "stock": 7},
            {1: (2, 3), "nested": {"deep": [1, 2]}},
            [],
            [1, "two", None, [3.5]],
        ],
    )
    def test_container_roundtrip(self, value):
        assert roundtrip_value(value) == value

    def test_list_and_tuple_stay_distinct(self):
        assert isinstance(roundtrip_value([1]), list)
        assert isinstance(roundtrip_value((1,)), tuple)

    def test_nan_roundtrips_as_nan(self):
        import math

        assert math.isnan(roundtrip_value(float("nan")))

    @given(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(),
            st.floats(allow_nan=False),
            st.text(),
            st.binary(),
            st.fractions(),
        )
    )
    def test_roundtrip_property(self, value):
        assert roundtrip_value(value) == value

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.floats(allow_nan=False),
                st.text(max_size=10),
                st.binary(max_size=10),
                st.fractions(),
            ),
            lambda children: st.one_of(
                st.tuples(children, children),
                st.lists(children, max_size=4),
                st.dictionaries(
                    st.text(max_size=6), children, max_size=4
                ),
            ),
            max_leaves=12,
        )
    )
    def test_nested_container_roundtrip_property(self, value):
        assert roundtrip_value(value) == value


class TestRecordsAndPages:
    def test_record_roundtrip(self):
        record = Record(5, ("x", 2.5))
        buffer = encode_record(record)
        decoded, offset = decode_record(buffer, 0)
        assert decoded == record
        assert offset == len(buffer)

    def test_page_roundtrip(self):
        records = [Record(k, f"v{k}") for k in range(10)]
        assert decode_page(encode_page(records)) == records

    def test_empty_page(self):
        assert decode_page(encode_page([])) == []

    def test_truncated_page_rejected(self):
        buffer = encode_page([Record(1)])
        with pytest.raises(CodecError):
            decode_page(buffer[:-1])

    def test_trailing_garbage_rejected(self):
        buffer = encode_page([Record(1)]) + b"\x00"
        with pytest.raises(CodecError):
            decode_page(buffer)

    def test_truncated_value_rejected(self):
        with pytest.raises(CodecError):
            decode_value(b"", 0)

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_value(bytes([200]), 0)

    @given(
        st.lists(
            st.tuples(st.integers(), st.one_of(st.none(), st.text())),
            unique_by=lambda pair: pair[0],
        )
    )
    def test_page_roundtrip_property(self, pairs):
        records = [Record(key, value) for key, value in pairs]
        assert decode_page(encode_page(records)) == records
