"""Conformance of the engine's step sequence to Figure 2's grammar.

Every command must emit measurable moments in exactly the paper's
order:  ``1, 2, 3`` then up to ``J`` iterations of ``4a [4b 4c]`` —
``4b``/``4c`` appear iff SELECT found a target, and iterations stop
early only when no warning remains.
"""

import re

import pytest

from repro import Control2Engine, DensityParams
from repro.workloads import converging_inserts, mixed_workload

COMMAND_GRAMMAR = re.compile(r"^1 2 3( 4a( 4b 4c)?)*$")


def moments_per_command(engine, operations):
    """Run operations, returning the list of moment strings per command."""
    sequences = []
    current = []

    def listener(kind, _engine):
        current.append(kind)

    engine.moment_listener = listener
    for operation in operations:
        current.clear()
        if operation.kind == "insert":
            engine.insert(operation.key)
        else:
            engine.delete(operation.key)
        sequences.append(" ".join(current))
    return sequences


@pytest.mark.parametrize("make_ops", [
    lambda: converging_inserts(120),
    lambda: mixed_workload(120, seed=5),
])
def test_moment_stream_matches_grammar(make_ops):
    params = DensityParams(num_pages=32, d=4, D=24, j=3)
    engine = Control2Engine(params)
    for sequence in moments_per_command(engine, make_ops()):
        assert COMMAND_GRAMMAR.match(sequence), sequence


def test_iteration_count_never_exceeds_j():
    params = DensityParams(num_pages=32, d=4, D=24, j=2)
    engine = Control2Engine(params)
    for sequence in moments_per_command(engine, converging_inserts(120)):
        assert sequence.count("4a") <= 2


def test_early_exit_only_when_no_warnings_remain():
    """A command that stops before J iterations must end flag-free."""
    params = DensityParams(num_pages=32, d=4, D=24, j=5)
    engine = Control2Engine(params)
    sequences = []
    current = []
    engine.moment_listener = lambda kind, _e: current.append(kind)
    for operation in converging_inserts(120):
        current.clear()
        engine.insert(operation.key)
        sequences.append((list(current), bool(engine.warning_nodes())))
    for moments, warnings_left in sequences:
        full_iterations = moments.count("4b")
        aborted = moments.count("4a") > full_iterations
        if aborted:
            # SELECT returned None: at that moment no warning existed,
            # and nothing after it raises one within the same command.
            assert not warnings_left


def test_shifts_only_happen_on_warning_nodes():
    """4b implies the selected node was in a warning state (checked via
    the engine's own assertion that destinations exist for flags)."""
    params = DensityParams(num_pages=32, d=4, D=24, j=3)
    engine = Control2Engine(params)
    observed = []

    original_shift = engine._shift

    def spying_shift(node):
        observed.append(engine.calibrator.flag[node])
        return original_shift(node)

    engine._shift = spying_shift
    for operation in converging_inserts(120):
        engine.insert(operation.key)
    assert observed, "the adversary must trigger shifts"
    assert all(observed)
