"""Tests for the macro-block extension (Theorem 5.7)."""

import pytest

from repro import (
    ConfigurationError,
    DensityParams,
    MacroBlockControl2Engine,
    macro_block_factor,
    macro_params,
)
from repro.workloads import converging_inserts, mixed_workload, run_workload


class TestFactorAndParams:
    def test_factor_is_least_sufficient(self):
        # M=64 -> 3*logM = 18; slack 4 -> K = 5 (5*4=20 > 18, 4*4=16 <= 18).
        assert macro_block_factor(64, 8, 12) == 5

    def test_factor_one_when_slack_already_large(self):
        assert macro_block_factor(64, 8, 40) == 1

    def test_macro_params_geometry(self):
        params = macro_params(64, 8, 12)
        # K=5 -> 13 macro blocks of capacity 5*12, density 5*8.
        assert params.num_pages == 13
        assert params.d == 40
        assert params.D == 60

    def test_macro_params_satisfy_slack_condition(self):
        params = macro_params(64, 8, 12)
        assert params.satisfies_slack_condition

    def test_too_small_file_rejected(self):
        with pytest.raises(ConfigurationError):
            macro_params(4, 8, 9)  # K big, < 2 macro blocks

    def test_invalid_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            macro_block_factor(64, 10, 10)


class TestMacroEngine:
    @pytest.fixture
    def engine(self):
        return MacroBlockControl2Engine(num_pages=64, d=8, D=12)

    def test_cap_is_physical_not_macro(self, engine):
        assert engine.physical_max_records == 8 * 64
        assert engine.params.max_records >= engine.physical_max_records

    def test_insert_beyond_physical_cap_raises(self):
        from repro.core.errors import FileFullError

        engine = MacroBlockControl2Engine(num_pages=64, d=2, D=3)
        for key in range(engine.physical_max_records):
            engine.insert(key)
        with pytest.raises(FileFullError):
            engine.insert(10**9)

    def test_macro_accesses_cost_k_physical_units(self, engine):
        engine.insert(1)
        stats = engine.stats
        assert stats.cost == pytest.approx(
            stats.page_accesses * engine.block_factor
        )
        assert engine.physical_page_accesses() == (
            stats.page_accesses * engine.block_factor
        )

    def test_maintenance_under_adversary(self, engine):
        result = run_workload(
            engine, converging_inserts(400), validate_every=50
        )
        assert result.validations > 0
        assert engine.stuck_shifts == 0

    def test_maintenance_under_mixed_workload(self, engine):
        run_workload(engine, mixed_workload(400, seed=7), validate_every=50)

    def test_search_and_scan_work(self, engine):
        for key in range(100):
            engine.insert(key, key * 3)
        assert engine.search(40).value == 120
        assert [r.key for r in engine.range_scan(10, 14)] == [10, 11, 12, 13, 14]

    def test_worst_case_cost_bounded(self, engine):
        result = run_workload(engine, converging_inserts(300))
        params = engine.params
        bound = engine.block_factor * (
            3 * params.shift_budget + 2 * params.log_m + 4
        )
        assert result.log.worst_case_accesses * engine.block_factor <= bound


class TestEquivalenceWithPlainControl2:
    def test_same_record_set_maintained(self):
        plain_params = DensityParams(num_pages=64, d=8, D=40)
        from repro import Control2Engine

        plain = Control2Engine(plain_params)
        macro = MacroBlockControl2Engine(num_pages=64, d=8, D=12)
        for op in mixed_workload(300, seed=9):
            for engine in (plain, macro):
                if op.kind == "insert":
                    engine.insert(op.key)
                else:
                    engine.delete(op.key)
        plain_keys = [r.key for r in plain.pagefile.iter_all()]
        macro_keys = [r.key for r in macro.pagefile.iter_all()]
        assert plain_keys == macro_keys
