"""Unit tests for DensityParams and the exact g(v, r) predicates."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import DensityParams, ceil_log2, recommended_j


class TestCeilLog2:
    @pytest.mark.parametrize(
        "m, expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10)],
    )
    def test_values(self, m, expected):
        assert ceil_log2(m) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestValidation:
    def test_rejects_d_not_less_than_D(self):
        with pytest.raises(ConfigurationError):
            DensityParams(num_pages=8, d=10, D=10)

    def test_rejects_tiny_file(self):
        with pytest.raises(ConfigurationError):
            DensityParams(num_pages=1, d=1, D=2)

    def test_rejects_zero_d(self):
        with pytest.raises(ConfigurationError):
            DensityParams(num_pages=8, d=0, D=2)

    def test_rejects_non_positive_j(self):
        with pytest.raises(ConfigurationError):
            DensityParams(num_pages=8, d=1, D=20, j=0)


class TestDerivedQuantities:
    def test_paper_example_geometry(self):
        params = DensityParams(num_pages=8, d=9, D=18, j=3)
        assert params.log_m == 3
        assert params.slack == 9
        assert params.max_records == 72
        assert params.shift_budget == 3

    def test_slack_condition(self):
        # Example 5.2: D - d = 9 = 3 * log M, so (5.1) does NOT hold
        # strictly; the paper uses it anyway as an illustration.
        assert not DensityParams(8, 9, 18).satisfies_slack_condition
        assert DensityParams(8, 9, 19).satisfies_slack_condition

    def test_recommended_j_matches_formula(self):
        # coefficient * logM^2 / slack, rounded up.
        assert recommended_j(1024, 50, coefficient=9) == 18
        assert recommended_j(8, 9, coefficient=9) == 9

    def test_default_j_used_when_not_given(self):
        params = DensityParams(num_pages=1024, d=8, D=58)
        assert params.shift_budget == recommended_j(1024, 50)

    def test_macro_block_factor_is_least_sufficient_k(self):
        params = DensityParams(num_pages=64, d=8, D=12)  # slack 4, 3logM=18
        factor = params.macro_block_factor
        assert factor * params.slack > 3 * params.log_m
        assert (factor - 1) * params.slack <= 3 * params.log_m


class TestExactPredicates:
    """Cross-check the integer predicates against the float formula."""

    @pytest.fixture
    def params(self):
        return DensityParams(num_pages=8, d=9, D=18, j=3)

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    @pytest.mark.parametrize("thirds", [0, 1, 2, 3])
    def test_agreement_with_float_formula(self, params, depth, thirds):
        pages = 8 >> depth
        g = params.g_value(depth, thirds)
        for count in range(0, params.D * pages + 1):
            p = count / pages
            assert params.density_at_least(count, pages, depth, thirds) == (
                p >= g - 1e-9
            )
            assert params.density_at_most(count, pages, depth, thirds) == (
                p <= g + 1e-9
            )

    def test_paper_leaf_thresholds(self, params):
        # Leaves (depth 3): g(2/3)=17, g(1/3)=16, g(0)=15, g(1)=18.
        assert params.density_at_least(17, 1, 3, 2)
        assert not params.density_at_least(16, 1, 3, 2)
        assert params.density_at_most(16, 1, 3, 1)
        assert not params.density_at_most(17, 1, 3, 1)
        assert params.threshold_count(1, 3, 0) == 15
        assert not params.density_exceeds(18, 1, 3, 3)
        assert params.density_exceeds(19, 1, 3, 3)

    def test_paper_depth1_thresholds(self, params):
        # Depth-1 nodes over 4 pages: g(2/3)=11, g(1/3)=10, g(0)=9.
        assert params.density_at_least(44, 4, 1, 2)
        assert not params.density_at_least(43, 4, 1, 2)
        assert params.density_at_most(40, 4, 1, 1)
        assert not params.density_at_most(41, 4, 1, 1)
        assert params.threshold_count(4, 1, 0) == 36

    def test_threshold_count_is_exact_boundary(self, params):
        for depth in range(4):
            pages = 8 >> depth
            threshold = params.threshold_count(pages, depth, 0)
            assert params.density_at_least(threshold, pages, depth, 0)
            if threshold > 0:
                assert not params.density_at_least(
                    threshold - 1, pages, depth, 0
                )

    def test_threshold_count_never_negative(self):
        params = DensityParams(num_pages=1024, d=1, D=100)
        assert params.threshold_count(1, 0, 0) == 0

    def test_root_g1_equals_d(self, params):
        # g(root, 1) = d: the root respects BALANCE iff N <= d*M.
        assert params.density_at_most(72, 8, 0, 3)
        assert params.density_exceeds(73, 8, 0, 3)
