"""Tests for the shared retry policy and loop (repro.concurrent.retry).

One policy, two consumers: ``RetryingStore`` (storage faults) and
``ClusterClient`` (network faults).  These tests pin down the shape —
capped exponential backoff, seeded deterministic jitter, deadline-aware
give-up — independently of either consumer.
"""

import pytest

from repro.concurrent.deadline import Deadline
from repro.concurrent.retry import RetryCounters, RetryPolicy, retry_call
from repro.core.errors import (
    ConfigurationError,
    OperationTimeout,
    TransientIOError,
)
from repro.storage.faults import BackoffPolicy


class TestRetryPolicy:
    def test_delay_grows_exponentially_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_zero_base_delay_means_free_retries(self):
        policy = RetryPolicy(base_delay=0.0, jitter=0.5)
        assert all(policy.delay(n) == 0.0 for n in range(5))

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5, seed=7)
        delays = [policy.delay(n) for n in range(6)]
        # Replays byte-identically from the seed.
        assert delays == [policy.delay(n) for n in range(6)]
        # Jitter only shrinks, never grows, and never below (1 - jitter).
        plain = RetryPolicy(base_delay=0.1, max_delay=1.0)
        for n, jittered in enumerate(delays):
            assert jittered <= plain.delay(n)
            assert jittered >= plain.delay(n) * 0.5

    def test_different_seeds_spread_the_window(self):
        base = RetryPolicy(base_delay=0.1, jitter=1.0)
        a = [base.with_seed(1).delay(n) for n in range(4)]
        b = [base.with_seed(2).delay(n) for n in range(4)]
        assert a != b

    def test_with_seed_keeps_the_shape(self):
        policy = RetryPolicy(
            max_attempts=7, base_delay=0.2, multiplier=3.0,
            max_delay=2.0, jitter=0.25, seed=0,
        )
        reseeded = policy.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.max_attempts == 7
        assert reseeded.base_delay == 0.2
        assert reseeded.multiplier == 3.0
        assert reseeded.max_delay == 2.0
        assert reseeded.jitter == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"base_delay": -1.0},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_policy_is_a_retry_policy(self):
        # The storage layer's BackoffPolicy is the same shape — one
        # policy object can be handed to either retry loop.
        policy = BackoffPolicy(max_attempts=3, base_delay=0.01)
        assert isinstance(policy, RetryPolicy)
        assert policy.delay(0) == pytest.approx(0.01)


class TestRetryCall:
    def test_first_try_success_touches_nothing(self):
        counters = RetryCounters()
        result = retry_call(
            lambda: 42,
            RetryPolicy(),
            retryable=(TransientIOError,),
            counters=counters,
        )
        assert result == 42
        assert counters.retries == 0 and counters.giveups == 0

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError("blip")
            return "ok"

        counters = RetryCounters()
        result = retry_call(
            flaky,
            RetryPolicy(max_attempts=5),
            retryable=(TransientIOError,),
            counters=counters,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert counters.retries == 2
        assert counters.giveups == 0

    def test_gives_up_with_the_original_fault(self):
        counters = RetryCounters()
        with pytest.raises(TransientIOError):
            retry_call(
                self._always_fails,
                RetryPolicy(max_attempts=3),
                retryable=(TransientIOError,),
                counters=counters,
            )
        assert counters.giveups == 1
        assert counters.retries == 2

    def test_non_retryable_propagates_untouched(self):
        def boom():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(boom, RetryPolicy(), retryable=(TransientIOError,))

    def test_deadline_exhaustion_raises_timeout_with_cause(self):
        clock = FakeClock()
        budget = Deadline.after(1.0, clock=clock.now)
        clock.advance(2.0)  # budget already spent
        with pytest.raises(OperationTimeout) as info:
            retry_call(
                self._always_fails,
                RetryPolicy(max_attempts=5, base_delay=0.1),
                retryable=(TransientIOError,),
                deadline=budget,
            )
        assert isinstance(info.value.__cause__, TransientIOError)

    def test_never_sleeps_past_the_remaining_budget(self):
        clock = FakeClock()
        budget = Deadline.after(0.05, clock=clock.now)
        slept = []
        counters = RetryCounters()
        with pytest.raises(OperationTimeout):
            retry_call(
                self._always_fails,
                RetryPolicy(max_attempts=10, base_delay=0.1),
                retryable=(TransientIOError,),
                deadline=budget,
                sleep=slept.append,
                counters=counters,
            )
        # The 0.1s backoff would overrun the 0.05s budget: no sleep at all.
        assert slept == []
        assert counters.deadline_giveups == 1

    def test_backoff_total_accumulates_scheduled_delay(self):
        slept = []
        counters = RetryCounters()
        with pytest.raises(TransientIOError):
            retry_call(
                self._always_fails,
                RetryPolicy(max_attempts=3, base_delay=0.25, multiplier=1.0),
                retryable=(TransientIOError,),
                sleep=slept.append,
                counters=counters,
            )
        assert slept == [0.25, 0.25]
        assert counters.backoff_total == pytest.approx(0.5)

    def test_unbounded_deadline_never_times_out_the_loop(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise TransientIOError("blip")
            return "ok"

        result = retry_call(
            flaky,
            RetryPolicy(max_attempts=5),
            retryable=(TransientIOError,),
            deadline=Deadline.unbounded(),
        )
        assert result == "ok"

    @staticmethod
    def _always_fails():
        raise TransientIOError("permanent blip")


class FakeClock:
    def __init__(self):
        self._t = 100.0

    def now(self):
        return self._t

    def advance(self, seconds):
        self._t += seconds
