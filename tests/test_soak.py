"""Soak tests: long mixed sessions at moderate scale with full validation.

These runs chain every feature — bulk load, single and batch updates,
range deletions, compaction, order statistics, scans — over thousands of
commands, validating all structural invariants along the way.  They are
the closest thing to production traffic in the suite.
"""

import random

import pytest

from repro import (
    AdaptiveControl2Engine,
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
)
from repro.core.errors import FileFullError


@pytest.mark.parametrize(
    "engine_cls", [Control2Engine, AdaptiveControl2Engine]
)
def test_long_mixed_session(engine_cls):
    params = DensityParams(num_pages=512, d=8, D=48)
    engine = engine_cls(params)
    rng = random.Random(2026)
    live = set()

    # Phase 1: uniform load to ~half capacity.
    while len(live) < params.max_records // 2:
        key = rng.randrange(1 << 24)
        if key in live:
            continue
        engine.insert(key)
        live.add(key)
    engine.validate()

    # Phase 2: churn — inserts, deletes, occasional range deletes.
    for step in range(4000):
        roll = rng.random()
        if roll < 0.5 and len(live) < params.max_records:
            key = rng.randrange(1 << 24)
            if key in live:
                continue
            engine.insert(key)
            live.add(key)
        elif roll < 0.9 and live:
            key = rng.choice(tuple(live)) if len(live) < 4096 else min(live)
            engine.delete(key)
            live.remove(key)
        elif live:
            lo = rng.randrange(1 << 24)
            hi = lo + rng.randrange(1 << 16)
            removed = engine.delete_range(lo, hi)
            victims = {k for k in live if lo <= k <= hi}
            assert removed == len(victims)
            live -= victims
        if step % 1000 == 999:
            engine.validate()

    # Phase 3: order statistics agree with the model.
    ordered = sorted(live)
    assert len(engine) == len(ordered)
    for _ in range(20):
        probe = rng.randrange(1 << 24)
        assert engine.rank(probe) == sum(1 for k in ordered if k < probe)
    if ordered:
        index = rng.randrange(len(ordered))
        assert engine.select(index).key == ordered[index]

    # Phase 4: compact, then keep going.
    engine.compact()
    engine.validate()
    for key in range(1 << 25, (1 << 25) + 100):
        try:
            engine.insert(key)
            live.add(key)
        except FileFullError:
            break
    engine.validate()
    assert [r.key for r in engine.pagefile.iter_all()] == sorted(live)
    assert engine.stuck_shifts == 0


def test_facade_soak_with_scans():
    dense = DenseSequentialFile(num_pages=256, d=8, D=48)
    rng = random.Random(7)
    dense.bulk_load(range(0, 100_000, 100))
    for _ in range(1500):
        roll = rng.random()
        if roll < 0.45:
            key = rng.randrange(100_000)
            if key % 100 and key not in dense:
                dense.insert(key)
        elif roll < 0.7:
            start = rng.randrange(100_000)
            window = list(dense.range(start, start + 500))
            keys = [record.key for record in window]
            assert keys == sorted(keys)
        elif roll < 0.85:
            probe = rng.randrange(100_000)
            succ = dense.successor(probe)
            if succ is not None:
                assert succ.key > probe
        else:
            probe = rng.randrange(100_000)
            assert dense.count_range(probe, probe + 1000) == sum(
                1 for _ in dense.range(probe, probe + 1000)
            )
    dense.validate()
