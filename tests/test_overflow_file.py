"""Tests for the overflow-chaining sequential file."""

import pytest

from repro.baselines.overflow_file import OverflowChainFile
from repro.core.errors import DuplicateKeyError, RecordNotFoundError
from repro.workloads import converging_inserts


@pytest.fixture
def overflow():
    f = OverflowChainFile(num_primary_pages=8, capacity=4)
    f.bulk_load(range(0, 320, 10))  # 32 records: 4 per primary page
    return f


class TestBasics:
    def test_bulk_load_distribution(self, overflow):
        assert len(overflow) == 32
        assert overflow.overflow_pages_used() == 0

    def test_search_in_primary(self, overflow):
        assert overflow.search(100).key == 100
        assert overflow.search(101) is None

    def test_insert_into_full_page_creates_chain(self, overflow):
        overflow.insert(1)  # page 1 holds 0,10,20,30 and is full
        assert overflow.longest_chain() == 1
        assert overflow.search(1).key == 1

    def test_chain_grows_page_by_page(self, overflow):
        for key in range(1, 10):
            overflow.insert(key)
        # 9 overflow records at capacity 4 -> ceil(9/4) = 3 chain pages.
        assert overflow.longest_chain() == 3

    def test_duplicate_rejected_in_primary_and_chain(self, overflow):
        with pytest.raises(DuplicateKeyError):
            overflow.insert(100)
        overflow.insert(1)
        with pytest.raises(DuplicateKeyError):
            overflow.insert(1)

    def test_delete_from_chain(self, overflow):
        overflow.insert(1)
        overflow.delete(1)
        assert overflow.search(1) is None

    def test_delete_missing_raises(self, overflow):
        with pytest.raises(RecordNotFoundError):
            overflow.delete(999)


class TestScans:
    def test_range_scan_merges_chains_in_order(self, overflow):
        for key in (1, 2, 3, 4, 5):
            overflow.insert(key)
        keys = [r.key for r in overflow.range_scan(0, 40)]
        assert keys == [0, 1, 2, 3, 4, 5, 10, 20, 30, 40]

    def test_scan_cost_includes_chain_reads(self, overflow):
        for key in range(1, 9):
            overflow.insert(key)
        overflow.stats.reset()
        list(overflow.range_scan(0, 30))
        # One primary page plus its two chain pages at minimum.
        assert overflow.stats.reads >= 3


class TestBurstDegradation:
    def test_burst_makes_one_chain_long(self):
        f = OverflowChainFile(num_primary_pages=16, capacity=8)
        f.bulk_load(range(0, 1280, 10))
        for op in converging_inserts(100, lo=50, hi=51):
            f.insert(op.key)
        assert f.longest_chain() >= 100 // 8
        # Other pages untouched.
        assert sorted(f.chain_lengths())[-2] == 0

    def test_burst_scan_pays_for_the_chain(self):
        f = OverflowChainFile(num_primary_pages=16, capacity=8)
        f.bulk_load(range(0, 1280, 10))
        for op in converging_inserts(80, lo=100, hi=101):
            f.insert(op.key)
        f.stats.reset()
        result = list(f.range_scan(100, 110))
        assert len(result) == 82  # 100, 110 and the 80 chained records
        assert f.stats.reads > 10
