"""The torture harness itself: determinism, teeth, and its CLI fronts."""

import io
import os
import sys
import tempfile

import pytest

from repro.concurrent.harness import (
    StressConfig,
    build_schedule,
    build_streams,
    negative_control_deadlock,
    negative_control_race,
    run_stress,
    schedule_digest,
    self_test,
)

TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


@pytest.fixture(scope="module")
def stress_tool():
    sys.path.insert(0, TOOLS)
    try:
        import stress as module
    finally:
        sys.path.remove(TOOLS)
    return module


class TestDeterminism:
    def test_same_seed_same_schedule_digest(self):
        config = StressConfig(seed=42, total_ops=80)
        first = run_stress(config)
        second = run_stress(config)
        assert first.ok and second.ok
        assert first.schedule_digest == second.schedule_digest
        assert first.ops_executed == second.ops_executed

    def test_different_seeds_different_schedules(self):
        digests = {
            schedule_digest(
                build_schedule(
                    StressConfig(seed=seed, total_ops=80),
                    build_streams(StressConfig(seed=seed, total_ops=80)),
                )
            )
            for seed in range(5)
        }
        assert len(digests) == 5

    def test_schedule_is_pure_function_of_the_seed(self):
        config = StressConfig(seed=7, total_ops=60)
        one = build_schedule(config, build_streams(config))
        two = build_schedule(config, build_streams(config))
        assert one == two


class TestHarnessTeeth:
    def test_detects_seeded_race_when_lock_is_bypassed(self):
        assert negative_control_race(seed=0) is True

    def test_detects_lock_order_deadlock_via_deadline(self):
        assert negative_control_deadlock() is True

    def test_self_test_verdict_combines_all_controls(self):
        report = self_test(seed=0, total_ops=60)
        assert report.clean.ok
        assert report.race_detected
        assert report.deadlock_detected
        assert report.ok
        assert "negative control" in report.summary()


class TestReports:
    def test_faulty_stack_accounts_for_every_transient(self):
        report = run_stress(
            StressConfig(seed=3, total_ops=120, stack="faulty",
                         transient_rate=0.1)
        )
        assert report.ok, report.summary()
        assert report.faults_injected > 0
        assert report.retry_counters["retries"] == report.faults_injected
        assert report.retry_counters["giveups"] == 0

    def test_report_carries_lock_stats(self):
        report = run_stress(StressConfig(seed=1, total_ops=60))
        assert report.lock_stats["writers_served"] > 0
        assert report.lock_stats["queued"] == 0
        assert report.elapsed > 0.0

    def test_disk_stack_cleans_up_and_passes(self):
        path = os.path.join(tempfile.mkdtemp(prefix="repro-st-"), "f.dsf")
        report = run_stress(
            StressConfig(seed=5, total_ops=60, stack="disk", path=path)
        )
        assert report.ok, report.summary()
        assert os.path.exists(path)  # the file survives for post-mortems


class TestCommandLineFronts:
    def test_repro_stress_subcommand_clean_run(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["stress", "--threads", "3", "--ops", "60", "--seed", "11"],
            out=out,
        )
        assert code == 0
        assert "CLEAN" in out.getvalue()

    def test_repro_stress_subcommand_self_test(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(["stress", "--self-test", "--ops", "60"], out=out)
        assert code == 0
        assert "negative control" in out.getvalue()

    def test_stress_tool_build_config_round_trip(self, stress_tool):
        parser_args = type(
            "Args",
            (),
            dict(
                threads=3, ops=50, batch=4, stack="disk", fault_rate=0.0,
                shed_load=False, max_in_flight=None, op_timeout=30.0,
                sanitize=False,
            ),
        )()
        config = stress_tool.build_config(parser_args, seed=9)
        assert config.stack == "disk"
        assert not config.sanitize
        assert config.path and config.path.endswith(".dsf")
        report = run_stress(config)
        assert report.ok, report.summary()
