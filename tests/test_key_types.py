"""Key-type coverage: anything totally ordered should work as a key."""

from fractions import Fraction

import pytest

from repro import Control2Engine, DenseSequentialFile, DensityParams


@pytest.fixture
def dense():
    return DenseSequentialFile(num_pages=64, d=8, D=40)


class TestStringKeys:
    def test_lexicographic_order(self, dense):
        words = ["pear", "apple", "fig", "banana", "kiwi"]
        dense.insert_many(words)
        assert list(dense.keys()) == sorted(words)

    def test_range_scan_on_strings(self, dense):
        dense.insert_many(["alpha", "beta", "gamma", "delta"])
        found = [r.key for r in dense.range("b", "e")]
        assert found == ["beta", "delta"]

    def test_workload_of_strings(self, dense):
        import random

        rng = random.Random(1)
        words = {f"key-{rng.randrange(10**6):06d}" for _ in range(300)}
        dense.insert_many(words)
        dense.validate()
        assert list(dense.keys()) == sorted(words)


class TestFractionKeys:
    def test_exact_rationals(self, dense):
        keys = [Fraction(1, n) for n in range(1, 200)]
        dense.insert_many(keys)
        dense.validate()
        assert dense.min().key == Fraction(1, 199)
        assert dense.max().key == Fraction(1, 1)

    def test_mixed_int_float_fraction(self, dense):
        # Python's numeric tower keeps these mutually comparable.
        dense.insert(1)
        dense.insert(1.5)
        dense.insert(Fraction(7, 4))
        dense.insert(2)
        assert [r.key for r in dense.range(0, 3)] == [1, 1.5, Fraction(7, 4), 2]


class TestTupleKeys:
    def test_composite_keys(self, dense):
        rows = [(2, "b"), (1, "z"), (2, "a"), (1, "a")]
        for key in rows:
            dense.insert(key)
        assert list(dense.keys()) == sorted(rows)

    def test_range_on_composite_prefix(self, dense):
        for key in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)]:
            dense.insert(key)
        found = [r.key for r in dense.range((2, float("-inf")), (2, float("inf")))]
        assert found == [(2, 1), (2, 2)]


class TestNegativeAndExtremeKeys:
    def test_negative_and_huge_ints(self, dense):
        keys = [-(10**30), -5, 0, 5, 10**30]
        dense.insert_many(keys)
        assert list(dense.keys()) == keys

    def test_engine_handles_float_infinities_as_probes(self):
        engine = Control2Engine(DensityParams(num_pages=16, d=4, D=20))
        engine.insert_many([1, 2, 3])
        assert [r.key for r in engine.scan_count(float("-inf"), 2)] == [1, 2]
        assert engine.rank(float("inf")) == 3
