"""The dynamic race sanitizer: planted controls, clean runs, determinism.

Three things make the sanitizer trustworthy, and each is pinned here:

* **Teeth** — the planted negative controls (an unlocked write, an ABBA
  acquisition) are detected under fixed seeds, even though their
  threads run strictly sequentially: every detector depends only on
  per-thread event sets, never on the interleaving the OS chose.
* **Silence** — a sanitized run of the real, correctly locked stack
  reports zero findings while observing real volume (accesses, lock
  events), so the zero is earned, not vacuous.
* **Transparency** — sanitize mode changes *observation*, not
  *behavior*: the schedule digest and logical operation counters of a
  sanitized run are bit-identical to the plain run of the same seed.
"""

import pytest

from repro.concurrent.harness import StressConfig, run_stress
from repro.sanitizer import (
    RaceFinding,
    VectorClock,
    planted_abba,
    planted_unlocked_write,
    sanitize_self_test,
)

SEEDS = (0, 1, 7)


# ---------------------------------------------------------------------------
# planted controls: the sanitizer must have teeth
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_planted_unlocked_write_is_detected(seed):
    report = planted_unlocked_write(seed)
    kinds = {finding.kind for finding in report.findings}
    assert "unlocked-access" in kinds
    finding = next(
        f for f in report.findings if f.kind == "unlocked-access"
    )
    assert "page[" in finding.resource  # names the store page
    assert finding.threads  # names the racing thread
    assert report.accesses > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_planted_abba_is_detected(seed):
    report = planted_abba(seed)
    kinds = {finding.kind for finding in report.findings}
    assert "lock-order-cycle" in kinds
    finding = next(
        f for f in report.findings if f.kind == "lock-order-cycle"
    )
    assert "lock-a" in finding.detail and "lock-b" in finding.detail


@pytest.mark.parametrize("control", [planted_unlocked_write, planted_abba])
def test_planted_controls_are_deterministic(control):
    # Same seed, same findings — byte for byte.  The controls run their
    # threads strictly sequentially, so the verdict cannot depend on a
    # lucky interleaving.
    first = control(3)
    second = control(3)
    assert [f.render() for f in first.findings] == [
        f.render() for f in second.findings
    ]
    assert first.counters() == second.counters()
    assert not first.ok


# ---------------------------------------------------------------------------
# the live stack: a clean tree must earn a silent verdict
# ---------------------------------------------------------------------------


def test_sanitized_stress_run_is_clean_with_real_volume():
    report = run_stress(
        StressConfig(seed=3, total_ops=80, sanitize=True)
    )
    assert report.ok, report.summary()
    assert report.races == []
    counters = report.sanitizer_counters
    assert counters is not None
    assert counters["findings"] == 0
    # The zero verdict is earned: the run actually observed traffic.
    assert counters["accesses"] > 0
    assert counters["lock_events"] > 0
    assert counters["threads"] >= 2


def test_unsanitized_run_has_no_sanitizer_counters():
    report = run_stress(StressConfig(seed=3, total_ops=40))
    assert report.ok, report.summary()
    assert report.sanitizer_counters is None


def test_sanitize_mode_does_not_change_the_logical_run():
    # Observation only: same seed, same schedule digest, same logical
    # operation counters — the instrumented stack executes the exact
    # run the plain stack does.
    plain = run_stress(StressConfig(seed=11, total_ops=60))
    sanitized = run_stress(
        StressConfig(seed=11, total_ops=60, sanitize=True)
    )
    assert sanitized.schedule_digest == plain.schedule_digest
    assert sanitized.ops_executed == plain.ops_executed
    assert sanitized.batches == plain.batches
    assert sanitized.ok and plain.ok


def test_self_test_passes_end_to_end():
    report = sanitize_self_test(seed=0, total_ops=80)
    assert report.unlocked_write_detected
    assert report.abba_detected
    assert report.clean.ok
    assert report.ok
    assert "ok" in report.summary()


# ---------------------------------------------------------------------------
# vector clocks: the happens-before backbone
# ---------------------------------------------------------------------------


def test_vector_clock_join_and_observed():
    a = VectorClock()
    b = VectorClock()
    a.tick(0)
    epoch = a.epoch(0)
    assert a.observed(epoch, 0)  # own writes are always observed
    assert not b.observed(epoch, 1)  # unsynchronized thread has not
    b.join(a)
    assert b.observed(epoch, 1)  # the join published it
    assert b.dominates(a)


def test_race_finding_renders_its_threads():
    finding = RaceFinding(
        kind="unlocked-access",
        resource="store:page[3]",
        detail="write with empty lockset",
        threads=("T1",),
    )
    assert "store:page[3]" in finding.render()
    assert "[T1]" in finding.render()
