"""Unit tests for the access-cost model and counters."""

from repro.storage.cost import (
    AccessStats,
    CostModel,
    DISK_ARM_MODEL,
    PAGE_ACCESS_MODEL,
)


class TestCostModel:
    def test_page_access_model_charges_flat_units(self):
        assert PAGE_ACCESS_MODEL.access_cost(1, 500) == 1.0
        assert PAGE_ACCESS_MODEL.access_cost(500, 501) == 1.0

    def test_contiguous_access_pays_no_seek(self):
        model = CostModel(seek_base=10.0, seek_per_page=1.0)
        assert model.access_cost(7, 8) == 1.0
        assert model.access_cost(8, 8) == 1.0
        assert model.access_cost(8, 7) == 1.0

    def test_distant_access_pays_base_plus_distance(self):
        model = CostModel(seek_base=10.0, seek_per_page=0.5)
        assert model.access_cost(0, 100) == 1.0 + 10.0 + 50.0

    def test_seek_cost_is_capped(self):
        model = CostModel(seek_base=10.0, seek_per_page=1.0, seek_max=15.0)
        assert model.seek_cost(1000) == 15.0

    def test_zero_cap_means_uncapped(self):
        model = CostModel(seek_base=1.0, seek_per_page=1.0, seek_max=0.0)
        assert model.seek_cost(1000) == 1001.0

    def test_cold_arm_pays_base_seek_only(self):
        model = CostModel(seek_base=10.0, seek_per_page=1.0)
        assert model.access_cost(-1, 500) == 11.0

    def test_wider_contiguous_window(self):
        model = CostModel(seek_base=10.0, contiguous_window=4)
        assert model.access_cost(10, 14) == 1.0
        assert model.access_cost(10, 15) == 11.0

    def test_disk_arm_model_prefers_sequential(self):
        sequential = DISK_ARM_MODEL.access_cost(10, 11)
        random_probe = DISK_ARM_MODEL.access_cost(10, 5000)
        assert random_probe > 5 * sequential


class TestAccessStats:
    def test_counts_reads_and_writes_separately(self):
        stats = AccessStats()
        stats.record_read(1.0, moved_arm=False)
        stats.record_write(1.0, moved_arm=True)
        stats.record_write(1.0, moved_arm=False)
        assert stats.reads == 1
        assert stats.writes == 2
        assert stats.page_accesses == 3
        assert stats.seeks == 1

    def test_cost_accumulates(self):
        stats = AccessStats()
        stats.record_read(2.5, moved_arm=False)
        stats.record_write(1.5, moved_arm=False)
        assert stats.cost == 4.0

    def test_checkpoint_delta_isolates_an_operation(self):
        stats = AccessStats()
        stats.record_read(1.0, False)
        stats.checkpoint("op")
        stats.record_write(3.0, True)
        delta = stats.delta("op")
        assert delta.reads == 0
        assert delta.writes == 1
        assert delta.cost == 3.0
        assert delta.seeks == 1

    def test_delta_without_checkpoint_measures_from_zero(self):
        stats = AccessStats()
        stats.record_read(1.0, False)
        assert stats.delta("never-set").reads == 1

    def test_named_checkpoints_are_independent(self):
        stats = AccessStats()
        stats.checkpoint("a")
        stats.record_read(1.0, False)
        stats.checkpoint("b")
        stats.record_read(1.0, False)
        assert stats.delta("a").reads == 2
        assert stats.delta("b").reads == 1

    def test_reset_clears_everything(self):
        stats = AccessStats()
        stats.record_read(1.0, True)
        stats.checkpoint("x")
        stats.reset()
        assert stats.page_accesses == 0
        assert stats.cost == 0.0
        assert stats.delta("x").reads == 0
