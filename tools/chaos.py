"""Network chaos harness: seeded fault sweeps against the cluster.

Usage:
    python tools/chaos.py --seed 7 --ops 200
    python tools/chaos.py --profile kill-shard --ops 120
    python tools/chaos.py --seconds 30            # randomized soak
    python tools/chaos.py --out chaos.json        # CI artifact

One run drives seeded multi-client workloads through channels that
drop, delay, duplicate, reorder and truncate frames per a
deterministic ``NetFaultPlan``, and proves the robustness trichotomy:
every operation ends in success (linearizable against the sequential
oracle), a typed failure within its deadline, or a provably-not-applied
write (resolved against the server's idempotency table).  The
``kill-shard`` profile additionally kills a shard mid-run and asserts
the surviving key ranges keep serving.

The default invocation sweeps one profile per fault family plus a
combined storm and the kill-shard drill.  A failure prints the exact
replay command.

Exit codes: 0 trichotomy held everywhere, 1 violation/hang/crash.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.chaos import (  # noqa: E402
    SWEEP_PROFILES,
    ChaosConfig,
    run_chaos,
    run_sweep,
)


def sweep_once(seed: int, args, verbose: bool) -> tuple[bool, list]:
    """One full sweep at ``seed``; returns (all_ok, results)."""
    profiles = None
    if args.profile:
        table = dict(SWEEP_PROFILES)
        if args.profile not in table:
            known = ", ".join(name for name, _ in SWEEP_PROFILES)
            print(f"unknown profile {args.profile!r} (choose from: {known})")
            raise SystemExit(2)
        profiles = ((args.profile, table[args.profile]),)
    results = run_sweep(
        seed=seed, total_ops=args.ops, threads=args.threads, profiles=profiles
    )
    all_ok = True
    for name, report in results:
        if verbose or not report.ok:
            print(f"[{name}]")
            print(report.summary())
        all_ok = all_ok and report.ok
    return all_ok, results


def main() -> int:
    parser = argparse.ArgumentParser(
        description="network chaos sweeps against the sharded cluster"
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="run one deterministic sweep at this seed")
    parser.add_argument("--ops", type=int, default=120,
                        help="operations per profile run")
    parser.add_argument("--threads", type=int, default=3,
                        help="concurrent chaos clients")
    parser.add_argument("--profile", default=None,
                        help="run only this sweep profile (e.g. storm, "
                        "kill-shard)")
    parser.add_argument("--seconds", type=float, default=10.0,
                        help="randomized soak budget when no --seed is given")
    parser.add_argument("--iterations", type=int, default=0,
                        help="cap on soak sweeps (0 = until --seconds)")
    parser.add_argument("--out", default=None,
                        help="write a JSON report of the last sweep here")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    def emit(seed: int, results) -> None:
        if not args.out:
            return
        payload = {
            "schema": "repro-chaos/1",
            "seed": seed,
            "ops": args.ops,
            "threads": args.threads,
            "ok": all(report.ok for _, report in results),
            "profiles": {
                name: report.to_dict() for name, report in results
            },
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.seed is not None:
        ok, results = sweep_once(args.seed, args, verbose=True)
        emit(args.seed, results)
        held = sum(1 for _, report in results if report.ok)
        print(f"chaos: {held}/{len(results)} profiles held the trichotomy")
        return 0 if ok else 1

    deadline = time.time() + args.seconds
    iteration = 0
    while True:
        if args.iterations and iteration >= args.iterations:
            break
        if not args.iterations and time.time() >= deadline:
            break
        seed = random.randrange(1 << 30)
        ok, results = sweep_once(seed, args, verbose=args.verbose)
        emit(seed, results)
        if not ok:
            profile = f" --profile {args.profile}" if args.profile else ""
            print(f"replay: python tools/chaos.py --seed {seed} "
                  f"--ops {args.ops} --threads {args.threads}{profile}")
            return 1
        iteration += 1
    print(f"chaos: {iteration} seeded sweeps clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
