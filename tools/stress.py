"""Concurrency torture harness: seeded threads vs. a sequential oracle.

Usage:
    python tools/stress.py --threads 8 --ops 400 --seed 7
    python tools/stress.py --stack faulty --fault-rate 0.1 --seconds 20
    python tools/stress.py --self-test

One run drives N seeded client threads (mixed insert/delete/scan from
``workloads.generators``) against a shared ``ThreadSafeDenseFile`` in
deterministically scheduled batches, and checks every batch is
linearizable against a sequential oracle (plus periodic full-content
and invariant checks).  The schedule is a pure function of the seed —
the report prints a schedule digest so a failure replays exactly.

``--self-test`` additionally proves the harness's teeth: a seeded race
with the lock deliberately bypassed must be *detected*, and a lock-
order deadlock must surface as ``OperationTimeout`` instead of a hang.

``--sanitize`` rebuilds the stack with the dynamic race sanitizer
(Eraser-style lockset + vector-clock happens-before + lock-order
graph; see ``repro.sanitizer``) and fails on any finding.  Combined
with ``--self-test`` it runs the sanitizer's own controls instead: a
sanitized clean run must report zero findings, while a planted
unlocked write and a planted ABBA acquisition must each be detected —
deterministically, even under a fully serialized schedule.

``--replica-reads`` swaps in the replication schedule: writer threads
on a journaled primary, reader threads snapshotting a WAL-shipped
replica, every snapshot checked prefix-consistent against the
primary's commit-time digests.

Exit codes: 0 clean, 1 violation/deadlock, 2 failed self-test.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.concurrent.harness import (  # noqa: E402
    STACKS,
    StressConfig,
    run_stress,
    self_test,
)


def build_config(args, seed: int) -> StressConfig:
    """A :class:`StressConfig` from the CLI switches (one seed per run)."""
    path = None
    if args.stack in ("disk", "buffered"):
        path = os.path.join(
            tempfile.mkdtemp(prefix="repro-stress-"), "stress.dsf"
        )
    return StressConfig(
        threads=args.threads,
        total_ops=args.ops,
        seed=seed,
        max_batch=args.batch,
        stack=args.stack,
        transient_rate=args.fault_rate,
        shed_load=args.shed_load,
        max_in_flight=args.max_in_flight,
        op_timeout=args.op_timeout,
        path=path,
        sanitize=args.sanitize,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--ops", type=int, default=200,
                        help="total operations across all threads")
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly one seed (default: random seeds)")
    parser.add_argument("--seconds", type=float, default=10.0,
                        help="wall-clock budget when no --seed is given")
    parser.add_argument("--iterations", type=int, default=0,
                        help="seed count when no --seed is given (0 = by time)")
    parser.add_argument("--batch", type=int, default=4,
                        help="max operations raced in one batch")
    parser.add_argument("--stack", choices=STACKS, default="memory")
    parser.add_argument("--fault-rate", type=float, default=0.05,
                        help="transient-fault rate for --stack faulty")
    parser.add_argument("--shed-load", action="store_true",
                        help="enable the admission gate in shed-load mode")
    parser.add_argument("--max-in-flight", type=int, default=None,
                        help="admission cap (enables the gate)")
    parser.add_argument("--op-timeout", type=float, default=30.0,
                        help="per-operation deadline in seconds")
    parser.add_argument("--self-test", action="store_true",
                        help="run the positive + negative controls and exit")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the dynamic race sanitizer on "
                        "(with --self-test: run the sanitizer's planted "
                        "controls instead of the harness's)")
    parser.add_argument("--replica-reads", action="store_true",
                        dest="replica_reads",
                        help="replication schedule: writers on the primary, "
                        "prefix-consistency-checked readers on a replica")
    parser.add_argument("--readers", type=int, default=2,
                        help="replica reader threads for --replica-reads")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.self_test and args.sanitize:
        from repro.sanitizer import sanitize_self_test  # noqa: E402

        sanitize_report = sanitize_self_test(seed=args.seed or 0)
        print(sanitize_report.summary())
        return 0 if sanitize_report.ok else 2

    if args.self_test:
        report = self_test(seed=args.seed or 0)
        print(report.summary())
        return 0 if report.ok else 2

    if args.replica_reads:
        from repro.concurrent.harness import (  # noqa: E402
            ReplicaStressConfig,
            run_replica_stress,
        )

        report = run_replica_stress(
            ReplicaStressConfig(
                path=os.path.join(
                    tempfile.mkdtemp(prefix="repro-stress-"), "primary.dsf"
                ),
                threads=args.threads,
                readers=args.readers,
                total_ops=args.ops,
                seed=args.seed if args.seed is not None else 0,
            )
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.seed is not None:
        report = run_stress(build_config(args, args.seed))
        print(report.summary())
        return 0 if report.ok else 1

    deadline = time.time() + args.seconds
    iteration = 0
    while True:
        if args.iterations and iteration >= args.iterations:
            break
        if not args.iterations and time.time() >= deadline:
            break
        seed = random.randrange(1 << 30)
        report = run_stress(build_config(args, seed))
        if args.verbose:
            print(report.summary())
        if not report.ok:
            sanitize = " --sanitize" if args.sanitize else ""
            print(report.summary())
            print(f"replay: python tools/stress.py --stack {args.stack} "
                  f"--threads {args.threads} --ops {args.ops} "
                  f"--seed {seed}{sanitize}")
            return 1
        iteration += 1
    mode = " sanitized" if args.sanitize else ""
    print(f"stress[{args.stack}]: {iteration}{mode} seeded runs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
