"""Standalone entry point for the repro AST linter.

Usage:  python tools/lint.py [paths...] [--format=json] [--fix]
        python tools/lint.py --list-rules

Thin wrapper over ``repro lint`` (one implementation, two spellings) so
CI and pre-commit hooks can run the linter without installing the
package.  Exit codes: 0 clean, 1 findings, 2 bad usage.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["lint"] + sys.argv[1:]))
