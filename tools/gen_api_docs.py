"""Generate docs/API.md from the package's docstrings.

Usage:  python tools/gen_api_docs.py

Walks every public module of :mod:`repro`, rendering module, class,
method and function docstrings (first paragraph for members, full text
for modules) into one markdown reference.  Re-run after changing public
APIs; the test suite asserts the file is up to date.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro  # noqa: E402

SKIP_MODULES = {"repro.__main__"}


def iter_modules():
    """All public repro modules, the package itself first."""
    yield repro
    names = sorted(
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if info.name not in SKIP_MODULES
    )
    for name in names:
        yield importlib.import_module(name)


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n\n")[0].replace("\n", " ").strip()


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def render_function(name: str, obj, heading: str) -> list:
    lines = [f"{heading} `{name}{signature_of(obj)}`", ""]
    summary = first_paragraph(obj)
    if summary:
        lines += [summary, ""]
    return lines


def render_class(name: str, cls) -> list:
    lines = [f"### class `{name}`", ""]
    summary = first_paragraph(cls)
    if summary:
        lines += [summary, ""]
    for member_name, member in sorted(vars(cls).items()):
        if member_name.startswith("_"):
            continue
        if isinstance(member, property):
            doc = first_paragraph(member.fget) if member.fget else ""
            lines += [f"- **`{member_name}`** *(property)* — {doc}"]
        elif inspect.isfunction(member):
            doc = first_paragraph(member)
            lines += [
                f"- **`{member_name}{signature_of(member)}`** — {doc}"
            ]
        elif isinstance(member, (classmethod, staticmethod)):
            inner = member.__func__
            doc = first_paragraph(inner)
            kind = "classmethod" if isinstance(member, classmethod) else "staticmethod"
            lines += [
                f"- **`{member_name}{signature_of(inner)}`** *({kind})* — {doc}"
            ]
    lines.append("")
    return lines


def render_module(module) -> list:
    lines = [f"## `{module.__name__}`", ""]
    summary = first_paragraph(module)
    if summary:
        lines += [summary, ""]
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            lines += render_class(name, obj)
        elif inspect.isfunction(obj):
            lines += render_function(name, obj, "### function")
    return lines


def generate() -> str:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `tools/gen_api_docs.py`; do not edit",
        "by hand (run the generator after changing public APIs).",
        "",
    ]
    for module in iter_modules():
        lines += render_module(module)
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    """Write docs/API.md next to the repository root."""
    target = os.path.join(
        os.path.dirname(__file__), "..", "docs", "API.md"
    )
    with open(target, "w") as handle:
        handle.write(generate())
    print(f"wrote {os.path.normpath(target)}")


if __name__ == "__main__":
    main()
