"""The typing gate: mypy when available, an AST fallback always.

CI installs mypy and runs it against ``pyproject.toml``'s ``[tool.mypy]``
config (strict on ``storage/``, ``concurrent/``, ``cluster/`` and
``replication/``, base strictness everywhere else — the ratchet).  Development containers without mypy
still get a meaningful gate: the AST pass below enforces the part of
strict mode that needs no type inference — ``disallow_untyped_defs`` /
``disallow_incomplete_defs`` — by walking every function signature in
the strict packages and failing on any missing parameter or return
annotation.

Usage::

    python tools/typecheck.py            # mypy if importable, else AST gate
    python tools/typecheck.py --ast-only # force the fallback (what CI
                                         # asserts stays clean pre-mypy)

Exit codes: 0 clean, 1 findings, 2 bad usage.
"""

from __future__ import annotations

import argparse
import ast
import os
import subprocess
import sys
from typing import Iterator, List, Tuple

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))

#: Packages held to strict typing (mirrors [tool.mypy] overrides).
STRICT_PACKAGES = (
    "src/repro/storage",
    "src/repro/concurrent",
    "src/repro/cluster",
    "src/repro/replication",
)


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def incomplete_signature(fn) -> Tuple[List[str], bool]:
    """``(missing_params, missing_return)`` for one function node."""
    args = fn.args
    missing = [
        arg.arg
        for arg in args.posonlyargs + args.args + args.kwonlyargs
        if arg.arg not in ("self", "cls") and arg.annotation is None
    ]
    for arg in (args.vararg, args.kwarg):
        if arg is not None and arg.annotation is None:
            missing.append("*" + arg.arg)
    missing_return = fn.returns is None and fn.name != "__init__"
    return missing, missing_return


def ast_gate(packages=STRICT_PACKAGES, repo: str = REPO) -> List[str]:
    """Annotation-completeness findings for the strict packages."""
    problems = []
    for package in packages:
        root = os.path.join(repo, package)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
                for fn in iter_functions(tree):
                    missing, missing_return = incomplete_signature(fn)
                    rel = os.path.relpath(path, repo)
                    if missing:
                        problems.append(
                            f"{rel}:{fn.lineno}: {fn.name} is missing "
                            f"annotations for {', '.join(missing)}"
                        )
                    if missing_return:
                        problems.append(
                            f"{rel}:{fn.lineno}: {fn.name} is missing a "
                            "return annotation"
                        )
    return problems


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy() -> int:
    """Run mypy over the package using pyproject's [tool.mypy] config."""
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        os.path.join(REPO, "pyproject.toml"),
        os.path.join(REPO, "src", "repro"),
    ]
    return subprocess.call(command)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ast-only",
        action="store_true",
        help="skip mypy even when importable; run only the AST gate",
    )
    args = parser.parse_args(argv)

    problems = ast_gate()
    for problem in problems:
        print(problem)
    if problems:
        print(
            f"{len(problems)} incomplete signature(s) in strict packages "
            f"({', '.join(STRICT_PACKAGES)})"
        )
        return 1
    print(
        "AST gate clean: every signature in "
        f"{', '.join(STRICT_PACKAGES)} is fully annotated"
    )
    if args.ast_only:
        return 0
    if not mypy_available():
        print("mypy not installed; AST gate stands in (CI runs full mypy)")
        return 0
    return run_mypy()


if __name__ == "__main__":
    sys.exit(main())
