"""Long-soak SLO runner: a primary+replica pair under fire.

Usage:
    python tools/soak.py --seconds 20 --seed 7 --out soak.json
    python tools/soak.py --seconds 300 --transport directory

One run stands up a journaled primary and a WAL-shipped replica, then
drives mixed read/write load while a seeded :class:`FaultPlan` crashes
the primary and tears/bit-flips physical frames mid-commit.  Every
crash triggers a promote-on-crash failover whose result is verified as
a committed prefix of the dead primary's history; every corruption is
healed by scrub from the retained journal images; replica readers
check prefix consistency on every snapshot.  The report is the
repro-bench/1 JSON schema with write/read/replica latency percentiles
and replication-lag percentiles.

Exit codes: 0 clean (zero unrecovered findings), 1 findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.replication import SoakConfig, run_soak  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seconds", type=float, default=20.0,
                        help="wall-clock soak duration")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--transport", choices=["queue", "directory"],
                        default="queue",
                        help="WAL shipping transport")
    parser.add_argument("--workdir", default=None,
                        help="node file directory (default: fresh temp dir)")
    parser.add_argument("--out", default=None,
                        help="write the repro-bench/1 JSON report here")
    parser.add_argument("--crash-every", type=int, default=200,
                        dest="crash_every",
                        help="mean writes between seeded primary crashes")
    parser.add_argument("--corrupt-every", type=int, default=450,
                        dest="corrupt_every",
                        help="mean writes between corruption rounds")
    parser.add_argument("--op-timeout", type=float, default=2.0,
                        dest="op_timeout",
                        help="per-operation deadline budget, seconds")
    args = parser.parse_args()

    report = run_soak(
        SoakConfig(
            workdir=args.workdir or tempfile.mkdtemp(prefix="repro-soak-"),
            seconds=args.seconds,
            seed=args.seed,
            transport=args.transport,
            crash_every=args.crash_every,
            corrupt_every=args.corrupt_every,
            op_timeout=args.op_timeout,
        )
    )
    print(report.summary())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_bench_report(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
