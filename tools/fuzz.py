"""Differential / crash-injection / fault-injection / thread fuzzer.

Usage:
    python tools/fuzz.py --mode engines --iterations 200
    python tools/fuzz.py --mode crash --seconds 30
    python tools/fuzz.py --mode faults --iterations 50
    python tools/fuzz.py --mode threads --iterations 20

Modes
-----
``engines``
    Each iteration draws a random geometry and command sequence, drives
    a randomly chosen engine (CONTROL 1/2, adaptive, macro-block) next
    to a plain sorted-set model, and checks contents plus every
    structural invariant after each command.

``crash``
    Each iteration drives a :class:`~repro.persistent.JournaledDenseFile`
    and injects a crash at a random physical write, then reopens and
    checks atomicity (the state must be the pre- or post-command state)
    and all invariants.

``faults``
    Each iteration builds a random backend stack (memory, disk, or
    buffered over disk) behind ``RetryingStore(FaultyStore(...))`` with
    a seeded transient-fault rate, checks every transient is absorbed
    with zero give-ups and the file matches the model, then (on durable
    backends) corrupts a page slot on disk and checks the scrub /
    degraded-read-only ladder.

``threads``
    Each iteration draws a random concurrency shape (thread count,
    batch width, storage stack, transient-fault rate) and runs the
    deterministic interleaving torture harness of
    :mod:`repro.concurrent.harness`: seeded client threads race
    batches of insert/delete/scan against one ``ThreadSafeDenseFile``
    and every batch must be linearizable against a sequential oracle.

On failure the tool prints the reproducing seed; re-run with
``--seed N --verbose`` to replay it.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    AdaptiveControl2Engine,
    Control1Engine,
    Control2Engine,
    DensityParams,
    JournaledDenseFile,
    MacroBlockControl2Engine,
)
from repro import DenseSequentialFile, PersistentDenseFile  # noqa: E402
from repro.core.errors import (  # noqa: E402
    ConfigurationError,
    ReadOnlyError,
)
from repro.storage.backend import (  # noqa: E402
    BufferedStore,
    DiskStore,
    MemoryStore,
)
from repro.storage.faults import (  # noqa: E402
    BackoffPolicy,
    FaultPlan,
    fault_tolerant_stack,
)
from repro.storage.scrub import scrub  # noqa: E402
from repro.storage.wal import FaultInjector, SimulatedCrash  # noqa: E402


def random_geometry(rng: random.Random):
    """A random legal (M, d, D) triple."""
    num_pages = rng.choice([4, 8, 16, 31, 64, 100])
    d = rng.choice([1, 2, 4, 8])
    log_m = max(1, (num_pages - 1).bit_length())
    slack = rng.choice([3 * log_m + 1, 3 * log_m + 5, 4 * log_m + 10])
    return num_pages, d, d + slack


def build_engine(rng: random.Random, num_pages: int, d: int, cap_d: int):
    """A random engine over the geometry (macro-block gets a tight D)."""
    choice = rng.randrange(4)
    params = DensityParams(num_pages=num_pages, d=d, D=cap_d)
    if choice == 0:
        return Control1Engine(params)
    if choice == 1:
        return Control2Engine(params)
    if choice == 2:
        return AdaptiveControl2Engine(params, base_budget=rng.randint(1, 3))
    try:
        return MacroBlockControl2Engine(num_pages=num_pages, d=d, D=d + 2)
    except ConfigurationError:
        return Control2Engine(params)


def fuzz_engines_once(seed: int, commands: int = 120, verbose: bool = False):
    """One differential iteration; raises on any divergence."""
    rng = random.Random(seed)
    num_pages, d, cap_d = random_geometry(rng)
    engine = build_engine(rng, num_pages, d, cap_d)
    cap = getattr(engine, "physical_max_records", engine.params.max_records)
    model = set()
    if verbose:
        print(f"seed={seed}: {engine.algorithm_name} M={num_pages} "
              f"d={d} D={cap_d} cap={cap}")
    for step in range(commands):
        roll = rng.random()
        key = rng.randrange(500)
        if roll < 0.55 and len(model) < cap and key not in model:
            engine.insert(key)
            model.add(key)
        elif roll < 0.8 and model:
            victim = rng.choice(sorted(model))
            engine.delete(victim)
            model.remove(victim)
        elif roll < 0.9 and model:
            lo = rng.randrange(500)
            hi = lo + rng.randrange(60)
            removed = engine.delete_range(lo, hi)
            victims = {k for k in model if lo <= k <= hi}
            assert removed == len(victims), f"seed={seed} step={step}"
            model -= victims
        elif roll < 0.95:
            engine.compact()
        stored = [record.key for record in engine.pagefile.iter_all()]
        assert stored == sorted(model), f"seed={seed} step={step}: contents"
        engine.validate()
    return engine


def fuzz_crash_once(seed: int, verbose: bool = False):
    """One crash-injection iteration; raises on an atomicity violation."""
    rng = random.Random(seed)
    directory = tempfile.mkdtemp(prefix="repro-fuzz-")
    path = os.path.join(directory, "f.dsf")
    injector = FaultInjector()
    dense = JournaledDenseFile.create(
        path, num_pages=16, d=8, D=8 + 16, injector=injector
    )
    live = set()

    def snapshot():
        return [record.key for record in dense.range(-1, 10**9)]

    for step in range(rng.randint(3, 10)):
        before = sorted(live)
        keys = [rng.randrange(300) for _ in range(rng.randint(1, 30))]
        fresh = [k for k in dict.fromkeys(keys) if k not in live]
        fresh = fresh[: max(0, dense.params.max_records - len(live))]
        injector.arm(rng.randrange(1, 40))
        crashed = False
        # Compute the prospective post-command state up front: if the
        # crash lands after the journal commit, recovery redoes the
        # whole command and the reopened file must show this state.
        if rng.random() < 0.7:
            prospective = sorted(set(live) | set(fresh))
            command = lambda: dense.insert_many(fresh)  # noqa: E731
        else:
            lo = rng.randrange(300)
            hi = lo + rng.randrange(80)
            prospective = sorted(k for k in live if not lo <= k <= hi)
            command = lambda: dense.delete_range(lo, hi)  # noqa: E731
        try:
            command()
            live = set(prospective)
        except SimulatedCrash:
            crashed = True
        injector.disarm()
        if crashed:
            dense._raw.close()
            dense = JournaledDenseFile.open(path, injector=injector)
            state = snapshot()
            assert state in (before, prospective), f"seed={seed} step={step}"
            live = set(state)
            if verbose:
                which = "post" if state == prospective else "pre"
                print(f"  seed={seed} step={step}: crashed, recovered "
                      f"to {which}-state")
        else:
            assert snapshot() == sorted(live), f"seed={seed} step={step}"
        dense.validate()
    dense.close()


def fuzz_faults_once(seed: int, verbose: bool = False):
    """One fault-absorption + scrub-ladder iteration; raises on failure."""
    rng = random.Random(seed)
    num_pages, d, cap = 16, 4, 24
    backend = rng.choice(["memory", "disk", "buffered"])
    directory = tempfile.mkdtemp(prefix="repro-faultfuzz-")
    path = os.path.join(directory, "f.dsf")
    if backend == "memory":
        inner = MemoryStore(num_pages)
    else:
        disk = DiskStore.create(path, num_pages=num_pages, d=d, D=cap)
        inner = disk if backend == "disk" else BufferedStore(disk, capacity=4)
    rate = rng.choice([0.0, 0.02, 0.1, 0.25])
    plan = FaultPlan(seed=seed, transient_rate=rate)
    stack = fault_tolerant_stack(
        inner, plan, BackoffPolicy(max_attempts=40)
    )
    dense = DenseSequentialFile(num_pages, d, cap, store=stack)
    model = set()
    if verbose:
        print(f"seed={seed}: faults on {backend}, transient_rate={rate}")
    for _ in range(rng.randint(20, 80)):
        roll = rng.random()
        key = rng.randrange(400)
        if roll < 0.6 and len(model) < num_pages * d and key not in model:
            dense.insert(key)
            model.add(key)
        elif roll < 0.85 and model:
            victim = rng.choice(sorted(model))
            dense.delete(victim)
            model.remove(victim)
        elif roll < 0.95:
            lo = rng.randrange(400)
            assert len(list(dense.range(lo, lo + 50))) == len(
                [k for k in model if lo <= k <= lo + 50]
            ), f"seed={seed}: scan under faults diverged"
    stored = [record.key for record in dense.engine.pagefile.iter_all()]
    assert stored == sorted(model), f"seed={seed}: contents diverged"
    dense.validate()
    # Every injected transient was absorbed; none leaked or gave up.
    assert stack.giveups == 0, f"seed={seed}: retry policy gave up"
    assert stack.retries == plan.transients_injected, (
        f"seed={seed}: {plan.transients_injected} transients but "
        f"{stack.retries} retries"
    )
    dense.close()

    if backend == "memory":
        return
    # Corruption leg: clobber one slot's length field (guaranteed CRC
    # failure), then walk the scrub / degraded ladder.
    victim_page = rng.randrange(1, num_pages + 1)
    header_size = 32  # ondisk.HEADER.size
    slot = disk.raw.slot_capacity
    with open(path, "r+b") as handle:
        handle.seek(header_size + (victim_page - 1) * slot)
        handle.write(b"\xff\xff\xff\xff")
    report = scrub(path)
    assert report.degraded and report.quarantined == (victim_page,), (
        f"seed={seed}: scrub missed the corrupted page"
    )
    degraded = PersistentDenseFile.open(path, on_corruption="degrade")
    assert degraded.read_only
    assert degraded.quarantined == (victim_page,)
    surviving = [record.key for record in degraded.range(-1, 10**9)]
    assert set(surviving) <= model, f"seed={seed}: degraded scan invented keys"
    try:
        degraded.insert(10**6)
        raise AssertionError(f"seed={seed}: degraded file accepted a write")
    except ReadOnlyError:
        pass
    degraded.validate()
    degraded.close()
    if verbose:
        print(f"  seed={seed}: quarantined page {victim_page}, "
              f"{len(model) - len(surviving)} records lost, "
              f"{len(surviving)} scannable")


def fuzz_threads_once(seed: int, verbose: bool = False):
    """One torture-harness iteration; raises on any detected violation."""
    from repro.concurrent.harness import StressConfig, run_stress

    rng = random.Random(seed)
    stack = rng.choice(["memory", "memory", "faulty", "disk", "buffered"])
    path = None
    if stack in ("disk", "buffered"):
        path = os.path.join(
            tempfile.mkdtemp(prefix="repro-threadfuzz-"), "f.dsf"
        )
    config = StressConfig(
        threads=rng.randint(2, 6),
        total_ops=rng.randint(60, 160),
        seed=seed,
        max_batch=rng.randint(2, 5),
        stack=stack,
        transient_rate=rng.choice([0.0, 0.02, 0.1]),
        path=path,
    )
    report = run_stress(config)
    if verbose:
        print(report.summary())
    assert report.ok, f"seed={seed}:\n{report.summary()}"
    # A clean run must never reject or time anything out: there is no
    # admission gate and deadlines are generous.
    assert report.timeouts == 0 and report.overloads == 0, (
        f"seed={seed}: unexpected timeouts/overloads"
    )


FUZZERS = {
    "engines": fuzz_engines_once,
    "crash": fuzz_crash_once,
    "faults": fuzz_faults_once,
    "threads": fuzz_threads_once,
}


def main() -> int:
    """Run the requested fuzz campaign; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", choices=sorted(FUZZERS), default="engines")
    parser.add_argument("--iterations", type=int, default=0)
    parser.add_argument("--seconds", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    single = FUZZERS[args.mode]
    if args.seed is not None:
        single(args.seed, verbose=True)
        print(f"seed {args.seed}: ok")
        return 0

    deadline = time.time() + args.seconds
    iteration = 0
    while True:
        if args.iterations and iteration >= args.iterations:
            break
        if not args.iterations and time.time() >= deadline:
            break
        seed = random.randrange(1 << 30)
        try:
            single(seed, verbose=args.verbose)
        except Exception as error:  # pragma: no cover  # lint: allow[errors] -- reported, then exit 1
            print(f"FAILURE at seed {seed}: {error!r}")
            print(f"replay: python tools/fuzz.py --mode {args.mode} "
                  f"--seed {seed} --verbose")
            return 1
        iteration += 1
    print(f"{args.mode}: {iteration} iterations clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
