"""Wall-clock benchmark harness over the scenario x backend matrix.

Usage:
    python tools/bench.py                              # full run -> BENCH_PR4.json
    python tools/bench.py --quick                      # CI smoke sizes
    python tools/bench.py --baseline BENCH_PR4.json    # run + regression gate
    python tools/bench.py --validate BENCH_PR4.json    # schema-check a report
    python tools/bench.py --compare OLD.json NEW.json  # gate two reports

Scenarios (see ``repro.benchmark``): bulk_load, insert_burst (the
batched ``insert_many`` fast path), mixed, and stream_scan (dense file
vs. the B+-tree baseline).  Each cell reports ops/sec, logical page
accesses (the paper's metered quantity — identical on every backend),
p50/p99 latency, and the backend stack's physical counters.

Exit codes: 0 ok, 2 invalid report, 4 regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import benchmark  # noqa: E402


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str) -> int:
    problems = benchmark.validate_report(_load(path))
    if problems:
        print(f"{path}: INVALID")
        for problem in problems:
            print(f"  {problem}")
        return 2
    print(f"{path}: valid {benchmark.SCHEMA} report")
    return 0


def _compare(baseline_path: str, current_path: str, max_regression) -> int:
    baseline = _load(baseline_path)
    current = _load(current_path)
    for path, report in ((baseline_path, baseline), (current_path, current)):
        problems = benchmark.validate_report(report)
        if problems:
            print(f"{path}: INVALID ({'; '.join(problems)})")
            return 2
    kwargs = {}
    if max_regression is not None:
        kwargs["max_regression"] = max_regression
    regressions = benchmark.compare_reports(baseline, current, **kwargs)
    if regressions:
        print(f"REGRESSION ({current_path} vs {baseline_path}):")
        for line in regressions:
            print(f"  {line}")
        return 4
    print(f"no regression ({current_path} vs {baseline_path})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shrink operation counts")
    parser.add_argument("--ops", type=int, default=None,
                        help="records per scenario (default 4000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_PR4.json",
                        help="JSON report path ('-' to skip writing)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=list(benchmark.SCENARIOS), default=None,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--backend", action="append", dest="backends",
                        choices=list(benchmark.BACKENDS), default=None,
                        help="benchmark this backend (repeatable; "
                        "default: memory+buffered)")
    parser.add_argument("--baseline", default=None,
                        help="compare the fresh run against this report")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="allowed throughput drop in percent (default "
                        f"{benchmark.DEFAULT_MAX_REGRESSION:.0f})")
    parser.add_argument("--validate", metavar="REPORT", default=None,
                        help="schema-check an existing report and exit")
    parser.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"), default=None,
                        help="gate two existing reports and exit")
    args = parser.parse_args()

    if args.validate:
        return _validate(args.validate)
    if args.compare:
        return _compare(args.compare[0], args.compare[1], args.max_regression)

    kwargs = dict(
        seed=args.seed,
        quick=args.quick,
        scenarios=tuple(args.scenarios or benchmark.SCENARIOS),
        backends=tuple(args.backends or ("memory", "buffered")),
    )
    if args.ops is not None:
        kwargs["ops"] = args.ops
    report = benchmark.run_bench(**kwargs)
    print(benchmark.render_report(report))
    if args.out and args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    if args.baseline:
        baseline = _load(args.baseline)
        problems = benchmark.validate_report(baseline)
        if problems:
            print(f"{args.baseline}: INVALID ({'; '.join(problems)})")
            return 2
        kwargs = {}
        if args.max_regression is not None:
            kwargs["max_regression"] = args.max_regression
        regressions = benchmark.compare_reports(baseline, report, **kwargs)
        if regressions:
            print(f"REGRESSION vs {args.baseline}:")
            for line in regressions:
                print(f"  {line}")
            return 4
        print(f"no regression vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
