"""Wall-clock benchmark harness over the scenario x backend matrix.

Usage:
    python tools/bench.py                              # full run -> BENCH_PR9.json
    python tools/bench.py --quick                      # CI smoke sizes
    python tools/bench.py --baseline BENCH_PR9.json    # run + regression gate
    python tools/bench.py --validate BENCH_PR9.json    # schema-check a report
    python tools/bench.py --compare OLD.json NEW.json  # gate two reports
    python tools/bench.py --profile                    # hot functions -> stderr
    python tools/bench.py --compare-page-formats       # packed vs object pages

Scenarios (see ``repro.benchmark``): bulk_load, insert_burst (the
batched ``insert_many`` fast path), mixed, and stream_scan (dense file
vs. the B+-tree baseline).  Each cell reports ops/sec, logical page
accesses (the paper's metered quantity — identical on every backend),
p50/p99 latency, and the backend stack's physical counters.

Exit codes: 0 ok, 2 invalid report, 4 regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import benchmark  # noqa: E402


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str) -> int:
    problems = benchmark.validate_report(_load(path))
    if problems:
        print(f"{path}: INVALID")
        for problem in problems:
            print(f"  {problem}")
        return 2
    print(f"{path}: valid {benchmark.SCHEMA} report")
    return 0


def _compare(baseline_path: str, current_path: str, max_regression) -> int:
    baseline = _load(baseline_path)
    current = _load(current_path)
    for path, report in ((baseline_path, baseline), (current_path, current)):
        problems = benchmark.validate_report(report)
        if problems:
            print(f"{path}: INVALID ({'; '.join(problems)})")
            return 2
    kwargs = {}
    if max_regression is not None:
        kwargs["max_regression"] = max_regression
    regressions = benchmark.compare_reports(baseline, current, **kwargs)
    if regressions:
        print(f"REGRESSION ({current_path} vs {baseline_path}):")
        for line in regressions:
            print(f"  {line}")
        return 4
    print(f"no regression ({current_path} vs {baseline_path})")
    return 0


#: Minimum allowed geometric-mean packed/object throughput ratio.  On
#: the non-serializing smoke backends the true ratio sits near or above
#: 1.0 with heavy single-trial jitter (±30% on shared runners), so the
#: gate triggers only when packed is *systematically* slower — a real
#: representation regression, not noise.
MIN_FORMAT_RATIO = 0.70


def _compare_page_formats(kwargs: dict, min_ratio: float) -> int:
    """Run the same matrix with packed and object pages; compare cells.

    Two gates.  Each (scenario, backend) cell must report *identical*
    logical page accesses — the packed layout is a pure representation
    change, so any difference means the layouts diverged behaviourally
    (exit 4).  And packed pages must not be slower than object pages:
    the geometric mean of the per-cell throughput ratios has to clear
    ``min_ratio`` (exit 4 below it).
    """
    kwargs = dict(kwargs)
    kwargs.pop("page_format", None)
    packed = benchmark.run_bench(page_format="packed", **kwargs)
    plain = benchmark.run_bench(page_format="object", **kwargs)
    plain_cells = {
        (cell["scenario"], cell["backend"]): cell
        for cell in plain["results"]
    }
    divergences = []
    ratios = []
    print("packed vs object pages "
          f"(ops={packed['ops']}, quick={packed['quick']}):")
    for cell in packed["results"]:
        key = (cell["scenario"], cell["backend"])
        other = plain_cells.get(key)
        if other is None:
            continue
        ratio = (
            cell["ops_per_sec"] / other["ops_per_sec"]
            if other["ops_per_sec"] > 0 else float("inf")
        )
        ratios.append(ratio)
        marker = "ok"
        if cell["page_accesses"] != other["page_accesses"]:
            marker = "ACCESS DIVERGENCE"
            divergences.append(
                f"{key[0]}/{key[1]}: packed {cell['page_accesses']} vs "
                f"object {other['page_accesses']} logical accesses"
            )
        print(f"  {key[0]:<13} {key[1]:<9} packed/object throughput "
              f"{ratio:5.2f}x  accesses {cell['page_accesses']} vs "
              f"{other['page_accesses']}  [{marker}]")
    if divergences:
        print("page-format divergence (identical logical accounting "
              "is required):")
        for line in divergences:
            print(f"  {line}")
        return 4
    print("page formats agree on logical page accesses")
    if ratios:
        geomean = 1.0
        for ratio in ratios:
            geomean *= ratio
        geomean **= 1.0 / len(ratios)
        print(f"geometric-mean packed/object throughput {geomean:.2f}x "
              f"(floor {min_ratio:.2f}x)")
        if geomean < min_ratio:
            print("packed pages are systematically slower than object "
                  "pages — representation regression")
            return 4
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shrink operation counts")
    parser.add_argument("--ops", type=int, default=None,
                        help="records per scenario (default 4000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_PR9.json",
                        help="JSON report path ('-' to skip writing)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=list(benchmark.SCENARIOS), default=None,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--backend", action="append", dest="backends",
                        choices=list(benchmark.BACKENDS), default=None,
                        help="benchmark this backend (repeatable; "
                        "default: memory+buffered)")
    parser.add_argument("--baseline", default=None,
                        help="compare the fresh run against this report")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="allowed throughput drop in percent (default "
                        f"{benchmark.DEFAULT_MAX_REGRESSION:.0f})")
    parser.add_argument("--validate", metavar="REPORT", default=None,
                        help="schema-check an existing report and exit")
    parser.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"), default=None,
                        help="gate two existing reports and exit")
    parser.add_argument("--page-format", default="packed",
                        choices=["packed", "object"],
                        help="in-core page representation for the local "
                        "backends (default: packed)")
    parser.add_argument("--compare-page-formats", action="store_true",
                        help="run the matrix once per page format; exit 4 "
                        "on any logical-access divergence or if packed "
                        "pages are systematically slower")
    parser.add_argument("--min-format-ratio", type=float,
                        default=MIN_FORMAT_RATIO, metavar="R",
                        help="geometric-mean packed/object throughput "
                        "floor for --compare-page-formats (default "
                        f"{MIN_FORMAT_RATIO})")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; print the hottest "
                        "functions (cumulative) to stderr")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="write the profile table to FILE instead of "
                        "stderr (implies --profile)")
    parser.add_argument("--profile-top", type=int, default=25, metavar="N",
                        help="functions in the profile table (default 25)")
    args = parser.parse_args()

    if args.validate:
        return _validate(args.validate)
    if args.compare:
        return _compare(args.compare[0], args.compare[1], args.max_regression)

    kwargs = dict(
        seed=args.seed,
        quick=args.quick,
        scenarios=tuple(args.scenarios or benchmark.SCENARIOS),
        backends=tuple(args.backends or ("memory", "buffered")),
        page_format=args.page_format,
    )
    if args.ops is not None:
        kwargs["ops"] = args.ops

    if args.compare_page_formats:
        return _compare_page_formats(kwargs, args.min_format_ratio)

    if args.profile or args.profile_out is not None:
        report, table = benchmark.run_bench_profiled(
            profile_top=args.profile_top, **kwargs
        )
        if args.profile_out:
            with open(args.profile_out, "w") as handle:
                handle.write(table)
            print(f"profile written to {args.profile_out}")
        else:
            sys.stderr.write(table)
        print("note: wall-clock figures below include cProfile overhead")
    else:
        report = benchmark.run_bench(**kwargs)
    print(benchmark.render_report(report))
    if args.out and args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    if args.baseline:
        baseline = _load(args.baseline)
        problems = benchmark.validate_report(baseline)
        if problems:
            print(f"{args.baseline}: INVALID ({'; '.join(problems)})")
            return 2
        kwargs = {}
        if args.max_regression is not None:
            kwargs["max_regression"] = args.max_regression
        regressions = benchmark.compare_reports(baseline, report, **kwargs)
        if regressions:
            print(f"REGRESSION vs {args.baseline}:")
            for line in regressions:
                print(f"  {line}")
            return 4
        print(f"no regression vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
