"""Shim for legacy editable installs (offline environments lacking wheel)."""

from setuptools import setup

setup()
