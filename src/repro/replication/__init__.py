"""WAL-shipping replication: shipper, replica, failover, soak runner.

The journal that gives :class:`~repro.persistent.JournaledDenseFile`
crash atomicity is also, record for record, a replication log.  This
package ships it: a :class:`JournalShipper` tails committed
:class:`~repro.storage.wal.TransactionRecord` frames onto a transport
(:class:`QueueTransport` in-process, :class:`DirectoryTransport` across
processes), a :class:`Replica` replays them crash-atomically onto its
own store and serves prefix-consistent reads under deadline budgets,
and :class:`Failover` orchestrates promote-on-crash with a built-in
proof obligation: the promoted state must equal the primary's committed
state at the promoted LSN (checked against :class:`StateRecorder`
digests).  :func:`run_soak` wires all of it into a long-running SLO
soak with seeded crashes, torn writes and bit flips.

Quickstart::

    primary = JournaledDenseFile.create("a.dsf", num_pages=64, d=8, D=40)
    transport = QueueTransport()
    replica = bootstrap_replica(primary, "b.dsf")
    pair = Failover(primary, replica, transport)
    primary.insert(42, "answer")
    pair.sync()                      # ship + apply; lag back to 0
    replica.search(42)               # prefix-consistent replica read
    ...                              # primary crashes
    result = pair.promote_after_crash()
    assert result.verified           # a committed prefix, provably
    new_primary = result.promoted    # writable, fully recovered
"""

from .failover import (
    Failover,
    PromotionResult,
    StateRecorder,
    file_digest,
    records_digest,
)
from .replica import Replica, bootstrap_replica
from .shipper import JournalShipper
from .soak import SoakConfig, SoakReport, run_soak
from .transport import DirectoryTransport, QueueTransport

__all__ = [
    "DirectoryTransport",
    "Failover",
    "JournalShipper",
    "PromotionResult",
    "QueueTransport",
    "Replica",
    "SoakConfig",
    "SoakReport",
    "StateRecorder",
    "bootstrap_replica",
    "file_digest",
    "records_digest",
    "run_soak",
]
