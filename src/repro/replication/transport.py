"""Transports carrying committed transaction records to a replica.

A transport is a tiny ordered mailbox of encoded
:class:`~repro.storage.wal.TransactionRecord` frames with three
operations: ``publish`` (primary side), ``poll`` (replica side, records
strictly after a sequence number, in order) and ``ack`` (prune records
the replica has durably applied).  Two implementations:

* :class:`QueueTransport` — an in-process, lock-guarded list.  Zero
  configuration; the default for tests and single-process soaks.
* :class:`DirectoryTransport` — a "shipping directory" of one file per
  record, named by zero-padded sequence so a plain sorted listing *is*
  the log order.  Each file is written to a temp name and
  ``os.replace``d in, so a reader never observes a half-written record;
  torn or tampered files fail their CRC on decode and surface as
  :class:`~repro.core.errors.ReplicationError` rather than being
  replayed.  Works across processes (and, with a network filesystem,
  across hosts).

Both are single-consumer: ``ack`` physically discards records, so one
replica owns a transport.  Fan-out wants one transport per replica.
"""

from __future__ import annotations

import os
import threading
from typing import List, Protocol

from ..core.errors import ReplicationError
from ..storage.ondisk import StorageError
from ..storage.wal import TransactionRecord

RECORD_SUFFIX = ".txn"
_SEQ_WIDTH = 20  # zero-padded u64 — lexicographic order == numeric order


class Transport(Protocol):
    """The structural contract every transport satisfies."""

    def publish(self, record: TransactionRecord) -> None:
        """Append one committed record to the mailbox."""

    def poll(
        self, after_sequence: int, limit: int = 64
    ) -> List[TransactionRecord]:
        """Up to ``limit`` records with sequence > ``after_sequence``."""

    def ack(self, sequence: int) -> None:
        """Discard records with sequence <= ``sequence`` (applied)."""

    def latest_sequence(self) -> int:
        """Highest sequence currently held (0 when empty)."""


class QueueTransport:
    """In-process transport: a lock-guarded ordered record buffer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[TransactionRecord] = []
        #: Records ever published (survives ack pruning).
        self.published = 0

    def publish(self, record: TransactionRecord) -> None:
        """Append one committed record to the buffer."""
        with self._lock:
            self._records.append(record)
            self.published += 1

    def poll(
        self, after_sequence: int, limit: int = 64
    ) -> List[TransactionRecord]:
        """Up to ``limit`` records with sequence > ``after_sequence``."""
        with self._lock:
            pending = [
                record
                for record in self._records
                if record.sequence > after_sequence
            ]
        pending.sort(key=lambda record: record.sequence)
        return pending[:limit]

    def ack(self, sequence: int) -> None:
        """Discard records with sequence <= ``sequence`` (applied)."""
        with self._lock:
            self._records = [
                record
                for record in self._records
                if record.sequence > sequence
            ]

    def latest_sequence(self) -> int:
        """Highest sequence currently held (0 when empty)."""
        with self._lock:
            if not self._records:
                return 0
            return max(record.sequence for record in self._records)


class DirectoryTransport:
    """File-per-record transport over a shipping directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.published = 0

    def _path(self, sequence: int) -> str:
        return os.path.join(
            self.directory, f"{sequence:0{_SEQ_WIDTH}d}{RECORD_SUFFIX}"
        )

    def _sequences(self) -> List[int]:
        sequences = []
        for name in os.listdir(self.directory):
            stem, ext = os.path.splitext(name)
            if ext == RECORD_SUFFIX and stem.isdigit():
                sequences.append(int(stem))
        sequences.sort()
        return sequences

    def publish(self, record: TransactionRecord) -> None:
        """Durably write one record file (atomic rename, fsynced)."""
        scratch = self._path(record.sequence) + ".tmp"
        with open(scratch, "wb") as handle:
            handle.write(record.encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self._path(record.sequence))
        self.published += 1

    def poll(
        self, after_sequence: int, limit: int = 64
    ) -> List[TransactionRecord]:
        """Decode up to ``limit`` records after ``after_sequence``.

        A file that fails to decode (torn copy, bit rot in transit) is a
        :class:`~repro.core.errors.ReplicationError`: the replica must
        stop at the gap rather than replay a damaged or out-of-order
        record.
        """
        records: List[TransactionRecord] = []
        for sequence in self._sequences():
            if sequence <= after_sequence:
                continue
            if len(records) >= limit:
                break
            path = self._path(sequence)
            with open(path, "rb") as handle:
                raw = handle.read()
            try:
                record = TransactionRecord.decode(raw)
            except StorageError as error:
                raise ReplicationError(
                    f"shipped record {path} is undecodable: {error}"
                ) from error
            if record.sequence != sequence:
                raise ReplicationError(
                    f"shipped record {path} carries sequence "
                    f"{record.sequence}, expected {sequence}"
                )
            records.append(record)
        return records

    def ack(self, sequence: int) -> None:
        """Delete record files with sequence <= ``sequence``."""
        for existing in self._sequences():
            if existing <= sequence:
                os.unlink(self._path(existing))

    def latest_sequence(self) -> int:
        """Highest sequence currently shipped (0 when empty)."""
        sequences = self._sequences()
        return sequences[-1] if sequences else 0
