"""Replica: replays shipped transaction records onto its own store.

A replica owns a full copy of the primary's file plus its own
:class:`~repro.storage.wal.TransactionJournal`.  Every shipped record
is applied with the same journal-then-apply-then-retire protocol the
primary uses (journal the pages under the *primary's* sequence number,
fsync, write the pages, rename the journal to the applied slot) — so a
replica crash at any point recovers exactly like a primary crash, and
the applied LSN is always durable on the replica's own disk.

Reads run under a :class:`~repro.concurrent.FairRWLock` with deadline
budgets, against a lazily (re)built read view: the replica applies raw
page images without interpreting them, and mounts a fresh
:class:`~repro.persistent.PersistentDenseFile` over the store when a
reader first arrives after an apply.  Because applies are whole
committed transactions, every view — and every
:meth:`Replica.snapshot` — is a *prefix-consistent* state: exactly the
primary's state at some committed sequence, never a mid-transaction
mixture.

:meth:`Replica.promote` turns the replica into a writable primary: it
runs the standard journal recovery (discard a torn tail, replay to the
last durable commit) via :meth:`JournaledDenseFile.open` and retires
this object — further reads raise
:class:`~repro.core.errors.StaleReplicaError`, because the promoted
primary now owns the pages and a stale handle could observe its
mid-commit states.
"""

from __future__ import annotations

import shutil
import time
from typing import Any, Callable, List, Optional, Tuple

from ..concurrent import Deadline, FairRWLock
from ..core.errors import ReplicationError, StaleReplicaError
from ..persistent import JournaledDenseFile, PersistentDenseFile
from ..records import Record
from ..storage.ondisk import DiskPagedStore
from ..storage.wal import TransactionJournal, TransactionRecord


class Replica:
    """A warm standby applying shipped records, readable at any prefix."""

    def __init__(
        self,
        path: str,
        op_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = path
        self.op_timeout = op_timeout
        self._clock = clock
        self._lock = FairRWLock(clock=clock)
        self.journal = TransactionJournal(path + ".journal")
        # Crash recovery: a committed journal left by a replica that
        # died mid-apply is replayed (idempotent redo), a torn one is
        # discarded — identical to primary recovery.
        committed = self.journal.recover()
        if committed is not None:
            with DiskPagedStore.open(path) as store:
                for page, payload in sorted(committed.items()):
                    store.write_page_payload(page, payload)
                store.flush()
            self.journal.mark_applied()
        self._store: Optional[DiskPagedStore] = DiskPagedStore.open(path)
        self._view: Optional[PersistentDenseFile] = None
        self._promoted = False
        #: Shipped records applied by this object (duplicates excluded).
        self.records_applied = 0
        #: Already-applied records skipped idempotently.
        self.duplicates_skipped = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def applied_sequence(self) -> int:
        """LSN of the last transaction applied to this replica."""
        return self.journal.sequence

    def lag(self, primary_sequence: int) -> int:
        """Committed primary transactions this replica has not applied."""
        return max(0, primary_sequence - self.applied_sequence)

    def _budget(
        self, timeout: Optional[float], deadline: Optional[Deadline]
    ) -> Deadline:
        return Deadline.resolve(
            timeout, deadline, self.op_timeout, self._clock
        )

    def _check_serving(self) -> None:
        if self._promoted:
            raise StaleReplicaError(
                f"replica {self.path} was promoted; this handle is "
                "retired — read from the promoted primary instead"
            )
        if self._store is None:
            raise ReplicationError(f"replica {self.path} is closed")

    # ------------------------------------------------------------------
    # applying shipped records
    # ------------------------------------------------------------------

    def apply(
        self,
        record: TransactionRecord,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Apply one shipped record; False for an idempotent duplicate.

        Records must arrive in sequence order: a gap means the
        transport lost records, and patching over it would silently
        fork the replica from the primary's history — that raises
        :class:`~repro.core.errors.StaleReplicaError` (re-seed the
        replica from a fresh copy).
        """
        budget = self._budget(timeout, deadline)
        with self._lock.write_locked(budget):
            self._check_serving()
            assert self._store is not None
            applied = self.journal.sequence
            if record.sequence <= applied:
                self.duplicates_skipped += 1
                return False
            if record.sequence != applied + 1:
                raise StaleReplicaError(
                    f"replica {self.path} is at sequence {applied} but "
                    f"record {record.sequence} arrived — records "
                    f"{applied + 1}..{record.sequence - 1} were lost in "
                    "transport; re-seed the replica"
                )
            self.journal.write_transaction(
                record.pages, sequence=record.sequence
            )
            for page, payload in sorted(record.pages.items()):
                self._store.write_page_payload(page, payload)
            self._store.flush()
            self.journal.mark_applied()
            self._invalidate_view_locked()
            self.records_applied += 1
            return True

    def catch_up(
        self,
        transport: Any,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        batch: int = 64,
    ) -> int:
        """Poll and apply every available record; returns applies done."""
        budget = self._budget(timeout, deadline)
        applied = 0
        while True:
            records = transport.poll(self.applied_sequence, limit=batch)
            if not records:
                return applied
            for record in records:
                if self.apply(record, deadline=budget):
                    applied += 1
            transport.ack(self.applied_sequence)
            budget.check("replica catch-up")

    # ------------------------------------------------------------------
    # reading (prefix-consistent snapshots)
    # ------------------------------------------------------------------

    def _invalidate_view_locked(self) -> None:
        if self._view is not None:
            self._view.close()
            self._view = None

    def _with_view(self, budget: Deadline, reader: Callable[..., Any]) -> Any:
        """Run ``reader(view)`` under the read lock, building if needed."""
        while True:
            with self._lock.read_locked(budget):
                self._check_serving()
                if self._view is not None:
                    return reader(self._view)
            with self._lock.write_locked(budget):
                self._check_serving()
                if self._view is None:
                    self._view = PersistentDenseFile.open(
                        self.path, write_through=False
                    )
            budget.check("replica read")

    def snapshot(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[int, Tuple[Tuple[Any, Any], ...]]:
        """``(applied_sequence, records)`` as one atomic observation.

        The pair is taken under a single read-lock hold, so the record
        stream is exactly the primary's committed state at that
        sequence — the property the replica-reads stress schedule
        checks against the primary-side digest recorder.
        """
        budget = self._budget(timeout, deadline)

        def _read(view: PersistentDenseFile) -> Tuple[int, Tuple]:
            records = tuple(
                (record.key, record.value)
                for record in view.engine.pagefile.iter_all()
            )
            return (self.journal.sequence, records)

        return self._with_view(budget, _read)

    def search(
        self,
        key: Any,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Point lookup against the current prefix-consistent view."""
        budget = self._budget(timeout, deadline)
        return self._with_view(budget, lambda view: view.search(key))

    def scan(
        self,
        start_key: Any,
        count: int,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[Record]:
        """Ordered scan against the current prefix-consistent view."""
        budget = self._budget(timeout, deadline)
        return self._with_view(
            budget, lambda view: view.scan(start_key, count)
        )

    def __len__(self) -> int:
        budget = self._budget(None, None)
        return int(self._with_view(budget, len))

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------

    def promote(
        self,
        injector: Any = None,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> JournaledDenseFile:
        """Recover and reopen this replica as a writable primary.

        Runs the standard journal recovery (discard a torn tail, replay
        to the last durable commit) and rebuilds the full engine state
        from disk.  This handle is retired: subsequent reads raise
        :class:`~repro.core.errors.StaleReplicaError`.
        """
        budget = self._budget(timeout, deadline)
        with self._lock.write_locked(budget):
            self._check_serving()
            assert self._store is not None
            self._invalidate_view_locked()
            self._store.close()
            self._store = None
            self._promoted = True
        return JournaledDenseFile.open(self.path, injector=injector)

    def close(self) -> None:
        """Release file handles (idempotent)."""
        budget = self._budget(None, None)
        with self._lock.write_locked(budget):
            self._invalidate_view_locked()
            if self._store is not None:
                self._store.close()
                self._store = None


def bootstrap_replica(
    primary: JournaledDenseFile,
    replica_path: str,
    op_timeout: float = 5.0,
    clock: Callable[[], float] = time.monotonic,
) -> Replica:
    """Seed a new replica from a full copy of ``primary``'s file.

    The primary must be quiescent for the copy: no uncommitted dirty
    pages (commit or roll back the open transaction first) and no
    concurrent writers until this returns.  The copied file already
    holds every page through the primary's durable sequence, so the
    replica's journal is stamped with that LSN and shipping resumes
    from there.
    """
    if primary._dirty:
        raise ReplicationError(
            "cannot bootstrap a replica from a primary with an "
            "uncommitted transaction; commit or close the group first"
        )
    primary._raw.flush()
    shutil.copyfile(primary.path, replica_path)
    if primary.durable_sequence > 0:
        TransactionJournal(replica_path + ".journal").stamp_applied(
            primary.durable_sequence
        )
    return Replica(replica_path, op_timeout=op_timeout, clock=clock)
