"""JournalShipper: tail a primary's journal onto a transport.

The shipper subscribes to the primary's
:class:`~repro.storage.wal.TransactionJournal`, so it sees every
committed :class:`~repro.storage.wal.TransactionRecord` on the
committing thread, immediately after the commit fsync and before the
main-store apply.  That ordering is the whole correctness argument: a
transaction that reaches the shipper is durable on the primary, and a
crash before the fsync reaches neither the primary's disk nor the
replica — there is no window where the replica runs ahead of what the
primary would recover to (the replica may be *behind*, which is what
:meth:`JournalShipper.lag_records` measures and
:meth:`~repro.replication.Failover.sync` drains).

Publish failures (a full disk under a
:class:`~repro.replication.DirectoryTransport`, say) must not fail the
primary's commit: the record stays in an ordered pending queue and is
retried on the next commit or an explicit :meth:`JournalShipper.flush`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque

from ..core.errors import ReproError
from ..storage.wal import TransactionJournal, TransactionRecord
from .transport import Transport


class JournalShipper:
    """Streams committed journal records onto a transport, in order."""

    def __init__(
        self, journal: TransactionJournal, transport: Transport
    ) -> None:
        self.journal = journal
        self.transport = transport
        self._lock = threading.Lock()
        self._pending: Deque[TransactionRecord] = deque()
        #: Records successfully handed to the transport.
        self.shipped = 0
        #: Publish attempts that failed (record retained for retry).
        self.publish_failures = 0
        self.detached = False
        journal.subscribe(self._on_commit)

    def _on_commit(self, record: TransactionRecord) -> None:
        """Journal subscriber: enqueue and opportunistically drain."""
        with self._lock:
            self._pending.append(record)
            self._drain_locked()

    def _drain_locked(self) -> None:
        while self._pending:
            record = self._pending[0]
            try:
                self.transport.publish(record)
            except (OSError, ReproError):
                # The commit itself already succeeded on the primary;
                # keep the record queued (order preserved) and surface
                # the problem through the failure counter and lag.
                self.publish_failures += 1
                return
            self._pending.popleft()
            self.shipped += 1

    def flush(self) -> bool:
        """Retry any queued publishes; True when fully drained."""
        with self._lock:
            self._drain_locked()
            return not self._pending

    def lag_records(self) -> int:
        """Committed records not yet handed to the transport."""
        with self._lock:
            return len(self._pending)

    def detach(self) -> None:
        """Stop tailing the journal (idempotent; queue is kept)."""
        self.journal.unsubscribe(self._on_commit)
        self.detached = True
