"""Failover orchestration: ship, watch lag, promote after a crash.

:class:`Failover` wires one primary–replica pair together: a
:class:`~repro.replication.JournalShipper` tails the primary's journal
onto a transport, :meth:`Failover.sync` drains it into the replica, and
:meth:`Failover.promote_after_crash` is the path the operator (or the
soak runner) takes when the primary dies — catch the replica up on
everything the transport still holds, promote it, and *prove* the
promotion correct.

The proof obligation is the issue's central property: a crash seeded at
any byte/record boundary of the primary must yield a promoted replica
whose record stream equals a **committed prefix** of the primary's
history.  :class:`StateRecorder` makes that checkable in-process: it
also subscribes to the primary's journal, so at every commit fsync it
captures a digest of the primary's full record stream, keyed by
sequence.  After promotion, the promoted file's digest must equal the
recorded digest at the promoted LSN — any mismatch is reported as a
finding in :class:`PromotionResult`, never swallowed.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..persistent import JournaledDenseFile
from ..storage.wal import TransactionRecord
from .replica import Replica
from .shipper import JournalShipper


def file_digest(dense: Any) -> str:
    """Digest of a dense file's full record stream, in key order."""
    hasher = hashlib.sha256()
    for record in dense.engine.pagefile.iter_all():
        hasher.update(repr((record.key, record.value)).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def records_digest(records: Any) -> str:
    """Digest of an iterable of ``(key, value)`` pairs, as observed."""
    hasher = hashlib.sha256()
    for key, value in records:
        hasher.update(repr((key, value)).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


class StateRecorder:
    """Records the primary's state digest at every committed sequence.

    Subscribes to the primary's journal, so the capture runs on the
    committing thread right after the commit fsync — at which point the
    engine's memory holds exactly the post-transaction state.  The
    digests are the ground truth the replica-reads stress schedule and
    post-promotion verification compare against.

    ``window`` bounds memory on long soaks by forgetting digests more
    than that many sequences behind the newest (a replica further
    behind than the window cannot be verified, only re-seeded).
    """

    def __init__(
        self, primary: JournaledDenseFile, window: Optional[int] = None
    ) -> None:
        self.primary = primary
        self.window = window
        self._lock = threading.Lock()
        self._digests: Dict[int, str] = {}
        self._digests[primary.durable_sequence] = file_digest(primary)
        primary.journal.subscribe(self._on_commit)

    def _on_commit(self, record: TransactionRecord) -> None:
        digest = file_digest(self.primary)
        with self._lock:
            self._digests[record.sequence] = digest
            if self.window is not None:
                horizon = record.sequence - self.window
                for sequence in [
                    s for s in self._digests if s < horizon
                ]:
                    del self._digests[sequence]

    def digest_at(self, sequence: int) -> Optional[str]:
        """The primary's digest at ``sequence`` (None if unrecorded)."""
        with self._lock:
            return self._digests.get(sequence)

    def detach(self) -> None:
        """Stop recording (idempotent; recorded digests are kept)."""
        self.primary.journal.unsubscribe(self._on_commit)


@dataclass
class PromotionResult:
    """Outcome of :meth:`Failover.promote_after_crash`."""

    #: The replica's store reopened as a writable primary.
    promoted: JournaledDenseFile
    #: The LSN the promoted primary recovered to.
    sequence: int
    #: None when the promoted state verified as a committed prefix of
    #: the old primary's history; otherwise a description of the
    #: mismatch (an unrecovered-corruption finding).
    finding: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.finding is None


class Failover:
    """One primary–replica pair: shipping, lag, promote-on-crash."""

    def __init__(
        self,
        primary: JournaledDenseFile,
        replica: Replica,
        transport: Any,
        shipper: Optional[JournalShipper] = None,
        recorder: Optional[StateRecorder] = None,
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.transport = transport
        self.shipper = shipper or JournalShipper(primary.journal, transport)
        self.recorder = recorder or StateRecorder(primary)
        #: Promotions performed through this orchestrator.
        self.failovers = 0

    def sync(self, timeout: Optional[float] = None) -> int:
        """Drain shipper + transport into the replica; applies done."""
        self.shipper.flush()
        return self.replica.catch_up(self.transport, timeout=timeout)

    def lag(self) -> int:
        """Committed primary transactions the replica has not applied."""
        return self.replica.lag(self.primary.durable_sequence)

    def promote_after_crash(
        self,
        injector: Any = None,
        timeout: Optional[float] = None,
    ) -> PromotionResult:
        """Promote the replica after the primary died; verify the result.

        The dead primary's in-memory object is not touched (it is
        unusable after a crash); everything the shipper managed to hand
        to the transport is drained into the replica, which is then
        promoted through full journal recovery.  The promoted file's
        digest is checked against the recorder's digest at the promoted
        LSN — the promoted state must be exactly the primary's
        committed state at that sequence, i.e. a committed prefix of
        its history.
        """
        self.shipper.detach()
        self.recorder.detach()
        self.shipper.flush()
        self.replica.catch_up(self.transport, timeout=timeout)
        promoted = self.replica.promote(injector=injector, timeout=timeout)
        sequence = promoted.durable_sequence
        expected = self.recorder.digest_at(sequence)
        finding: Optional[str] = None
        if expected is None:
            finding = (
                f"promoted replica recovered to sequence {sequence}, "
                "which the primary never committed (or it fell outside "
                "the recorder window)"
            )
        else:
            actual = file_digest(promoted)
            if actual != expected:
                finding = (
                    f"promoted replica at sequence {sequence} diverges "
                    "from the primary's committed state at that sequence "
                    f"(digest {actual[:12]}.. != {expected[:12]}..)"
                )
        self.failovers += 1
        return PromotionResult(promoted, sequence, finding)
