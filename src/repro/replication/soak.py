"""Long-soak SLO runner: primary + replica under fire, with receipts.

:func:`run_soak` drives a primary–replica pair for a wall-clock budget
under a seeded mixed workload while three hazard generators run:

* **crash rounds** — every ``crash_every`` ops the
  :class:`~repro.storage.faults.FaultPlan` countdown is armed at a
  seeded offset, so a :class:`~repro.storage.faults.SimulatedCrash`
  lands at an arbitrary journal/apply write boundary of a later
  transaction.  The runner then exercises the full failover path:
  scrub the dead primary (its recovery must come back healthy), promote
  the replica through :meth:`~repro.replication.Failover.
  promote_after_crash` (the promoted digest must equal the primary's
  committed state at the promoted LSN), and re-seed the old primary's
  path as the next replica — the pair ping-pongs between the two paths
  for as many failovers as the clock allows.
* **corruption rounds** — every ``corrupt_every`` ops a torn write or
  bit flip is armed at the very next physical page write, and once it
  has bitten, the next write is crashed.  That ordering makes the
  damage provably recoverable (the corrupt page belongs to the last
  applied transaction, whose retained journal image heals it), so any
  page scrub cannot repair is a real finding, not noise.
* **load** — reader threads on the primary (through the
  :class:`~repro.concurrent.ThreadSafeDenseFile` admission gate and
  deadline budgets) and on the replica, where every snapshot is checked
  for prefix consistency against the primary-side
  :class:`~repro.replication.StateRecorder` digests.

The result is a :class:`SoakReport`: p50/p99 latencies per operation
class, replication-lag percentiles, failover/corruption counts, and
the list of findings (empty on a clean run) — exportable as a
``repro-bench/1`` JSON report for the CI soak-smoke gate.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.stats import percentile
from ..concurrent import ThreadSafeDenseFile
from ..core.errors import (
    ConfigurationError,
    OperationTimeout,
    OverloadError,
    ReproError,
)
from ..persistent import JournaledDenseFile
from ..storage.faults import FaultPlan, SimulatedCrash
from ..storage.scrub import scrub
from .failover import Failover, StateRecorder, records_digest
from .replica import Replica, bootstrap_replica
from .transport import DirectoryTransport, QueueTransport

BENCH_SCHEMA = "repro-bench/1"


@dataclass
class SoakConfig:
    """Knobs for one soak run (defaults match the CI smoke job)."""

    workdir: str
    seconds: float = 20.0
    seed: int = 7
    transport: str = "queue"  # "queue" | "directory"
    num_pages: int = 48
    d: int = 4
    D: int = 28
    op_timeout: float = 2.0
    max_in_flight: int = 4
    read_fraction: float = 0.45
    sync_every: int = 20
    crash_every: int = 200
    corrupt_every: int = 450
    primary_readers: int = 1
    replica_readers: int = 1
    key_space: int = 50_000

    def __post_init__(self) -> None:
        if self.transport not in ("queue", "directory"):
            raise ConfigurationError(
                f"transport must be 'queue' or 'directory', "
                f"not {self.transport!r}"
            )
        if self.seconds <= 0:
            raise ConfigurationError("seconds must be positive")


@dataclass
class SoakReport:
    """Everything one soak run observed, with SLO percentiles."""

    seconds: float
    seed: int
    transport: str
    elapsed_s: float = 0.0
    primary_writes: int = 0
    primary_reads: int = 0
    replica_reads: int = 0
    consistency_checks: int = 0
    failovers: int = 0
    crash_rounds: int = 0
    corruption_rounds: int = 0
    records_shipped: int = 0
    records_applied: int = 0
    pages_healed: int = 0
    timeouts: int = 0
    overloads: int = 0
    reader_races: int = 0
    lag_samples: List[int] = field(default_factory=list)
    findings: List[str] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    read_latencies: List[float] = field(default_factory=list)
    replica_latencies: List[float] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no unrecovered corruption or divergence was found."""
        return not self.findings

    def _cell(
        self, scenario: str, ops: int, latencies: List[float],
        counters: Dict[str, float],
    ) -> Dict[str, Any]:
        ordered = sorted(latencies)
        return {
            "scenario": scenario,
            "backend": "journaled-replicated",
            "ops": ops,
            "elapsed_s": self.elapsed_s,
            "ops_per_sec": (
                ops / self.elapsed_s if self.elapsed_s > 0 else 0.0
            ),
            "page_accesses": 0,
            "latency_p50_us": percentile(ordered, 0.50) * 1e6,
            "latency_p99_us": percentile(ordered, 0.99) * 1e6,
            "counters": counters,
        }

    def to_bench_report(self) -> Dict[str, Any]:
        """The run as a ``repro-bench/1`` report dict (JSON-ready)."""
        lag = sorted(self.lag_samples)
        return {
            "schema": BENCH_SCHEMA,
            "quick": False,
            "seed": self.seed,
            "ops": self.primary_writes + self.primary_reads,
            "soak": {
                "seconds": self.seconds,
                "transport": self.transport,
                "failovers": self.failovers,
                "crash_rounds": self.crash_rounds,
                "corruption_rounds": self.corruption_rounds,
                "records_shipped": self.records_shipped,
                "records_applied": self.records_applied,
                "pages_healed": self.pages_healed,
                "consistency_checks": self.consistency_checks,
                "lag_p50": percentile(lag, 0.50) if lag else 0.0,
                "lag_p99": percentile(lag, 0.99) if lag else 0.0,
                "lag_max": max(lag) if lag else 0,
                "findings": list(self.findings),
            },
            "results": [
                self._cell(
                    "soak-primary-write",
                    self.primary_writes,
                    self.write_latencies,
                    {
                        "timeouts": self.timeouts,
                        "overloads": self.overloads,
                        "failovers": self.failovers,
                    },
                ),
                self._cell(
                    "soak-primary-read",
                    self.primary_reads,
                    self.read_latencies,
                    {"reader_races": self.reader_races},
                ),
                self._cell(
                    "soak-replica-read",
                    self.replica_reads,
                    self.replica_latencies,
                    {"consistency_checks": self.consistency_checks},
                ),
            ],
        }

    def summary(self) -> str:
        """Multi-line human report for the CLI."""
        lag = sorted(self.lag_samples)
        writes = sorted(self.write_latencies)
        lines = [
            f"soak: {self.elapsed_s:.1f}s elapsed (budget {self.seconds}s), "
            f"seed {self.seed}, transport {self.transport}",
            f"  primary: {self.primary_writes} writes, "
            f"{self.primary_reads} reads "
            f"(p50 {percentile(writes, 0.5) * 1e6:.0f}us / "
            f"p99 {percentile(writes, 0.99) * 1e6:.0f}us write latency)"
            if writes
            else f"  primary: {self.primary_writes} writes, "
            f"{self.primary_reads} reads",
            f"  replica: {self.replica_reads} reads, "
            f"{self.consistency_checks} prefix-consistency checks, "
            f"lag p99 {percentile(lag, 0.99) if lag else 0:.1f} "
            f"(max {max(lag) if lag else 0})",
            f"  hazards: {self.failovers} failovers "
            f"({self.crash_rounds} crash rounds, "
            f"{self.corruption_rounds} corruption rounds), "
            f"{self.pages_healed} pages healed, "
            f"{self.timeouts} timeouts, {self.overloads} overloads",
        ]
        if self.clean:
            lines.append("soak verdict: clean (zero unrecovered findings)")
        else:
            for finding in self.findings:
                lines.append(f"  FINDING: {finding}")
            lines.append(
                f"soak verdict: {len(self.findings)} finding(s) — "
                "see above"
            )
        return "\n".join(lines)


class _Live:
    """The current epoch's primary/replica pair, swapped on failover."""

    def __init__(
        self,
        wrapper: ThreadSafeDenseFile,
        primary: JournaledDenseFile,
        replica: Replica,
        pair: Failover,
        primary_path: str,
        replica_path: str,
    ) -> None:
        self.wrapper = wrapper
        self.primary = primary
        self.replica = replica
        self.pair = pair
        self.primary_path = primary_path
        self.replica_path = replica_path


def run_soak(config: SoakConfig) -> SoakReport:
    """Drive the pair for ``config.seconds``; see the module docstring."""
    rng = random.Random(config.seed)
    os.makedirs(config.workdir, exist_ok=True)
    report = SoakReport(
        seconds=config.seconds, seed=config.seed, transport=config.transport
    )
    report_lock = threading.Lock()

    path_a = os.path.join(config.workdir, "node-a.dsf")
    path_b = os.path.join(config.workdir, "node-b.dsf")
    epoch = 0

    def make_transport() -> Any:
        if config.transport == "directory":
            return DirectoryTransport(
                os.path.join(config.workdir, f"ship-{epoch}")
            )
        return QueueTransport()

    plan = FaultPlan(seed=config.seed)
    primary = JournaledDenseFile.create(
        path_a,
        num_pages=config.num_pages,
        d=config.d,
        D=config.D,
        overwrite=True,
        injector=plan,
    )
    capacity = config.num_pages * config.d
    target_size = capacity // 2
    model = set(rng.sample(range(config.key_space), target_size))
    primary.insert_many(sorted(model))
    replica = bootstrap_replica(
        primary, path_b, op_timeout=config.op_timeout
    )
    pair = Failover(primary, replica, make_transport())
    wrapper = ThreadSafeDenseFile(
        primary,
        max_in_flight=config.max_in_flight,
        default_timeout=config.op_timeout,
    )
    live = _Live(wrapper, primary, replica, pair, path_a, path_b)

    stop = threading.Event()

    def primary_reader(index: int) -> None:
        reader_rng = random.Random(config.seed * 7919 + index)
        while not stop.is_set():
            current = live
            key = reader_rng.randrange(config.key_space)
            begin = time.perf_counter()
            try:
                current.wrapper.search(key, timeout=config.op_timeout)
            except OperationTimeout:  # lint: allow[errors] -- counted, soak continues
                with report_lock:
                    report.timeouts += 1
                continue
            except OverloadError:
                with report_lock:
                    report.overloads += 1
                continue
            except (ReproError, OSError, ValueError):
                # The primary died under us mid-failover; the next
                # iteration picks up the promoted one.
                with report_lock:
                    report.reader_races += 1
                continue
            with report_lock:
                report.primary_reads += 1
                report.read_latencies.append(time.perf_counter() - begin)

    def replica_reader(index: int) -> None:
        while not stop.is_set():
            current = live
            begin = time.perf_counter()
            try:
                sequence, records = current.replica.snapshot(
                    timeout=config.op_timeout
                )
            except OperationTimeout:  # lint: allow[errors] -- counted, soak continues
                with report_lock:
                    report.timeouts += 1
                continue
            except (ReproError, OSError, ValueError):
                # Retired (promoted) or mid-swap replica; pick up the
                # fresh one next iteration.
                with report_lock:
                    report.reader_races += 1
                continue
            elapsed = time.perf_counter() - begin
            expected = current.pair.recorder.digest_at(sequence)
            finding: Optional[str] = None
            if expected is None:
                finding = (
                    f"replica snapshot at sequence {sequence} has no "
                    "recorded primary state to verify against"
                )
            elif records_digest(records) != expected:
                finding = (
                    f"replica snapshot at sequence {sequence} is not "
                    "the primary's committed state at that sequence"
                )
            with report_lock:
                report.replica_reads += 1
                report.replica_latencies.append(elapsed)
                report.consistency_checks += 1
                if finding is not None:
                    report.findings.append(finding)

    threads = [
        threading.Thread(
            target=primary_reader, args=(index,), daemon=True
        )
        for index in range(config.primary_readers)
    ] + [
        threading.Thread(
            target=replica_reader, args=(index,), daemon=True
        )
        for index in range(config.replica_readers)
    ]
    for thread in threads:
        thread.start()

    def harvest(old_pair: Failover) -> None:
        with report_lock:
            report.records_shipped += old_pair.shipper.shipped
            report.records_applied += old_pair.replica.records_applied

    def failover() -> None:
        """The dead primary's wake: scrub it, promote, re-seed, swap."""
        nonlocal plan, model, epoch, live, corruption_state
        epoch += 1
        dead_path = live.primary_path
        survivor_path = live.replica_path
        try:
            live.primary._raw.close()
        except (OSError, ReproError):
            pass  # the handle may already be unusable post-crash
        harvest(live.pair)
        scrub_report = scrub(dead_path)
        with report_lock:
            report.pages_healed += len(scrub_report.repaired) + len(
                scrub_report.healed
            )
            if not scrub_report.healthy:
                report.findings.append(
                    f"scrub of crashed primary {dead_path} (epoch "
                    f"{epoch}) did not come back healthy: "
                    f"quarantined {list(scrub_report.quarantined)}, "
                    f"invariants {list(scrub_report.invariant_errors)}"
                )
        plan = FaultPlan(seed=config.seed + 1000 * epoch)
        result = live.pair.promote_after_crash(injector=plan)
        if result.finding is not None:
            with report_lock:
                report.findings.append(result.finding)
        promoted = result.promoted
        model = {
            record.key for record in promoted.engine.pagefile.iter_all()
        }
        for suffix in ("", ".journal", ".journal.applied"):
            stale = dead_path + suffix
            if os.path.exists(stale):
                os.unlink(stale)
        new_replica = bootstrap_replica(
            promoted, dead_path, op_timeout=config.op_timeout
        )
        new_pair = Failover(promoted, new_replica, make_transport())
        new_wrapper = ThreadSafeDenseFile(
            promoted,
            max_in_flight=config.max_in_flight,
            default_timeout=config.op_timeout,
        )
        live = _Live(
            new_wrapper, promoted, new_replica, new_pair,
            survivor_path, dead_path,
        )
        corruption_state = "idle"
        with report_lock:
            report.failovers += 1

    def one_write() -> None:
        """One seeded mutation through the admission/deadline pipeline."""
        grow = len(model) < target_size or (
            len(model) < capacity - config.D and rng.random() < 0.5
        )
        begin = time.perf_counter()
        if grow:
            key = rng.randrange(config.key_space)
            while key in model:
                key = rng.randrange(config.key_space)
            live.wrapper.insert(key, f"v{key}", timeout=config.op_timeout)
            model.add(key)
        else:
            key = rng.choice(sorted(model))
            live.wrapper.delete(key, timeout=config.op_timeout)
            model.discard(key)
        with report_lock:
            report.primary_writes += 1
            report.write_latencies.append(time.perf_counter() - begin)

    started = time.monotonic()
    horizon = started + config.seconds
    ops = 0
    ops_since_crash = 0
    ops_since_corrupt = 0
    corruption_state = "idle"  # idle -> armed -> fatal -> (failover) idle
    try:
        while time.monotonic() < horizon:
            ops += 1
            ops_since_crash += 1
            ops_since_corrupt += 1
            torn_before = plan.torn_writes + plan.bitflips
            is_write = rng.random() >= config.read_fraction
            try:
                if is_write:
                    one_write()
                else:
                    begin = time.perf_counter()
                    live.wrapper.search(
                        rng.randrange(config.key_space),
                        timeout=config.op_timeout,
                    )
                    with report_lock:
                        report.primary_reads += 1
                        report.read_latencies.append(
                            time.perf_counter() - begin
                        )
            except SimulatedCrash:
                failover()
                # Only the crash countdown resets: the corruption
                # clock keeps accumulating across failovers, so both
                # hazard kinds fire even when crashes are the more
                # frequent of the two.
                ops_since_crash = 0
                continue
            except OperationTimeout:  # lint: allow[errors] -- counted, soak continues
                with report_lock:
                    report.timeouts += 1
            except OverloadError:
                with report_lock:
                    report.overloads += 1

            if corruption_state == "armed" and (
                plan.torn_writes + plan.bitflips > torn_before
            ):
                # The tear/flip landed inside the last applied
                # transaction; crash the very next write so recovery
                # must heal it from the retained applied image.
                plan.arm(0)
                corruption_state = "fatal"
            elif (
                corruption_state == "idle"
                and ops_since_corrupt >= config.corrupt_every
            ):
                if rng.random() < 0.5:
                    plan.torn_write_at = plan.physical_writes
                else:
                    plan.bitflip_at = plan.physical_writes
                corruption_state = "armed"
                ops_since_corrupt = 0
                with report_lock:
                    report.corruption_rounds += 1
            elif (
                corruption_state == "idle"
                and ops_since_crash >= config.crash_every
            ):
                plan.arm(rng.randrange(0, 30))
                ops_since_crash = 0
                with report_lock:
                    report.crash_rounds += 1

            if ops % config.sync_every == 0:
                live.pair.sync(timeout=config.op_timeout)
                with report_lock:
                    report.lag_samples.append(live.pair.lag())

        # A corruption round may still be mid-flight when the clock
        # runs out; drive it to its crash so the heal path completes
        # and no torn page survives the run.
        if corruption_state != "idle":
            for _ in range(200):
                try:
                    one_write()
                except SimulatedCrash:
                    failover()
                    break
                except (OperationTimeout, OverloadError):  # lint: allow[errors] -- drain loop, counted elsewhere
                    continue
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

    # Final barrier: ship and apply everything, then the replica must
    # be byte-for-byte the primary's committed state (lag zero).
    live.pair.sync(timeout=config.op_timeout)
    final_lag = live.pair.lag()
    report.lag_samples.append(final_lag)
    if final_lag != 0:
        report.findings.append(
            f"final sync left the replica {final_lag} records behind"
        )
    sequence, records = live.replica.snapshot(timeout=config.op_timeout)
    expected = live.pair.recorder.digest_at(sequence)
    if expected is None or records_digest(records) != expected:
        report.findings.append(
            f"final replica snapshot at sequence {sequence} does not "
            "match the primary's committed state"
        )
    if {key for key, _ in records} != model:
        report.findings.append(
            "final replica key set diverges from the workload model"
        )
    try:
        live.primary.validate()
    except ReproError as error:
        report.findings.append(
            f"final primary validation failed: {error}"
        )
    harvest(live.pair)
    report.elapsed_s = time.monotonic() - started
    live.replica.close()
    live.wrapper.close()
    return report
