"""A durable dense sequential file backed by a real OS file.

:class:`PersistentDenseFile` is a thin convenience wrapper over
:class:`~repro.core.dense_file.DenseSequentialFile` running on the
``"disk"`` storage backend (a
:class:`~repro.storage.backend.DiskStore`, optionally decorated with a
live :class:`~repro.storage.backend.BufferedStore` cache): every page
mutation flows through the same ``PageStore`` seam every other engine
uses, and :meth:`open` rebuilds the complete engine state — page
contents, in-core directory, calibrator rank counters, and the WARNING
flags the paper's Fact 5.1 requires — from the file alone.

This is deliberately a *write-through* design by default: the
dense-file algorithms already bound how many pages one command touches
(that is the entire point of the paper), so writing each touched page
immediately costs the same ``O(log^2 M / (D - d))`` I/Os the cost model
meters.  Pass ``cache_pages`` to interpose a write-back LRU cache
instead (fewer physical writes, weaker durability between flushes).

Example
-------
>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "orders.dsf")
>>> with PersistentDenseFile.create(path, num_pages=64, d=8, D=40) as f:
...     f.insert(1, "first")
>>> with PersistentDenseFile.open(path) as f:
...     f.search(1).value
'first'
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

from .core.control2 import Control2Engine
from .core.dense_file import DenseSequentialFile
from .core.errors import (
    ConfigurationError,
    ReadOnlyError,
    RecordNotFoundError,
)
from .core.params import DensityParams
from .records import Record
from .storage.backend import BufferedStore, DiskStore
from .storage.ondisk import DiskPagedStore, StorageError

_ALGORITHM_CODES = {"control2": 0, "control1": 1}
_ALGORITHM_NAMES = {code: name for name, code in _ALGORITHM_CODES.items()}


def _wrap_threadsafe(opened):
    """Wrap a freshly created/opened file in the concurrency front-end."""
    from .concurrent import ThreadSafeDenseFile

    return ThreadSafeDenseFile(opened)


class PersistentDenseFile:
    """Durable ``(d, D)``-dense sequential file with CONTROL 2 updates."""

    #: Whether the first mutation retires a retained ``.journal.applied``
    #: image beside the file.  True for plain write-through files: once
    #: this class writes pages the retained images (left by an earlier
    #: journaled session) describe a superseded state and must not be
    #: used as a heal source.  :class:`JournaledDenseFile` overrides
    #: this — its own commits keep the applied image current.
    _retires_applied = True

    def __init__(self, dense: DenseSequentialFile):
        self.dense = dense
        self.engine = dense.engine
        self._applied_retired = False
        #: Read-only degraded mode: set when the file was opened over
        #: quarantined (unrepairable) pages.  Mutations raise
        #: :class:`~repro.core.errors.ReadOnlyError`; intact ranges stay
        #: scannable.
        self.read_only = False
        #: Quarantined page numbers (empty on a healthy file).
        self.quarantined: tuple = ()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        num_pages: int,
        d: int,
        D: int,
        j: Optional[int] = None,
        algorithm: str = "control2",
        slot_capacity: int = 0,
        overwrite: bool = False,
        cache_pages: Optional[int] = None,
        write_through: bool = True,
        threadsafe: bool = False,
        readahead: int = 0,
    ) -> "PersistentDenseFile":
        """Create a new file at ``path`` with the given geometry.

        With ``threadsafe=True`` the file comes back wrapped in a
        :class:`~repro.concurrent.ThreadSafeDenseFile` (fair
        reader-writer locking plus per-operation deadlines), ready to
        be shared between threads.

        ``readahead=K`` (requires ``cache_pages``) makes stream scans
        prefetch up to K upcoming pages into the cache.
        """
        if algorithm not in _ALGORITHM_CODES:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        params = DensityParams(num_pages=num_pages, d=d, D=D, j=j)
        if algorithm == "control2" and not params.satisfies_slack_condition:
            raise ConfigurationError(
                "persistent files require D - d > 3*ceil(log2 M); widen "
                "the slack or use more pages"
            )
        # Encode the algorithm in the (otherwise unused) high bits of J.
        stored_j = (params.j or 0) | (_ALGORITHM_CODES[algorithm] << 24)
        store = DiskStore.create(
            path,
            num_pages=num_pages,
            d=d,
            D=D,
            j=stored_j,
            slot_capacity=slot_capacity,
            overwrite=overwrite,
            write_through=write_through,
        )
        created = cls(
            cls._mount(store, params, algorithm, cache_pages, readahead)
        )
        return _wrap_threadsafe(created) if threadsafe else created

    @classmethod
    def open(
        cls, path: str, cache_pages: Optional[int] = None,
        write_through: bool = True,
        on_corruption: str = "raise",
        threadsafe: bool = False,
        readahead: int = 0,
    ) -> "PersistentDenseFile":
        """Open an existing file, rebuilding all in-core state.

        Refuses to open a file with a pending transaction journal: that
        file was last written by :class:`JournaledDenseFile`, whose
        :meth:`JournaledDenseFile.open` performs the required recovery.

        ``on_corruption`` picks the policy for pages whose slot fails
        its CRC: ``"raise"`` (default) aborts with
        :class:`~repro.storage.ondisk.CorruptPageError`; ``"degrade"``
        quarantines them (treated as empty) and returns the file in
        **read-only degraded mode** — queries and scans over intact
        ranges work, every mutation raises
        :class:`~repro.core.errors.ReadOnlyError` until ``repro scrub``
        repairs the file.

        ``threadsafe=True`` wraps the opened file in a
        :class:`~repro.concurrent.ThreadSafeDenseFile`.
        """
        if on_corruption not in ("raise", "degrade"):
            raise ConfigurationError(
                f"on_corruption must be 'raise' or 'degrade', "
                f"not {on_corruption!r}"
            )
        if os.path.exists(path + ".journal"):
            raise StorageError(
                f"{path} has a pending transaction journal; open it with "
                "JournaledDenseFile.open() so recovery can run"
            )
        store = DiskStore.open(
            path,
            write_through=write_through,
            tolerate_corruption=on_corruption == "degrade",
        )
        algorithm = _ALGORITHM_NAMES.get(store.raw.j >> 24)
        if algorithm is None:
            store.close()
            raise StorageError(f"{path}: unknown algorithm code")
        explicit_j = store.raw.j & 0xFFFFFF
        params = DensityParams(
            num_pages=store.num_pages,
            d=store.raw.d,
            D=store.raw.D,
            j=explicit_j or None,
        )
        dense = cls._mount(store, params, algorithm, cache_pages, readahead)
        dense.engine.restore_from_store()
        if isinstance(dense.engine, Control2Engine):
            cls._rebuild_warning_flags(dense.engine)
        opened = cls(dense)
        if store.quarantined:
            opened._degrade(store.quarantined)
        return _wrap_threadsafe(opened) if threadsafe else opened

    @staticmethod
    def _mount(
        store: DiskStore,
        params: DensityParams,
        algorithm: str,
        cache_pages: Optional[int],
        readahead: int = 0,
    ) -> DenseSequentialFile:
        """Wrap the store (cached if asked) in a backend-agnostic facade."""
        if readahead and cache_pages is None:
            raise ConfigurationError(
                "readahead prefetches into the page cache; pass cache_pages"
            )
        backend = store if cache_pages is None else BufferedStore(
            store, capacity=cache_pages, readahead=readahead
        )
        return DenseSequentialFile(
            params.num_pages,
            params.d,
            params.D,
            algorithm=algorithm,
            j=params.j,
            auto_macroblock=False,
            store=backend,
        )

    @staticmethod
    def _rebuild_warning_flags(engine: Control2Engine) -> None:
        """Restore Fact 5.1(b): re-activate dense nodes, deepest first.

        DEST pointers are volatile sweep state the paper never needs to
        survive a restart — re-activation resets each sweep to its
        starting position, which is always a legal (merely conservative)
        configuration.
        """
        tree = engine.calibrator
        nodes = sorted(tree.iter_nodes(), key=lambda n: -tree.depth[n])
        for node in nodes:
            if tree.parent[node] < 0 or tree.flag[node]:
                continue
            if engine._density_at_least(node, 2):
                engine._activate(node)

    # ------------------------------------------------------------------
    # the storage stack (facade -> optional cache -> disk -> OS file)
    # ------------------------------------------------------------------

    @property
    def store(self):
        """The top of the storage stack (cache when ``cache_pages`` set)."""
        return self.engine.store

    @property
    def _disk_store(self) -> DiskStore:
        """The :class:`DiskStore` layer (under the cache, if any)."""
        store = self.engine.store
        if isinstance(store, BufferedStore):
            store = store.inner
        return store

    @property
    def _raw(self) -> DiskPagedStore:
        """The slotted OS-file layer at the bottom of the stack."""
        return self._disk_store.raw

    def store_stats(self) -> dict:
        """Physical-layer counters (cache hit rates when cached)."""
        return self.engine.store.stats()

    # ------------------------------------------------------------------
    # read-only degradation
    # ------------------------------------------------------------------

    def _degrade(self, quarantined) -> None:
        """Flip into read-only degraded mode over ``quarantined`` pages."""
        self.read_only = True
        self.quarantined = tuple(sorted(quarantined))

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                f"{self.path} is in read-only degraded mode (quarantined "
                f"pages {list(self.quarantined)}); run `repro scrub` or "
                "restore from backup before writing"
            )
        if self._retires_applied and not self._applied_retired:
            # First mutation through the plain (write-through) path: any
            # retained applied-journal image now describes a stale state
            # and must stop being a heal source.  Read-only flows keep it.
            self._applied_retired = True
            applied = self.path + ".journal.applied"
            if os.path.exists(applied):
                os.unlink(applied)

    def close(self) -> None:
        """Flush every layer and close the backing store."""
        self.engine.store.close()

    def flush(self) -> None:
        """Write back any cached pages and fsync the backing file."""
        self.engine.store.flush()

    @property
    def closed(self) -> bool:
        return self.engine.store.closed

    @property
    def path(self) -> str:
        return self._raw.path

    def __enter__(self) -> "PersistentDenseFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the dense-file API (delegated)
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record (written through to disk)."""
        self._check_writable()
        self.engine.insert(key, value)

    def delete(self, key) -> Record:
        """Delete and return the record with ``key``."""
        self._check_writable()
        return self.engine.delete(key)

    def update(self, key, value) -> Record:
        """Replace the value stored under an existing ``key`` in place."""
        self._check_writable()
        page = self.engine.pagefile.locate(key)
        if page is None:
            raise RecordNotFoundError(key)
        return self.engine.pagefile.replace_record(page, Record(key, value))

    def insert_many(self, items, batch: bool = True) -> int:
        """Insert an iterable of records/keys in a key-ordered sweep."""
        self._check_writable()
        return self.engine.insert_many(items, batch=batch)

    def delete_range(self, lo_key, hi_key, batch: bool = True) -> int:
        """Bulk-delete every record with ``lo_key <= key <= hi_key``."""
        self._check_writable()
        return self.engine.delete_range(lo_key, hi_key, batch=batch)

    def rank(self, key) -> int:
        """Number of records with key strictly less than ``key``."""
        return self.engine.rank(key)

    def count_range(self, lo_key, hi_key) -> int:
        """Records with ``lo_key <= key <= hi_key`` (<= 2 accesses)."""
        return self.engine.count_range(lo_key, hi_key)

    def select(self, index: int) -> Record:
        """The record of 0-based rank ``index`` in key order."""
        return self.engine.select(index)

    def compact(self) -> int:
        """Uniformly redistribute all records; returns pages rewritten."""
        self._check_writable()
        return self.engine.compact()

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        return self.engine.search(key)

    def __contains__(self, key) -> bool:
        return key in self.engine

    def __len__(self) -> int:
        return len(self.engine)

    def range(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records with ``lo_key <= key <= hi_key`` in order."""
        return self.engine.range_scan(lo_key, hi_key)

    def scan(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        return self.engine.scan_count(start_key, count)

    def bulk_load(self, records) -> None:
        """Uniformly load records into an empty file (durable)."""
        self._check_writable()
        self.engine.bulk_load(records)

    def occupancies(self) -> List[int]:
        """Records per page, as a list of length M."""
        return self.engine.occupancies()

    @property
    def params(self) -> DensityParams:
        return self.engine.params

    @property
    def stats(self):
        return self.engine.stats

    def validate(self) -> None:
        """In-core invariants plus on-disk/in-core agreement.

        A cached stack is flushed first so the comparison is against the
        pages the OS file would show after a clean shutdown.  In
        read-only degraded mode the strict structural invariants may be
        legitimately broken by the data loss, so only the intact pages
        are checked for on-disk/in-core agreement (and nothing is
        flushed — a degraded file is never written).
        """
        from .core.errors import InvariantViolationError

        if not self.read_only:
            self.engine.validate()
            self.engine.store.flush()
        raw = self._raw
        for page in range(1, self.params.num_pages + 1):
            if page in self.quarantined:
                continue
            stored = raw.read_page(page)
            live = self.engine.pagefile.page(page).records()
            if stored != live:
                raise InvariantViolationError(
                    f"page {page}: on-disk contents diverge from memory"
                )

    def verify_checksums(self) -> List[int]:
        """Checksum every on-disk page; return corrupt page numbers."""
        return self._raw.verify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PersistentDenseFile({self.path!r}, {self.params}, "
            f"size={len(self)})"
        )


class JournaledDenseFile(PersistentDenseFile):
    """A crash-atomic durable dense file (redo journal per command).

    :class:`PersistentDenseFile` writes each page through as it mutates,
    which is durable but not atomic: a crash between the two page writes
    of one SHIFT could lose the records in flight.  This variant runs
    its :class:`~repro.storage.backend.DiskStore` in write-back mode
    (``write_through=False``), so every *public mutating call* becomes a
    transaction:

    1. the command runs in memory, the store collecting the dirty page
       set;
    2. the new page images plus a checksummed commit marker are fsynced
       to a side journal (``<path>.journal``);
    3. only then are the pages applied to the main file and the journal
       removed.

    :meth:`open` replays a committed journal (redo) or discards a torn
    one, so a reopened file always shows the state exactly before or
    exactly after each command — never in between.  The invariant is
    exercised exhaustively by the crash-point sweep in
    ``tests/test_crash_consistency.py``.

    After a :class:`~repro.storage.wal.SimulatedCrash` (or any mid-
    transaction exception) the in-memory object is dead: close it and
    reopen from disk.
    """

    #: Journaled commits keep the retained applied image current; never
    #: retire it (it is this class's own durable-LSN/heal-source record).
    _retires_applied = False

    def __init__(self, dense: DenseSequentialFile, injector=None):
        from .storage.wal import TransactionJournal

        super().__init__(dense)
        store = self._disk_store
        # Journaled mode buffers dirty pages instead of writing through.
        store.write_through = False
        self.journal = TransactionJournal(store.path + ".journal", injector)
        store.raw.fault_injector = injector
        #: Nesting depth of open :meth:`transaction` blocks; while
        #: positive, per-command commits are deferred (group commit).
        self._txn_depth = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        num_pages: int,
        d: int,
        D: int,
        j: Optional[int] = None,
        algorithm: str = "control2",
        slot_capacity: int = 0,
        overwrite: bool = False,
        injector=None,
        threadsafe: bool = False,
    ) -> "JournaledDenseFile":
        """Create a new crash-atomic file at ``path``.

        ``threadsafe=True`` wraps the file in a
        :class:`~repro.concurrent.ThreadSafeDenseFile`.
        """
        plain = PersistentDenseFile.create(
            path,
            num_pages=num_pages,
            d=d,
            D=D,
            j=j,
            algorithm=algorithm,
            slot_capacity=slot_capacity,
            overwrite=overwrite,
            write_through=False,
        )
        created = cls(plain.dense, injector=injector)
        return _wrap_threadsafe(created) if threadsafe else created

    @classmethod
    def open(
        cls, path: str, injector=None, threadsafe: bool = False
    ) -> "JournaledDenseFile":
        """Open with journal recovery, rebuilding all in-core state.

        ``threadsafe=True`` wraps the file in a
        :class:`~repro.concurrent.ThreadSafeDenseFile`.
        """
        from .storage.wal import TransactionJournal

        journal = TransactionJournal(path + ".journal")
        committed = journal.recover()
        if committed is not None:
            store = DiskPagedStore.open(path)
            for page, payload in sorted(committed.items()):
                store.write_page_payload(page, payload)
            store.flush()
            store.close()
            journal.mark_applied()
        plain = PersistentDenseFile.open(path, write_through=False)
        opened = cls(plain.dense, injector=injector)
        return _wrap_threadsafe(opened) if threadsafe else opened

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @property
    def _dirty(self) -> set:
        """Pages touched since the last commit (lives in the store)."""
        return self._disk_store.dirty

    def _commit(self) -> None:
        if self._txn_depth > 0:
            return  # group commit: deferred to transaction() exit
        if not self._dirty:
            return
        store = self._disk_store
        # Serialize in the file's own format version (packed images on
        # version-2 files, legacy codec on version-1); journal frames and
        # redo replay treat the payload as opaque bytes either way.
        encode_image = store.raw.encode_page_image
        payloads = {
            page: encode_image(self.engine.pagefile.page(page))
            for page in sorted(store.dirty)
        }
        self.journal.write_transaction(payloads)
        for page, payload in payloads.items():
            store.raw.write_page_payload(page, payload)
        store.raw.flush()
        self.journal.mark_applied()
        store.dirty.clear()

    def _transactional(self, operation):
        self._check_writable()
        result = operation()
        self._commit()
        return result

    def transaction(self):
        """Group commit: coalesce several commands into one transaction.

        Inside the ``with`` block every mutating call runs in memory
        only; the union of the dirty page sets is journaled, fsynced
        (once) and applied when the block exits cleanly::

            with f.transaction():
                f.insert(1)
                f.insert(2)
                f.delete_range(10, 20)

        Pages rewritten by several commands in the group are journaled
        and written back once — and the group pays one fsync instead of
        one per command.  Atomicity is per *group*: on an exception
        inside the block nothing is committed, the in-memory object is
        dead (as after any mid-transaction failure), and reopening from
        disk restores the state before the ``with`` block.  Blocks nest;
        only the outermost exit commits.
        """
        import contextlib

        @contextlib.contextmanager
        def _group():
            self._check_writable()
            self._txn_depth += 1
            try:
                yield self
            except BaseException:
                self._txn_depth -= 1
                raise
            else:
                self._txn_depth -= 1
                self._commit()

        return _group()

    # -- wrapped mutators ----------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record (one atomic, durable transaction)."""
        self._transactional(lambda: self.engine.insert(key, value))

    def delete(self, key) -> Record:
        """Delete and return the record with ``key`` (atomic)."""
        return self._transactional(lambda: self.engine.delete(key))

    def update(self, key, value) -> Record:
        """Replace the value under an existing ``key`` (atomic)."""
        return self._transactional(
            lambda: PersistentDenseFile.update(self, key, value)
        )

    def insert_many(self, items, batch: bool = True) -> int:
        """Insert a batch as one atomic transaction (all or nothing)."""
        return self._transactional(
            lambda: self.engine.insert_many(items, batch=batch)
        )

    def delete_range(self, lo_key, hi_key, batch: bool = True) -> int:
        """Bulk-delete a key range as one atomic transaction."""
        return self._transactional(
            lambda: self.engine.delete_range(lo_key, hi_key, batch=batch)
        )

    def bulk_load(self, records) -> None:
        """Uniformly load an empty file as one atomic transaction."""
        self._transactional(lambda: self.engine.bulk_load(records))

    def compact(self) -> int:
        """Uniformly redistribute all records as one atomic transaction."""
        return self._transactional(lambda: self.engine.compact())

    def close(self) -> None:
        """Commit any buffered transaction, then close the store."""
        self._txn_depth = 0  # closing inside a group commits it
        if self._dirty and not self.closed:
            self._commit()
        super().close()

    def store_stats(self) -> dict:
        """Physical-layer counters plus journal/group-commit activity."""
        stats = super().store_stats()
        stats["journal"] = self.journal.counters()
        return stats

    @property
    def durable_sequence(self) -> int:
        """LSN of the last durably committed transaction (0 when none)."""
        return self.journal.sequence

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """In-core invariants plus on-disk/in-core agreement.

        Only meaningful between transactions (there must be no buffered
        dirty pages, or the comparison would be vacuous).
        """
        if self._dirty:
            from .core.errors import InvariantViolationError

            raise InvariantViolationError(
                "validate() called with an uncommitted transaction"
            )
        super().validate()
