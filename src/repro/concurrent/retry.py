"""One retry policy for every layer: capped backoff with seeded jitter.

Before this module the repository had two divergent backoff loops — the
storage layer's :class:`~repro.storage.faults.RetryingStore` and an
ad-hoc sleep loop wherever something needed retrying.  The cluster
front-end would have added a third.  This module extracts the policy
(*how long to wait before attempt N*) and the loop (*attempt, classify,
check the deadline, sleep, repeat*) so store-level and network-level
retries share one tested implementation.

Design constraints, inherited from the paper's worst-case mindset:

* **Deterministic.**  ``delay(attempt)`` is a pure function of the
  policy's fields and the attempt number.  Jitter — essential for
  de-synchronizing a fleet of network clients hammering a recovering
  shard — is drawn from a :class:`random.Random` seeded with
  ``(seed, attempt)``, never from global randomness or the wall clock,
  so a chaos run replays byte-identically from its seed.
* **Capped.**  Exponential growth stops at ``max_delay``; the total
  number of attempts stops at ``max_attempts``.  No retry loop in this
  codebase may be unbounded.
* **Deadline-aware.**  :func:`retry_call` stops early — raising
  :class:`~repro.core.errors.OperationTimeout` with the last failure
  chained — when the operation's remaining budget is spent or the next
  backoff sleep would overrun it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

from ..core.errors import ConfigurationError, OperationTimeout

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with optional seeded jitter.

    ``delay(attempt)`` is ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, then shrunk by up to ``jitter`` (a fraction in
    ``[0, 1]``) using a PRNG seeded from ``(seed, attempt)`` — so two
    clients with different seeds spread their retries across the window
    while each client's schedule stays reproducible.

    The default ``base_delay`` of zero makes retries free (no sleeping),
    which is what unit tests want; real deployments pass a small base.
    """

    max_attempts: int = 5
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("a retry policy needs at least one attempt")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be a fraction in [0, 1]")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ConfigurationError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be at least 1")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        capped = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter == 0.0 or capped == 0.0:
            return capped
        draw = random.Random((self.seed << 20) ^ (attempt + 1)).random()
        return capped * (1.0 - self.jitter * draw)

    def with_seed(self, seed: int) -> "RetryPolicy":
        """This policy with a different jitter seed (per-client spread)."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.base_delay,
            multiplier=self.multiplier,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=seed,
        )


class RetryCounters:
    """Mutable absorption counters a retry loop reports into.

    Attribute names match the long-standing ``RetryingStore`` counter
    vocabulary so existing stats consumers keep working: ``retries``
    (faults absorbed), ``giveups`` (policy exhausted), ``deadline_giveups``
    (budget ran out mid-retry) and ``backoff_total`` (seconds of backoff
    scheduled).
    """

    __slots__ = ("retries", "giveups", "deadline_giveups", "backoff_total")

    def __init__(self) -> None:
        self.retries = 0
        self.giveups = 0
        self.deadline_giveups = 0
        self.backoff_total = 0.0


def retry_call(
    operation: Callable[[], _T],
    policy: RetryPolicy,
    retryable: Tuple[Type[BaseException], ...],
    deadline: Optional[Any] = None,
    sleep: Callable[[float], None] = time.sleep,
    counters: Optional[Any] = None,
    what: str = "operation",
) -> _T:
    """Attempt ``operation`` under ``policy``; the one shared retry loop.

    Only exceptions in ``retryable`` are retried; anything else
    propagates untouched.  ``deadline`` is duck-typed (anything with
    ``remaining() -> float``, normally a
    :class:`~repro.concurrent.deadline.Deadline`): when the budget is
    spent, or the next backoff delay would overrun it, the loop raises
    :class:`~repro.core.errors.OperationTimeout` with the triggering
    fault chained instead of burning wall-clock the caller no longer
    has.  ``counters`` is any object with :class:`RetryCounters`'s
    attributes (``RetryingStore`` passes itself).
    """
    attempt = 0
    while True:
        try:
            return operation()
        except retryable as fault:
            attempt += 1
            if attempt >= policy.max_attempts:
                if counters is not None:
                    counters.giveups += 1
                raise
            delay = policy.delay(attempt - 1)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0 or delay >= remaining:
                    if counters is not None:
                        counters.deadline_giveups += 1
                    raise OperationTimeout(
                        f"{what}: retry budget spent after {attempt} "
                        f"attempt(s): {fault}"
                    ) from fault
            if counters is not None:
                counters.retries += 1
                counters.backoff_total += delay
            if delay > 0.0:
                sleep(delay)
