"""The hardened concurrent front-end over any dense-file facade.

:class:`ThreadSafeDenseFile` replaces the old single-RLock wrapper with
a three-layer pipeline, while keeping its exact API surface (plus
optional ``timeout=`` / ``deadline=`` keyword-only arguments on every
operation):

1. **Admission** (optional): a bounded
   :class:`~repro.concurrent.admission.AdmissionGate` in front of the
   lock.  When the in-flight cap and wait queue are full, operations
   fail fast with :class:`~repro.core.errors.OverloadError`; in
   ``shed_load`` mode writes are rejected as soon as they would queue,
   while reads keep being served.
2. **Fair reader-writer lock**: queries share the file, mutations are
   single-writer, and waiters are served in arrival order
   (:class:`~repro.concurrent.rwlock.FairRWLock`).  Every acquisition
   honours the operation's deadline, so no call blocks unboundedly —
   the concurrency layer keeps the paper's worst-case spirit.
3. **Deadline-aware storage retries**: any
   :class:`~repro.storage.faults.RetryingStore` in the wrapped file's
   stack is given the operation's remaining budget for the duration of
   the call, so transient-fault backoff stops (with
   :class:`~repro.core.errors.OperationTimeout`) when the budget is
   spent instead of burning time the caller no longer has.

Concurrent readers are only enabled on storage stacks whose read path
is free of shared mutable state (a :class:`~repro.storage.backend.MemoryStore`
base, possibly decorated with fault-injection/retry layers).  Disk and
buffered stacks mutate shared state on reads (a single file handle's
seek position, LRU recency lists), so reads there are serialized like
writes — the deadline and admission machinery applies identically.
Force the choice with ``shared_reads=True/False``.  Under concurrent
readers the file's access-counter statistics may undercount slightly
(unsynchronized increments); the structure itself is never touched by
a reader.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..records import Record
from ..storage.backend import MemoryStore
from ..storage.faults import FaultyStore, RetryingStore
from .admission import READ, WRITE, AdmissionGate
from .deadline import Deadline
from .rwlock import FairRWLock


def find_retrying_stores(store: Any) -> List[RetryingStore]:
    """Every :class:`RetryingStore` layer in a decorator stack."""
    found: List[RetryingStore] = []
    while store is not None:
        if isinstance(store, RetryingStore):
            found.append(store)
        store = getattr(store, "inner", None)
    return found


def reads_are_shareable(store: Any) -> bool:
    """Whether a store stack's read path touches no shared mutable state.

    True only for a :class:`~repro.storage.backend.MemoryStore` base
    under pass-through decorators (fault injection, retries, and any
    :class:`~repro.storage.backend.DelegatingStore` declaring
    ``passthrough_reads`` — the sanitizer's instrumented store does).
    Disk stacks share a seekable file handle and buffered stacks
    reorder an LRU list on every read, so their reads must be
    serialized.
    """
    while store is not None:
        if isinstance(store, MemoryStore):
            return True
        if isinstance(store, (FaultyStore, RetryingStore)) or getattr(
            store, "passthrough_reads", False
        ):
            store = store.inner
            continue
        return False
    return False


class ThreadSafeDenseFile:
    """Serialize writers, share readers, bound waiting — over any facade.

    Wraps a :class:`~repro.core.dense_file.DenseSequentialFile`, a
    :class:`~repro.persistent.PersistentDenseFile` or a
    :class:`~repro.persistent.JournaledDenseFile`.  Drop-in compatible
    with the old coarse-lock wrapper; all hardening knobs are optional.

    Parameters
    ----------
    inner:
        The dense-file facade to protect.
    max_in_flight, max_queued, shed_load:
        Enable the admission gate: at most ``max_in_flight`` operations
        run/hold the lock at once, at most ``max_queued`` more wait;
        beyond that :class:`~repro.core.errors.OverloadError` is raised
        immediately.  ``shed_load`` rejects writes as soon as they
        would queue while reads keep being admitted.  With the default
        ``max_in_flight=None`` (and ``shed_load=False``) no gate is
        installed.
    default_timeout:
        Budget (seconds) applied to operations that pass neither
        ``timeout=`` nor ``deadline=``; ``None`` means wait forever.
    shared_reads:
        Force readers shared (``True``) or serialized (``False``);
        ``None`` auto-detects from the storage stack.
    bypass_lock:
        **Testing only.**  Skips admission and locking entirely so the
        torture harness's negative control can prove it detects the
        resulting races.  Never set this in real use.
    lock:
        Inject a pre-built :class:`~repro.concurrent.rwlock.FairRWLock`
        (or subclass — the sanitizer passes its instrumented
        :class:`~repro.sanitizer.instrument.SanitizedRWLock`) instead
        of constructing a plain one.
    """

    def __init__(
        self,
        inner: Any,
        max_in_flight: Optional[int] = None,
        max_queued: int = 64,
        shed_load: bool = False,
        default_timeout: Optional[float] = None,
        shared_reads: Optional[bool] = None,
        bypass_lock: bool = False,
        clock: Callable[[], float] = time.monotonic,
        lock: Optional[FairRWLock] = None,
    ):
        self._inner = inner
        self._clock = clock
        self._lock = lock if lock is not None else FairRWLock(clock=clock)
        self._gate: Optional[AdmissionGate] = None
        if max_in_flight is not None or shed_load:
            self._gate = AdmissionGate(
                max_in_flight=max_in_flight if max_in_flight is not None else 64,
                max_queued=max_queued,
                shed_load=shed_load,
                clock=clock,
            )
        self.default_timeout = default_timeout
        self._bypass_lock = bypass_lock
        store = getattr(inner, "store", None)
        self._retrying = find_retrying_stores(store)
        if shared_reads is None:
            shared_reads = reads_are_shareable(store)
        self._shared_reads = shared_reads

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def _budget(
        self,
        timeout: Optional[float],
        deadline: Optional[Deadline],
    ) -> Deadline:
        return Deadline.resolve(
            timeout, deadline, self.default_timeout, self._clock
        )

    @contextmanager
    def _store_deadline(self, budget: Deadline) -> Iterator[None]:
        """Hand the remaining budget to deadline-aware retry layers."""
        if not self._retrying or budget.expires_at is None:
            yield
            return
        for layer in self._retrying:
            layer.set_deadline(budget)
        try:
            yield
        finally:
            for layer in self._retrying:
                layer.set_deadline(None)

    @contextmanager
    def _guarded(
        self,
        kind: str,
        timeout: Optional[float],
        deadline: Optional[Deadline],
    ) -> Iterator[None]:
        """Admission -> lock -> storage-deadline, all budget-aware."""
        budget = self._budget(timeout, deadline)
        if self._bypass_lock:
            with self._store_deadline(budget):
                yield
            return
        admission = (
            self._gate.enter(kind, budget)
            if self._gate is not None
            else None
        )
        try:
            exclusive = kind == WRITE or not self._shared_reads
            handle = (
                self._lock.write_locked(budget)
                if exclusive
                else self._lock.read_locked(budget)
            )
            with handle:
                budget.check("operation admitted and locked, but")
                with self._store_deadline(budget):
                    yield
        finally:
            if admission is not None:
                admission.__exit__(None, None, None)

    # ------------------------------------------------------------------
    # updates (single-writer)
    # ------------------------------------------------------------------

    def insert(
        self,
        key: Any,
        value: Any = None,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Insert a record (single-writer, deadline-aware)."""
        with self._guarded(WRITE, timeout, deadline):
            self._inner.insert(key, value)

    def delete(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Record:
        """Delete and return the record with ``key`` (single-writer)."""
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.delete(key)

    def update(
        self,
        key: Any,
        value: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Record:
        """Replace the value under ``key`` in place (single-writer)."""
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.update(key, value)

    def insert_many(
        self,
        items: Iterable[Any],
        *,
        batch: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Insert a batch atomically with respect to other threads.

        The writer lock is taken once for the whole batch (the deadline
        budget covers lock acquisition plus the batch itself), so the
        coalesced fast path (``batch=True``) also saves lock traffic.
        """
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.insert_many(items, batch=batch)

    def delete_range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        batch: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Bulk-delete a key range atomically w.r.t. other threads."""
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.delete_range(lo_key, hi_key, batch=batch)

    def compact(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Uniformly redistribute all records (single-writer)."""
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.compact()

    # ------------------------------------------------------------------
    # queries (shared readers; scans materialize under the lock)
    # ------------------------------------------------------------------

    def search(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Return the record with ``key`` or ``None`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.search(key)

    def range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[Record]:
        """Records with ``lo_key <= key <= hi_key`` as a snapshot list."""
        with self._guarded(READ, timeout, deadline):
            return list(self._inner.range(lo_key, hi_key))

    def scan(
        self,
        start_key: Any,
        count: int,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[Record]:
        """Up to ``count`` records from ``start_key`` (snapshot)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.scan(start_key, count)

    def rank(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Records with key strictly below ``key`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.rank(key)

    def count_range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Records with ``lo_key <= key <= hi_key`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.count_range(lo_key, hi_key)

    def select(
        self,
        index: int,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Record:
        """The record of 0-based rank ``index`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.select(index)

    def min(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Smallest-keyed record (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.min()

    def max(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Largest-keyed record (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.max()

    def successor(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Smallest record with key > ``key`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.successor(key)

    def predecessor(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Largest record with key < ``key`` (shared read)."""
        with self._guarded(READ, timeout, deadline):
            return self._inner.predecessor(key)

    def __contains__(self, key: Any) -> bool:
        with self._guarded(READ, None, None):
            return key in self._inner

    def __len__(self) -> int:
        with self._guarded(READ, None, None):
            return len(self._inner)

    # ------------------------------------------------------------------
    # maintenance and lifecycle
    # ------------------------------------------------------------------

    def validate(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Assert the structural invariants (exclusive: may flush)."""
        with self._guarded(WRITE, timeout, deadline):
            self._inner.validate()

    def flush(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Flush the wrapped file's storage stack (single-writer)."""
        with self._guarded(WRITE, timeout, deadline):
            return self._inner.flush()

    def close(
        self,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Flush and close the wrapped file (single-writer)."""
        with self._guarded(WRITE, timeout, deadline):
            self._inner.close()

    @property
    def closed(self) -> bool:
        with self._guarded(READ, None, None):
            return self._inner.closed

    def __enter__(self) -> "ThreadSafeDenseFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection (under the read lock: never observed mid-mutation)
    # ------------------------------------------------------------------

    @property
    def params(self) -> Any:
        """The wrapped file's density parameters (read-locked)."""
        with self._guarded(READ, None, None):
            return self._inner.params

    @property
    def stats(self) -> Any:
        """The wrapped file's access counters (read-locked)."""
        with self._guarded(READ, None, None):
            return self._inner.stats

    @property
    def inner(self) -> Any:
        """The wrapped facade (callers must hold no expectations of
        thread safety when touching it directly)."""
        return self._inner  # lint: allow[lock-discipline] -- documented escape hatch

    @property
    def lock(self) -> FairRWLock:
        """The reader-writer lock (exposed for tests and monitoring)."""
        return self._lock

    @property
    def gate(self) -> Optional[AdmissionGate]:
        """The admission gate, or ``None`` when unbounded."""
        return self._gate

    @property
    def shared_reads(self) -> bool:
        """Whether queries run concurrently on this stack."""
        return self._shared_reads

    def concurrency_stats(self) -> dict:
        """Lock, admission and retry-absorption counters in one dict."""
        report = {
            "shared_reads": self._shared_reads,
            "lock": self._lock.stats(),
            "admission": self._gate.stats() if self._gate else None,
        }
        if self._retrying:
            report["retries"] = [
                layer.counters() for layer in self._retrying
            ]
        return report
