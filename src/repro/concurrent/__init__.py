"""Hardened concurrency front-end for dense files.

This package replaces the old single-RLock ``repro.concurrent`` module
(imports stay compatible: ``from repro.concurrent import
ThreadSafeDenseFile``) with a worst-case-minded concurrency stack:

:class:`~repro.concurrent.file.ThreadSafeDenseFile`
    The front-end: fair reader-writer locking (queries share, updates
    are single-writer), optional bounded admission, and per-operation
    ``timeout=`` / ``deadline=`` budgets honoured by every layer down
    to storage retry backoff.
:class:`~repro.concurrent.rwlock.FairRWLock`
    FIFO-fair shared/exclusive lock with deadline-aware acquisition.
:class:`~repro.concurrent.admission.AdmissionGate`
    Bounded in-flight gate: fail fast with
    :class:`~repro.core.errors.OverloadError` instead of queueing
    without bound; ``shed_load`` rejects writes first and keeps
    serving reads.
:class:`~repro.concurrent.deadline.Deadline`
    The monotonic time budget threaded through one operation.
:class:`~repro.concurrent.retry.RetryPolicy`
    The shared capped-backoff-with-seeded-jitter retry shape used by
    storage retries and cluster network retries alike.
:mod:`repro.concurrent.harness`
    The deterministic interleaving torture harness (also reachable via
    ``tools/stress.py`` and ``repro stress``).
"""

from .admission import AdmissionGate
from .deadline import Deadline
from .file import ThreadSafeDenseFile, find_retrying_stores, reads_are_shareable
from .retry import RetryCounters, RetryPolicy, retry_call
from .rwlock import FairRWLock

__all__ = [
    "AdmissionGate",
    "Deadline",
    "FairRWLock",
    "RetryCounters",
    "RetryPolicy",
    "ThreadSafeDenseFile",
    "find_retrying_stores",
    "reads_are_shareable",
    "retry_call",
]
