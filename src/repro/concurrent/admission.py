"""Bounded admission in front of the lock: fail fast instead of piling up.

A lock serializes work but does nothing about *queueing*: under
overload an unbounded number of operations stack up behind it and every
one of them eventually runs — seconds late.  :class:`AdmissionGate`
bounds the whole pipeline instead:

* at most ``max_in_flight`` operations are past the gate at once;
* at most ``max_queued`` more may wait for a slot — the next arrival
  fails *immediately* with :class:`~repro.core.errors.OverloadError`
  carrying the observed queue depth, so clients shed load at the edge
  instead of timing out deep inside;
* with ``shed_load=True`` the gate degrades gracefully: as soon as a
  **write** would have to wait at all it is rejected, while reads may
  still use the wait queue.  Reads are the cheap, paper-bounded
  operations a degraded system should keep serving; writes are the
  ones that make the backlog worse.

Waiting at the gate honours the operation's
:class:`~repro.concurrent.deadline.Deadline`, so even an admitted-but-
queued operation never blocks past its budget.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..core.errors import (
    ConfigurationError,
    OperationTimeout,
    OverloadError,
    UsageError,
)
from .deadline import Deadline

#: Operation classes the gate distinguishes for shedding decisions.
READ, WRITE = "read", "write"


class _Admission:
    """Context manager token for one admitted operation."""

    __slots__ = ("_gate",)

    def __init__(self, gate: "AdmissionGate"):
        self._gate = gate

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc: object) -> None:
        self._gate._leave()


class AdmissionGate:
    """Semaphore with a bounded, deadline-aware wait queue."""

    def __init__(
        self,
        max_in_flight: int = 64,
        max_queued: int = 64,
        shed_load: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_in_flight < 1:
            raise ConfigurationError("the gate must admit at least one operation")
        if max_queued < 0:
            raise ConfigurationError("max_queued cannot be negative")
        self.max_in_flight = max_in_flight
        self.max_queued = max_queued
        self.shed_load = shed_load
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._clock = clock
        # Observability counters (read under the internal mutex).
        self.admitted = 0
        self.rejected = 0
        self.shed_writes = 0
        self.timeouts = 0
        self.peak_in_flight = 0
        self.peak_queued = 0

    # -- public API -----------------------------------------------------

    def enter(
        self, kind: str = READ, deadline: Optional[Deadline] = None
    ) -> _Admission:
        """Admit one ``kind`` operation or raise; use as a context manager.

        Raises :class:`~repro.core.errors.OverloadError` when the gate
        cannot (or, for shed writes, will not) queue the operation, and
        :class:`~repro.core.errors.OperationTimeout` when ``deadline``
        expires while waiting for a slot.
        """
        if kind not in (READ, WRITE):
            raise UsageError(f"unknown operation kind {kind!r}")
        budget = deadline if deadline is not None else Deadline.unbounded()
        with self._cond:
            if self._in_flight < self.max_in_flight and self._queued == 0:
                return self._admit()
            if self.shed_load and kind == WRITE:
                self.shed_writes += 1
                self.rejected += 1
                raise OverloadError(
                    f"shedding load: write rejected with {self._queued} "
                    f"queued and {self._in_flight} in flight "
                    "(reads are still served)",
                    queue_depth=self._queued,
                    in_flight=self._in_flight,
                )
            if self._queued >= self.max_queued:
                self.rejected += 1
                raise OverloadError(
                    f"admission queue full ({self._queued} waiting, "
                    f"{self._in_flight} in flight)",
                    queue_depth=self._queued,
                    in_flight=self._in_flight,
                )
            self._queued += 1
            self.peak_queued = max(self.peak_queued, self._queued)
            try:
                while not (
                    self._in_flight < self.max_in_flight
                ):
                    if not self._cond.wait(budget.wait_budget()):
                        if budget.expired:
                            self.timeouts += 1
                            raise OperationTimeout(
                                f"admission: deadline expired with "
                                f"{self._queued} queued and "
                                f"{self._in_flight} in flight"
                            )
            finally:
                self._queued -= 1
            return self._admit()

    # -- internals (caller holds self._cond) ----------------------------

    def _admit(self) -> _Admission:
        self._in_flight += 1
        self.admitted += 1
        self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
        return _Admission(self)

    def _leave(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._cond.notify()

    # -- introspection --------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Operations currently past the gate (snapshot)."""
        with self._cond:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Operations currently waiting at the gate (snapshot)."""
        with self._cond:
            return self._queued

    def stats(self) -> dict:
        """Admission and shedding counters as a printable dictionary."""
        with self._cond:
            return {
                "max_in_flight": self.max_in_flight,
                "max_queued": self.max_queued,
                "shed_load": self.shed_load,
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed_writes": self.shed_writes,
                "timeouts": self.timeouts,
                "peak_in_flight": self.peak_in_flight,
                "peak_queued": self.peak_queued,
            }
