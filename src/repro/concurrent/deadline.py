"""Operation deadlines: a monotonic time budget threaded through a call.

Every public operation of the concurrent front-end accepts either a
relative ``timeout=`` (seconds from now) or an absolute ``deadline=``
(a :class:`Deadline`), normalized here into one object that each layer
— admission gate, reader-writer lock, storage retry loop — consults
before blocking.  The paper bounds the *page accesses* of one command;
the deadline bounds its *wall-clock* cost end to end, so a caller's
worst case stays bounded even when the lock is contended or the disk
is flaky.

Deadlines are measured on ``time.monotonic`` (never the wall clock, so
NTP steps cannot expire an operation early), and the clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.errors import OperationTimeout, UsageError


class Deadline:
    """An absolute point on the monotonic clock a call must finish by.

    A ``Deadline`` with ``expires_at=None`` never expires (the
    "unbounded" budget, which is the default for every operation).
    Instances are immutable and safe to share across the layers of one
    call; they are *not* meant to be reused across operations — each
    operation gets its own budget.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.expires_at = expires_at
        self._clock = clock

    # -- constructors ---------------------------------------------------

    @classmethod
    def after(
        cls,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = never expires)."""
        if seconds is None:
            return cls(None, clock)
        if seconds < 0:
            raise UsageError("a timeout cannot be negative")
        return cls(clock() + seconds, clock)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """The no-op budget: never expires, costs nothing to check."""
        return cls(None)

    @classmethod
    def resolve(
        cls,
        timeout: Optional[float] = None,
        deadline: Optional["Deadline"] = None,
        default_timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Normalize the ``timeout=`` / ``deadline=`` pair of an API call.

        An explicit ``deadline`` wins; otherwise ``timeout`` seconds
        from now; otherwise the caller's ``default_timeout``; otherwise
        unbounded.  Passing both raises ``ValueError`` — they describe
        the same budget two ways and must not disagree.
        """
        if deadline is not None and timeout is not None:
            raise UsageError("pass timeout= or deadline=, not both")
        if deadline is not None:
            return deadline
        if timeout is not None:
            return cls.after(timeout, clock)
        return cls.after(default_timeout, clock)

    # -- queries --------------------------------------------------------

    @property
    def expired(self) -> bool:
        """Whether the budget is already spent."""
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left (clamped at 0.0); ``inf`` for an unbounded budget."""
        if self.expires_at is None:
            return float("inf")
        return max(0.0, self.expires_at - self._clock())

    def wait_budget(self) -> Optional[float]:
        """The ``timeout`` argument for a ``Condition.wait`` call.

        ``None`` (wait forever) for an unbounded deadline, else the
        remaining seconds — possibly 0.0, which makes the wait a poll.
        """
        if self.expires_at is None:
            return None
        return self.remaining()

    def check(self, what: str = "operation") -> None:
        """Raise :class:`~repro.core.errors.OperationTimeout` if expired."""
        if self.expired:
            raise OperationTimeout(
                f"{what}: deadline expired "
                f"(budget exhausted on the monotonic clock)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
