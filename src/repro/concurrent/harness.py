"""Deterministic interleaving torture harness for the concurrent front-end.

The harness drives N seeded client threads — mixed insert/delete/scan
streams built from :mod:`repro.workloads.generators` — against one
shared :class:`~repro.concurrent.file.ThreadSafeDenseFile` and checks
**linearizability**: every batch of concurrently released operations
must be equivalent to *some* sequential order of those operations
applied to a model oracle, and the file's full contents must match the
oracle's whenever the harness looks.

Determinism: the *schedule* — which thread runs which operation in
which batch — is a pure function of the seed.  A coordinator thread
releases each batch through a fresh barrier so its operations genuinely
overlap in time; the OS may interleave the racing operations however it
likes, which is exactly what the permutation check accounts for.  The
same seed therefore always produces the same schedule (asserted via
:attr:`StressReport.schedule_digest`), and a failure names the batch
and seed that reproduce it.

The harness **proves its own teeth** with two negative controls
(:func:`self_test`):

* *seeded race*: the same workload with the lock deliberately bypassed
  (``bypass_lock=True``) over a store that sleeps between page touches
  to amplify interleavings — the checker must catch the resulting
  corruption (oracle divergence, invariant violation, or an outright
  exception);
* *deadlock*: two operations acquiring two locks in opposite orders,
  released in one batch — the per-operation deadlines must surface
  :class:`~repro.core.errors.OperationTimeout` instead of hanging the
  run (and the build).

A variant runs the whole torture over a
:func:`~repro.storage.faults.fault_tolerant_stack` with a seeded
transient-fault plan underneath, reporting how many transients the
deadline-aware :class:`~repro.storage.faults.RetryingStore` absorbed.

A second schedule, :func:`run_replica_stress`, splits the roles across
a replication pair: writer threads hammer a journaled *primary* while
reader threads hold snapshots on a WAL-shipped *replica*.  The check
is prefix consistency — every replica snapshot's record digest must
equal the digest the primary-side
:class:`~repro.replication.StateRecorder` captured at exactly that
committed sequence, so readers can never observe a torn or reordered
replication state.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.dense_file import DenseSequentialFile
from ..core.errors import (
    ConfigurationError,
    OperationTimeout,
    OverloadError,
    ReproError,
)
from ..core.params import ceil_log2
from ..storage.backend import (
    BufferedStore,
    DiskStore,
    MemoryStore,
    PageStore,
)
from ..storage.faults import BackoffPolicy, FaultPlan, fault_tolerant_stack
from ..storage.page import Page
from ..workloads.driver import split_workload
from ..workloads.generators import INSERT, mixed_workload
from .deadline import Deadline
from .file import ThreadSafeDenseFile
from .rwlock import FairRWLock

if TYPE_CHECKING:  # pragma: no cover - imported lazily at runtime
    from ..sanitizer import SanitizerRuntime

#: Operation kinds a client thread can issue.
KINDS = ("insert", "delete", "scan", "search", "count")

#: Stacks the harness can torture.
STACKS = ("memory", "disk", "buffered", "faulty")


@dataclass(frozen=True)
class ClientOp:
    """One operation a client thread will issue."""

    kind: str
    key: object
    arg: int = 0
    thread: int = 0

    def describe(self) -> str:
        """Compact one-line rendering for violation reports."""
        return f"t{self.thread}:{self.kind}({self.key},{self.arg})"


@dataclass
class StressConfig:
    """Everything that determines a torture run (and only that).

    Two configs with equal fields produce byte-identical schedules; the
    seed controls workload content, read mix and batch composition.
    """

    threads: int = 4
    total_ops: int = 200
    seed: int = 0
    max_batch: int = 4
    stack: str = "memory"
    transient_rate: float = 0.05
    insert_ratio: float = 0.6
    read_fraction: float = 0.35
    key_space: int = 10_000
    op_timeout: Optional[float] = 30.0
    batch_timeout: float = 60.0
    check_contents_every: int = 8
    max_in_flight: Optional[int] = None
    shed_load: bool = False
    path: Optional[str] = None
    #: Rebuild the stack with the race sanitizer's instrumented store
    #: and lock (see :mod:`repro.sanitizer`); findings land in
    #: :attr:`StressReport.races`.  Off by default — the plain stack
    #: runs with zero instrumentation.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.stack not in STACKS:
            raise ConfigurationError(f"unknown stack {self.stack!r}; pick {STACKS}")
        if self.threads < 1:
            raise ConfigurationError("need at least one client thread")
        if not 1 <= self.max_batch:
            raise ConfigurationError("max_batch must be at least 1")


@dataclass
class StressReport:
    """What one torture run observed."""

    seed: int = 0
    threads: int = 0
    stack: str = ""
    batches: int = 0
    ops_executed: int = 0
    schedule_digest: str = ""
    violations: List[str] = field(default_factory=list)
    deadlocks: List[str] = field(default_factory=list)
    races: List[str] = field(default_factory=list)
    sanitizer_counters: Optional[Dict[str, int]] = None
    timeouts: int = 0
    overloads: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    retry_counters: Optional[dict] = None
    faults_injected: int = 0
    lock_stats: Optional[dict] = None
    gate_stats: Optional[dict] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Clean run: linearizable, no deadlock, no race, no corruption."""
        return (
            not self.violations and not self.deadlocks and not self.races
        )

    def summary(self) -> str:
        """Human-readable verdict with counters and the replay digest."""
        verdict = "CLEAN" if self.ok else "FAILED"
        lines = [
            f"stress[{self.stack}] seed={self.seed} threads={self.threads}: "
            f"{verdict} — {self.ops_executed} ops in {self.batches} batches "
            f"({self.elapsed:.2f}s), schedule {self.schedule_digest[:12]}",
        ]
        if self.timeouts or self.overloads:
            lines.append(
                f"  timeouts={self.timeouts} overloads={self.overloads}"
            )
        if self.retry_counters is not None:
            lines.append(
                f"  transients injected={self.faults_injected} "
                f"absorbed={self.retry_counters['retries']} "
                f"giveups={self.retry_counters['giveups']} "
                f"deadline_giveups={self.retry_counters['deadline_giveups']}"
            )
        if self.sanitizer_counters is not None:
            lines.append(
                f"  sanitizer: {self.sanitizer_counters['accesses']} "
                f"accesses / {self.sanitizer_counters['lock_events']} "
                f"lock events over "
                f"{self.sanitizer_counters['resources']} resources — "
                f"{self.sanitizer_counters['findings']} finding(s)"
            )
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        for deadlock in self.deadlocks:
            lines.append(f"  DEADLOCK: {deadlock}")
        for race in self.races:
            lines.append(f"  RACE: {race}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# sequential oracle
# ----------------------------------------------------------------------


class SequentialOracle:
    """A plain sorted-set model of the dense file's visible semantics.

    Results are encoded as small tuples so they compare ``==`` against
    what :func:`_execute` observed from the real file.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Optional[List] = None):
        self._keys: List = keys if keys is not None else []

    def copy(self) -> "SequentialOracle":
        """An independent snapshot (used to try batch permutations)."""
        return SequentialOracle(list(self._keys))

    def keys(self) -> List:
        """The current sorted key list (not a copy)."""
        return self._keys

    def apply(self, op: ClientOp) -> Tuple:
        """Run ``op`` sequentially and return its canonical outcome tuple."""
        keys = self._keys
        if op.kind == "insert":
            index = bisect.bisect_left(keys, op.key)
            if index < len(keys) and keys[index] == op.key:
                return ("error", "DuplicateKeyError")
            keys.insert(index, op.key)
            return ("ok",)
        if op.kind == "delete":
            index = bisect.bisect_left(keys, op.key)
            if index >= len(keys) or keys[index] != op.key:
                return ("error", "RecordNotFoundError")
            keys.pop(index)
            return ("ok",)
        if op.kind == "scan":
            index = bisect.bisect_left(keys, op.key)
            return ("scan", tuple(keys[index : index + op.arg]))
        if op.kind == "search":
            index = bisect.bisect_left(keys, op.key)
            found = index < len(keys) and keys[index] == op.key
            return ("hit",) if found else ("miss",)
        if op.kind == "count":
            lo = bisect.bisect_left(keys, op.key)
            hi = bisect.bisect_right(keys, op.key + op.arg)
            return ("count", hi - lo)
        raise AssertionError(f"unknown op kind {op.kind!r}")


def _execute(
    shared: ThreadSafeDenseFile, op: ClientOp, timeout: Optional[float]
) -> Tuple:
    """Issue one client operation; encode the outcome like the oracle."""
    try:
        if op.kind == "insert":
            shared.insert(op.key, timeout=timeout)
            return ("ok",)
        if op.kind == "delete":
            shared.delete(op.key, timeout=timeout)
            return ("ok",)
        if op.kind == "scan":
            records = shared.scan(op.key, op.arg, timeout=timeout)
            return ("scan", tuple(record.key for record in records))
        if op.kind == "search":
            record = shared.search(op.key, timeout=timeout)
            return ("hit",) if record is not None else ("miss",)
        if op.kind == "count":
            total = shared.count_range(op.key, op.key + op.arg, timeout=timeout)
            return ("count", total)
        raise AssertionError(f"unknown op kind {op.kind!r}")
    except OperationTimeout:  # lint: allow[errors] -- timeout is a recorded outcome here
        return ("timeout",)
    except OverloadError:
        return ("overload",)
    except ReproError as error:
        return ("error", type(error).__name__)
    except Exception as error:  # corruption shows up as arbitrary wreckage  # lint: allow[errors]
        return ("crash", f"{type(error).__name__}: {error}")


#: Outcomes that mean "the operation was rejected before touching the
#: file" — the oracle skips them when searching for a witness order.
_REJECTED = ("timeout", "overload")


def check_batch(
    oracle: SequentialOracle,
    executed: List[Tuple[ClientOp, Tuple]],
) -> Tuple[Optional[SequentialOracle], Optional[str]]:
    """Find a sequential witness order for one batch of outcomes.

    Returns ``(advanced_oracle, None)`` when some permutation of the
    batch explains every observed result, else ``(None, explanation)``.
    """
    for order in itertools.permutations(executed):
        candidate = oracle.copy()
        for op, observed in order:
            if observed[0] in _REJECTED or observed[0] == "crash":
                continue
            if candidate.apply(op) != observed:
                break
        else:
            return candidate, None
    detail = ", ".join(
        f"{op.describe()} -> {observed!r}" for op, observed in executed
    )
    return None, f"no sequential witness for batch [{detail}]"


# ----------------------------------------------------------------------
# schedule generation
# ----------------------------------------------------------------------


def build_streams(config: StressConfig) -> List[List[ClientOp]]:
    """Per-thread operation streams, a pure function of the config.

    Write traffic comes from :func:`~repro.workloads.generators.mixed_workload`
    split by key ownership (so each stream stays executable no matter
    how streams interleave); reads — scans, point lookups, range counts
    over the *whole* key space — are woven in between.
    """
    rng = random.Random(config.seed)
    writes = mixed_workload(
        config.total_ops,
        insert_ratio=config.insert_ratio,
        key_space=config.key_space,
        seed=config.seed,
    )
    streams = split_workload(writes, config.threads)
    client_streams: List[List[ClientOp]] = []
    for tid, stream in enumerate(streams):
        ops: List[ClientOp] = []
        for operation in stream:
            if rng.random() < config.read_fraction:
                kind = rng.choice(("scan", "search", "count"))
                key = rng.randrange(config.key_space)
                arg = rng.randrange(1, 24)
                ops.append(ClientOp(kind, key, arg, tid))
            kind = "insert" if operation.kind == INSERT else "delete"
            ops.append(ClientOp(kind, operation.key, 0, tid))
        client_streams.append(ops)
    return client_streams


def build_schedule(
    config: StressConfig, streams: List[List[ClientOp]]
) -> List[List[ClientOp]]:
    """Deterministic batches: seeded choice of who races whom, when."""
    rng = random.Random(config.seed ^ 0x5EED)
    cursors = [0] * len(streams)
    schedule: List[List[ClientOp]] = []
    while True:
        pending = [
            tid for tid, cursor in enumerate(cursors)
            if cursor < len(streams[tid])
        ]
        if not pending:
            break
        width = rng.randint(1, min(config.max_batch, len(pending)))
        chosen = rng.sample(pending, width)
        batch = []
        for tid in sorted(chosen):
            batch.append(streams[tid][cursors[tid]])
            cursors[tid] += 1
        schedule.append(batch)
    return schedule


def schedule_digest(schedule: List[List[ClientOp]]) -> str:
    """SHA-256 over the schedule's canonical description."""
    digest = hashlib.sha256()
    for batch in schedule:
        digest.update(
            ("|".join(op.describe() for op in batch) + "\n").encode()
        )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# file construction
# ----------------------------------------------------------------------


def _geometry(config: StressConfig) -> Tuple[int, int, int]:
    """An (M, d, D) that can hold the worst-case live set with slack."""
    d = 8
    num_pages = max(16, -(-config.total_ops // d) * 2)
    D = d + 3 * ceil_log2(num_pages) + 4
    return num_pages, d, D


def build_file(
    config: StressConfig,
    runtime: Optional["SanitizerRuntime"] = None,
) -> Tuple[DenseSequentialFile, Optional[FaultPlan]]:
    """The dense file (and fault plan, for the ``faulty`` stack).

    With a :class:`~repro.sanitizer.SanitizerRuntime` the *outermost*
    store of whichever stack the config names is wrapped in a
    :class:`~repro.sanitizer.SanitizedStore`, so the sanitizer observes
    exactly the logical access sequence the engine issues.
    """

    def wrap(store: PageStore) -> PageStore:
        if runtime is None:
            return store
        from ..sanitizer import SanitizedStore

        return SanitizedStore(store, runtime)

    num_pages, d, D = _geometry(config)
    if config.stack == "memory":
        if runtime is None:
            return DenseSequentialFile(num_pages, d, D), None
        store: PageStore = wrap(MemoryStore(num_pages))
        return DenseSequentialFile(num_pages, d, D, store=store), None
    if config.stack == "faulty":
        plan = FaultPlan(seed=config.seed, transient_rate=config.transient_rate)
        stack = fault_tolerant_stack(
            MemoryStore(num_pages),
            plan,
            BackoffPolicy(max_attempts=100),
        )
        return DenseSequentialFile(num_pages, d, D, store=wrap(stack)), plan
    if config.path is None:
        raise ConfigurationError(f"stack {config.stack!r} needs a path")
    disk = DiskStore.create(
        config.path, num_pages=num_pages, d=d, D=D, overwrite=True
    )
    store = disk
    if config.stack == "buffered":
        store = BufferedStore(disk, capacity=8)
    return DenseSequentialFile(num_pages, d, D, store=wrap(store)), None


# ----------------------------------------------------------------------
# the torture loop
# ----------------------------------------------------------------------


def _worker(
    shared: ThreadSafeDenseFile,
    inbox: "queue.Queue",
    outbox: "queue.Queue",
    timeout: Optional[float],
) -> None:
    while True:
        job = inbox.get()
        if job is None:
            return
        barrier, op = job
        try:
            barrier.wait(timeout=60.0)
            result = _execute(shared, op, timeout)
        except threading.BrokenBarrierError:
            result = ("crash", "start barrier broken")
        outbox.put((op, result))


def run_stress(
    config: StressConfig,
    shared: Optional[ThreadSafeDenseFile] = None,
) -> StressReport:
    """Run one seeded torture campaign and check it end to end.

    Pass ``shared`` to torture a pre-built front-end (the self-test
    uses this to run the identical schedule with the lock bypassed);
    by default the file and front-end come from the config.
    """
    streams = build_streams(config)
    schedule = build_schedule(config, streams)
    report = StressReport(
        seed=config.seed,
        threads=config.threads,
        stack=config.stack,
        schedule_digest=schedule_digest(schedule),
    )
    plan = None
    runtime: Optional["SanitizerRuntime"] = None
    owns_file = shared is None
    if owns_file:
        lock: Optional[FairRWLock] = None
        if config.sanitize:
            from ..sanitizer import SanitizedRWLock, SanitizerRuntime

            runtime = SanitizerRuntime()
            lock = SanitizedRWLock(runtime)
        dense, plan = build_file(config, runtime=runtime)
        shared = ThreadSafeDenseFile(
            dense,
            max_in_flight=config.max_in_flight,
            shed_load=config.shed_load,
            lock=lock,
        )
    inboxes = [queue.Queue() for _ in range(config.threads)]
    outbox: "queue.Queue" = queue.Queue()
    workers = [
        threading.Thread(
            target=_worker,
            args=(shared, inboxes[tid], outbox, config.op_timeout),
            daemon=True,
        )
        for tid in range(config.threads)
    ]
    for worker in workers:
        worker.start()

    oracle = SequentialOracle()
    start = time.monotonic()
    try:
        for index, batch in enumerate(schedule):
            barrier = threading.Barrier(len(batch))
            for op in batch:
                inboxes[op.thread].put((barrier, op))
            executed: List[Tuple[ClientOp, Tuple]] = []
            for _ in batch:
                try:
                    executed.append(outbox.get(timeout=config.batch_timeout))
                except queue.Empty:
                    report.deadlocks.append(
                        f"batch {index}: no result within "
                        f"{config.batch_timeout}s — workers stuck on "
                        f"[{', '.join(op.describe() for op in batch)}]"
                    )
                    return report
            report.batches += 1
            report.ops_executed += len(executed)
            for op, observed in executed:
                if observed[0] == "timeout":
                    report.timeouts += 1
                elif observed[0] == "overload":
                    report.overloads += 1
                elif observed[0] in ("error", "crash"):
                    label = observed[1].split(":")[0]
                    report.errors[label] = report.errors.get(label, 0) + 1
                if observed[0] == "crash":
                    report.violations.append(
                        f"batch {index}: {op.describe()} crashed: "
                        f"{observed[1]}"
                    )
            advanced, problem = check_batch(oracle, executed)
            if problem is not None:
                report.violations.append(f"batch {index}: {problem}")
                return report
            oracle = advanced
            if (index + 1) % config.check_contents_every == 0:
                mismatch = _contents_mismatch(shared, oracle, config)
                if mismatch:
                    report.violations.append(f"batch {index}: {mismatch}")
                    return report
        mismatch = _contents_mismatch(shared, oracle, config)
        if mismatch:
            report.violations.append(f"final: {mismatch}")
        try:
            shared.validate()
        except Exception as error:  # lint: allow[errors] -- recorded as a violation
            report.violations.append(
                f"final validate(): {type(error).__name__}: {error}"
            )
    finally:
        for inbox in inboxes:
            inbox.put(None)
        for worker in workers:
            worker.join(timeout=10.0)
        report.elapsed = time.monotonic() - start
        report.lock_stats = shared.lock.stats()
        if shared.gate is not None:
            report.gate_stats = shared.gate.stats()
        stats = shared.concurrency_stats()
        layers = stats.get("retries")
        if layers:
            report.retry_counters = layers[0]
        if plan is not None:
            report.faults_injected = plan.transients_injected
        if runtime is not None:
            race_report = runtime.report()
            report.races = [
                finding.render() for finding in race_report.findings
            ]
            report.sanitizer_counters = race_report.counters()
        if owns_file:
            shared.inner.close()
    return report


def _contents_mismatch(
    shared: ThreadSafeDenseFile,
    oracle: SequentialOracle,
    config: StressConfig,
) -> Optional[str]:
    observed = [
        record.key
        for record in shared.range(-1, config.key_space + 1, timeout=None)
    ]
    if observed != oracle.keys():
        return (
            f"contents diverge from oracle: file has {len(observed)} "
            f"keys, oracle has {len(oracle.keys())} "
            f"(first difference at index "
            f"{_first_difference(observed, oracle.keys())})"
        )
    return None


def _first_difference(left: List, right: List) -> int:
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return index
    return min(len(left), len(right))


# ----------------------------------------------------------------------
# replica-reads schedule: writers on the primary, readers on the replica
# ----------------------------------------------------------------------


@dataclass
class ReplicaStressConfig:
    """A replica-reads torture run: writers on node A, readers on B."""

    path: Optional[str] = None
    threads: int = 2
    readers: int = 2
    total_ops: int = 120
    seed: int = 0
    insert_ratio: float = 0.7
    key_space: int = 10_000
    op_timeout: Optional[float] = 30.0
    sync_interval: float = 0.002

    def __post_init__(self) -> None:
        if self.threads < 1 or self.readers < 1:
            raise ConfigurationError(
                "replica stress needs at least one writer and one reader"
            )


@dataclass
class ReplicaStressReport:
    """What one replica-reads run observed."""

    seed: int = 0
    writers: int = 0
    readers: int = 0
    writes_applied: int = 0
    snapshots_checked: int = 0
    records_shipped: int = 0
    records_applied: int = 0
    final_sequence: int = 0
    final_lag: int = 0
    timeouts: int = 0
    violations: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Every snapshot was a committed prefix and lag drained to 0."""
        return not self.violations

    def summary(self) -> str:
        """Human-readable verdict with shipping and snapshot counters."""
        verdict = "CLEAN" if self.ok else "FAILED"
        lines = [
            f"replica-stress seed={self.seed} writers={self.writers} "
            f"readers={self.readers}: {verdict} — "
            f"{self.writes_applied} writes, {self.snapshots_checked} "
            f"prefix-consistent snapshots, shipped="
            f"{self.records_shipped} applied={self.records_applied}, "
            f"final LSN {self.final_sequence} (lag {self.final_lag}), "
            f"{self.elapsed:.2f}s",
        ]
        if self.timeouts:
            lines.append(f"  timeouts={self.timeouts}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def run_replica_stress(config: ReplicaStressConfig) -> ReplicaStressReport:
    """Writers on the primary, readers on the replica, digests between.

    Writer threads drive disjoint seeded insert/delete streams through
    a :class:`ThreadSafeDenseFile` over a journaled primary; an applier
    thread continuously drains the WAL shipper into the replica; reader
    threads take :meth:`~repro.replication.Replica.snapshot` pairs and
    check each snapshot's record digest against the digest the
    primary-side :class:`~repro.replication.StateRecorder` captured at
    exactly that committed sequence.  Any mismatch — a torn, reordered
    or mid-transaction replica state — is a violation, as is residual
    lag after the final drain.
    """
    # Imported here: the replication package layers on top of this
    # harness's package, and the base torture must import without it.
    from ..persistent import JournaledDenseFile
    from ..replication import Failover, QueueTransport, bootstrap_replica
    from ..replication.failover import records_digest

    if config.path is None:
        raise ConfigurationError("replica stress needs a path")
    report = ReplicaStressReport(
        seed=config.seed, writers=config.threads, readers=config.readers
    )
    num_pages, d, D = _geometry(
        StressConfig(total_ops=config.total_ops, seed=config.seed)
    )
    primary = JournaledDenseFile.create(
        config.path, num_pages=num_pages, d=d, D=D, overwrite=True
    )
    shared = ThreadSafeDenseFile(primary)
    replica = bootstrap_replica(primary, config.path + ".replica")
    pair = Failover(primary, replica, QueueTransport())

    streams = split_workload(
        mixed_workload(
            config.total_ops,
            insert_ratio=config.insert_ratio,
            key_space=config.key_space,
            seed=config.seed,
        ),
        config.threads,
    )
    stop = threading.Event()
    failures: "queue.Queue" = queue.Queue()

    def writer(stream: List) -> None:
        for operation in stream:
            try:
                if operation.kind == INSERT:
                    shared.insert(operation.key, timeout=config.op_timeout)
                else:
                    shared.delete(operation.key, timeout=config.op_timeout)
                report.writes_applied += 1
            except OperationTimeout:  # lint: allow[errors] -- counted, run continues
                report.timeouts += 1
            except ReproError:
                # Duplicate/missing keys can happen when streams race;
                # the digest check below is the correctness oracle.
                pass

    def applier() -> None:
        while not stop.is_set():
            try:
                pair.sync(timeout=config.op_timeout)
            except ReproError as error:
                failures.put(f"applier: {type(error).__name__}: {error}")
                return
            stop.wait(config.sync_interval)

    def reader() -> None:
        while not stop.is_set():
            try:
                sequence, records = replica.snapshot(
                    timeout=config.op_timeout
                )
            except OperationTimeout:  # lint: allow[errors] -- counted, run continues
                report.timeouts += 1
                continue
            except ReproError as error:
                failures.put(f"reader: {type(error).__name__}: {error}")
                return
            expected = pair.recorder.digest_at(sequence)
            if expected is None:
                failures.put(
                    f"snapshot at sequence {sequence} which the primary "
                    "never committed"
                )
                return
            if records_digest(records) != expected:
                failures.put(
                    f"snapshot at sequence {sequence} is not the "
                    "primary's committed state at that sequence"
                )
                return
            report.snapshots_checked += 1

    writer_threads = [
        threading.Thread(target=writer, args=(stream,), daemon=True)
        for stream in streams
    ]
    helper_threads = [
        threading.Thread(target=applier, daemon=True)
    ] + [
        threading.Thread(target=reader, daemon=True)
        for _ in range(config.readers)
    ]
    start = time.monotonic()
    for thread in helper_threads + writer_threads:
        thread.start()
    try:
        for thread in writer_threads:
            thread.join(timeout=120.0)
    finally:
        stop.set()
        for thread in helper_threads:
            thread.join(timeout=30.0)
        report.elapsed = time.monotonic() - start
    while not failures.empty():
        report.violations.append(failures.get())

    # Final drain: everything committed must reach the replica, and the
    # fully caught-up snapshot must equal the primary's final state.
    if not report.violations:
        pair.sync(timeout=config.op_timeout)
        report.final_lag = pair.lag()
        if report.final_lag:
            report.violations.append(
                f"replica still lags by {report.final_lag} after drain"
            )
        sequence, records = replica.snapshot(timeout=config.op_timeout)
        expected = pair.recorder.digest_at(sequence)
        if expected is None or records_digest(records) != expected:
            report.violations.append(
                f"final snapshot at sequence {sequence} diverges from "
                "the primary's committed state"
            )
    report.final_sequence = replica.applied_sequence
    report.records_shipped = pair.shipper.shipped
    report.records_applied = replica.records_applied
    replica.close()
    shared.inner.close()
    return report


# ----------------------------------------------------------------------
# negative controls: the harness proves its own teeth
# ----------------------------------------------------------------------


class _YieldingStore(PageStore):
    """Pass-through store that sleeps between page touches.

    Widens every window between a read and its dependent write, so a
    deliberately unlocked run interleaves destructively with near
    certainty.  ``move_records`` uses the inherited get/put default,
    planting a yield inside every SHIFT step.
    """

    name = "yielding"

    def __init__(self, inner: PageStore, delay: float = 0.0005):
        self.inner = inner
        self.num_pages = inner.num_pages
        self.delay = delay

    def peek(self, page_number: int) -> Page:
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        time.sleep(self.delay)
        return self.inner.get_page(page_number)

    def put_page(self, page_number: int) -> None:
        time.sleep(self.delay)
        self.inner.put_page(page_number)

    def flush(self) -> int:
        return self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def stats(self) -> Dict[str, object]:
        return {"backend": self.name, "inner": self.inner.stats()}


def negative_control_race(seed: int = 0, attempts: int = 3) -> bool:
    """Bypass the lock and check the harness catches the carnage.

    Returns ``True`` when a race was detected (contents diverged, an
    invariant broke, or an operation crashed outright) within
    ``attempts`` seeded rounds.  The hardened front-end runs the same
    pattern clean, so detection here is the harness's teeth, not noise.
    """
    for attempt in range(attempts):
        if _race_round(seed + attempt):
            return True
    return False


def _race_round(seed: int) -> bool:
    rng = random.Random(seed)
    num_pages, d = 16, 8
    D = d + 3 * ceil_log2(num_pages) + 4
    store = _YieldingStore(MemoryStore(num_pages))
    dense = DenseSequentialFile(num_pages, d, D, store=store)
    unlocked = ThreadSafeDenseFile(dense, bypass_lock=True)
    threads, per_thread = 4, 12
    # Interleaved key stripes: every thread hammers the same pages.
    keys = rng.sample(range(1000), threads * per_thread)
    start = threading.Barrier(threads)
    failures: List[str] = []

    def client(tid: int) -> None:
        try:
            start.wait(timeout=30.0)
            for key in keys[tid::threads]:
                unlocked.insert(key)
        except Exception as error:  # lint: allow[errors] -- wreckage is the expected outcome
            failures.append(f"{type(error).__name__}: {error}")

    clients = [
        threading.Thread(target=client, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=60.0)
    if failures:
        return True
    try:
        stored = [record.key for record in dense.range(-1, 1001)]
        if stored != sorted(keys):
            return True
        dense.validate()
    except Exception:  # lint: allow[errors] -- any wreckage proves the negative control
        return True
    return False


def negative_control_deadlock(hold: float = 0.05, budget: float = 0.5) -> bool:
    """Two lock acquisitions in opposite orders, raced in one batch.

    A guaranteed lock-order inversion: each client takes its first lock,
    meets the other at a barrier, then requests the other's lock.  With
    unbounded waiting this hangs forever; with per-operation deadlines
    the harness observes :class:`~repro.core.errors.OperationTimeout`
    from both clients and reports the deadlock instead of wedging the
    build.  Returns ``True`` when the timeout path fired as designed.
    """
    lock_a, lock_b = FairRWLock(), FairRWLock()
    meet = threading.Barrier(2)
    outcomes: List[str] = []

    def client(first: FairRWLock, second: FairRWLock) -> None:
        with first.write_locked(Deadline.after(budget)):
            meet.wait(timeout=30.0)
            time.sleep(hold)
            try:
                # lint: allow[lock-order] -- deliberate ABBA deadlock for the negative control
                with second.write_locked(Deadline.after(budget)):
                    outcomes.append("acquired")
            except OperationTimeout:  # lint: allow[errors] -- timeout is the expected outcome
                outcomes.append("timeout")

    clients = [
        threading.Thread(target=client, args=pair, daemon=True)
        for pair in ((lock_a, lock_b), (lock_b, lock_a))
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=60.0)
    return "timeout" in outcomes


@dataclass
class SelfTestReport:
    """Outcome of the harness's own positive + negative controls."""

    clean: StressReport
    race_detected: bool
    deadlock_detected: bool

    @property
    def ok(self) -> bool:
        return self.clean.ok and self.race_detected and self.deadlock_detected

    def summary(self) -> str:
        """One line per control, each with its own ok/FAILED mark."""

        def mark(value: bool) -> str:
            return "ok" if value else "FAILED"

        return "\n".join(
            [
                self.clean.summary(),
                f"negative control (seeded race, lock bypassed): "
                f"{mark(self.race_detected)} — corruption detected",
                f"negative control (lock-order deadlock): "
                f"{mark(self.deadlock_detected)} — deadline fired",
            ]
        )


def self_test(seed: int = 0, total_ops: int = 120) -> SelfTestReport:
    """Positive control plus both negative controls, in one verdict."""
    clean = run_stress(StressConfig(seed=seed, total_ops=total_ops))
    return SelfTestReport(
        clean=clean,
        race_detected=negative_control_race(seed),
        deadlock_detected=negative_control_deadlock(),
    )
