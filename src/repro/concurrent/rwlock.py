"""A fair reader-writer lock with deadline-aware acquisition.

Queries against a dense file never mutate the structure, so they can
share the file; inserts, deletes and compactions are the paper's
single-writer algorithms and must run alone.  :class:`FairRWLock`
provides exactly that split with two properties the coarse global lock
it replaces lacked:

**Fairness.**  Waiters are served in strict arrival order: a run of
readers at the head of the queue enters together, a writer enters
alone.  A writer can therefore never be starved by a stream of readers
(new readers queue *behind* the waiting writer), and readers can never
be starved by back-to-back writers — the worst case any waiter sees is
the waiters ahead of it, mirroring the paper's worst-case-over-
amortized philosophy at the concurrency layer.

**Deadlines.**  Both acquisition paths take a
:class:`~repro.concurrent.deadline.Deadline`; a waiter whose budget
expires leaves the queue and raises
:class:`~repro.core.errors.OperationTimeout` instead of blocking
forever.  Lock acquisition, not just the work under the lock, respects
the operation's time budget.

The lock is deliberately **not reentrant**: a thread that already
holds the write side and tries to take either side again will wait on
itself (and time out, if it has a deadline).  The front-end never
nests acquisitions; the torture harness's deadlock negative control
relies on the timeout path making such bugs visible instead of hanging.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from ..core.errors import LockProtocolError, OperationTimeout
from .deadline import Deadline


class _Waiter:
    """One queued acquisition request (FIFO ticket)."""

    __slots__ = ("wants_write",)

    def __init__(self, wants_write: bool):
        self.wants_write = wants_write


class _LockHandle:
    """Context manager returned by the ``*_locked`` helpers."""

    __slots__ = ("_lock", "_write")

    def __init__(self, lock: "FairRWLock", write: bool):
        self._lock = lock
        self._write = write

    def __enter__(self) -> "_LockHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._write:
            self._lock.release_write()
        else:
            self._lock.release_read()


class FairRWLock:
    """FIFO-fair shared/exclusive lock with per-acquisition deadlines."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._active_readers = 0
        self._writer_active = False
        self._clock = clock
        # Observability counters (read under the internal mutex).
        self.readers_served = 0
        self.writers_served = 0
        self.timeouts = 0
        self.max_queue_depth = 0

    # -- admission rule -------------------------------------------------

    def _may_enter(self, waiter: _Waiter) -> bool:
        """FIFO rule: enter only when nothing conflicting is ahead."""
        if waiter.wants_write:
            return (
                not self._writer_active
                and self._active_readers == 0
                and self._queue[0] is waiter
            )
        if self._writer_active:
            return False
        for ahead in self._queue:
            if ahead is waiter:
                return True
            if ahead.wants_write:
                return False
        raise AssertionError("waiter vanished from the queue")

    def _acquire(self, wants_write: bool, deadline: Optional[Deadline]) -> None:
        budget = deadline if deadline is not None else Deadline.unbounded()
        waiter = _Waiter(wants_write)
        with self._cond:
            self._queue.append(waiter)
            self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
            try:
                while not self._may_enter(waiter):
                    if not self._cond.wait(budget.wait_budget()):
                        if budget.expired:
                            self.timeouts += 1
                            kind = "write" if wants_write else "read"
                            raise OperationTimeout(
                                f"{kind}-lock acquisition: deadline expired "
                                f"with {len(self._queue)} waiter(s) queued"
                            )
            except BaseException:
                self._queue.remove(waiter)
                # Our departure may unblock the waiters behind us.
                self._cond.notify_all()
                raise
            self._queue.remove(waiter)
            if wants_write:
                self._writer_active = True
                self.writers_served += 1
            else:
                self._active_readers += 1
                self.readers_served += 1
                # A contiguous run of readers enters together.
                self._cond.notify_all()

    # -- public API -----------------------------------------------------

    def acquire_read(self, deadline: Optional[Deadline] = None) -> None:
        """Join the readers (shared); honours ``deadline`` while queued."""
        self._acquire(False, deadline)

    def acquire_write(self, deadline: Optional[Deadline] = None) -> None:
        """Become the sole writer; honours ``deadline`` while queued."""
        self._acquire(True, deadline)

    def release_read(self) -> None:
        """Leave the readers; wakes the queue when the last one leaves."""
        with self._cond:
            if self._active_readers <= 0:
                raise LockProtocolError("release_read without a matching acquire")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def release_write(self) -> None:
        """Release exclusivity and wake the queue."""
        with self._cond:
            if not self._writer_active:
                raise LockProtocolError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    def read_locked(self, deadline: Optional[Deadline] = None) -> _LockHandle:
        """``with lock.read_locked(deadline):`` acquire/release helper."""
        self.acquire_read(deadline)
        return _LockHandle(self, write=False)

    def write_locked(self, deadline: Optional[Deadline] = None) -> _LockHandle:
        """``with lock.write_locked(deadline):`` acquire/release helper."""
        self.acquire_write(deadline)
        return _LockHandle(self, write=True)

    # -- introspection --------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Waiters currently queued (a point-in-time snapshot)."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """Service and contention counters as a printable dictionary."""
        with self._cond:
            return {
                "readers_served": self.readers_served,
                "writers_served": self.writers_served,
                "timeouts": self.timeouts,
                "max_queue_depth": self.max_queue_depth,
                "active_readers": self._active_readers,
                "writer_active": self._writer_active,
                "queued": len(self._queue),
            }
