"""A conservative project-wide call graph for interprocedural rules.

The per-file checkers see one module at a time; this module gives them
the *project*: every function and method across the scanned roots,
indexed so a call site can be resolved to its definition, plus a
fixpoint fact propagator.  LNT003 uses it to add "held X while calling
a function that (transitively) acquires Y" edges to the lock-order
graph, LNT006 to flag callers that hold a budget but forward none to a
blocking callee, and LNT007 to follow unguarded paths from a public
front-end method down to an engine/store mutation buried in a helper —
in another function or another file, where per-file analysis provably
cannot see it.

Resolution is deliberately conservative — precision serves soundness of
the *clean* verdict, not completeness of the graph.  A call site
resolves only when the target is unambiguous:

* ``self.method(...)`` — the method in the caller's own class (or a
  base class defined in the project),
* ``super().method(...)`` — the method in a project-defined base,
* ``name(...)`` — a module-level function in the same module, or the
  unique project function a ``from x import name`` names,
* ``obj.method(...)`` — only when exactly one project function bears
  that name *and* the name is not a common container/threading method
  (``put``, ``wait``, ``acquire`` …) that more likely names a stdlib
  object.

Everything else — duplicate names, dynamic dispatch, builtins — stays
unresolved, so facts never flow through an edge the analysis is not
sure about and the live tree cannot pick up findings from a
mis-resolved stdlib call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import SourceFile, attribute_chain, call_name

#: Method names too generic to resolve by project-wide uniqueness: they
#: usually name a stdlib list/dict/queue/threading object, and a lucky
#: project-unique homonym must not inject facts into unrelated callers.
COMMON_METHOD_NAMES = frozenset(
    {
        "acquire", "add", "append", "clear", "close", "copy", "discard",
        "extend", "get", "insert", "is_alive", "items", "join", "keys",
        "notify", "notify_all", "pop", "popleft", "put", "read", "release",
        "remove", "sort", "start", "update", "values", "wait", "write",
    }
)


@dataclass
class FunctionInfo:
    """One function or method definition somewhere in the project."""

    qualname: str  #: ``relpath::Class.method`` or ``relpath::function``
    name: str  #: the bare definition name
    relpath: str
    klass: Optional[str]  #: owning class name, ``None`` for module level
    source: SourceFile
    node: ast.FunctionDef
    params: Tuple[str, ...]  #: argument names, ``self``/``cls`` dropped

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition: its methods and project-resolvable bases."""

    name: str
    relpath: str
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``node``'s own scope — nested ``def``s excluded.

    Nested functions get their own :class:`FunctionInfo` and their own
    pass; walking into them here would attribute their contents (and
    any facts those imply) to the enclosing function.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call in ``node``'s own scope — nested ``def``s excluded."""
    for child in walk_scope(node):
        if isinstance(child, ast.Call):
            yield child


class Project:
    """The scanned sources as one indexed, resolvable call graph."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        #: qualname -> definition, in deterministic scan order.
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> definition; ``None`` marks an ambiguous name
        #: (defined in several files) that must not resolve.
        self._classes: Dict[str, Optional[ClassInfo]] = {}
        #: relpath -> module-level function name -> definition.
        self._module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        #: relpath -> imported alias -> target bare name.
        self._imports: Dict[str, Dict[str, str]] = {}
        #: bare name -> every definition using it.
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: id(ast node) -> its FunctionInfo, for checker lookups.
        self._by_node: Dict[int, FunctionInfo] = {}
        #: qualname -> resolved callee qualnames (for propagation).
        self._callees: Dict[str, Set[str]] = {}
        for source in sources:
            self._index_source(source)
        for info in self.functions.values():
            self._callees[info.qualname] = {
                callee.qualname
                for _, callee in self.callsites(info)
                if callee is not None
            }

    # -- indexing -----------------------------------------------------------

    def _index_source(self, source: SourceFile) -> None:
        module = self._module_functions.setdefault(source.relpath, {})
        imports = self._imports.setdefault(source.relpath, {})
        for node in source.tree.body:
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.FunctionDef):
                info = self._register(source, node, klass=None)
                module[node.name] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(source, node)

    def _index_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        base_chains = [attribute_chain(expr) for expr in node.bases]
        bases = tuple(chain[-1] for chain in base_chains if chain)
        klass = ClassInfo(name=node.name, relpath=source.relpath, bases=bases)
        for child in node.body:
            if isinstance(child, ast.FunctionDef):
                klass.methods[child.name] = self._register(
                    source, child, klass=node.name
                )
        if node.name in self._classes:
            self._classes[node.name] = None  # ambiguous: never resolve
        else:
            self._classes[node.name] = klass

    def _register(
        self, source: SourceFile, node: ast.FunctionDef, klass: Optional[str]
    ) -> FunctionInfo:
        prefix = f"{klass}." if klass else ""
        qualname = f"{source.relpath}::{prefix}{node.name}"
        params = [arg.arg for arg in node.args.args]
        params += [arg.arg for arg in node.args.kwonlyargs]
        if klass and params and params[0] in ("self", "cls"):
            params = params[1:]
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            relpath=source.relpath,
            klass=klass,
            source=source,
            node=node,
            params=tuple(params),
        )
        self.functions[qualname] = info
        self._by_name.setdefault(node.name, []).append(info)
        self._by_node[id(node)] = info
        return info

    # -- lookups ------------------------------------------------------------

    def function_for(self, node: ast.FunctionDef) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` registered for this exact AST node."""
        return self._by_node.get(id(node))

    def callsites(
        self, caller: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """``(call node, resolved definition or None)`` for every call."""
        for call in walk_calls(caller.node):
            yield call, self.resolve_call(caller, call)

    def resolved_callees(self, qualname: str) -> Set[str]:
        """Qualnames this function's resolved call sites reach."""
        return self._callees.get(qualname, set())

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project definition this call targets, or ``None``."""
        name = call_name(call)
        if not name:
            return None
        if isinstance(call.func, ast.Attribute):
            value = call.func.value
            if (
                isinstance(value, ast.Call)
                and call_name(value) == "super"
                and caller.klass
            ):
                return self._method_in_bases(caller.klass, name)
            receiver = attribute_chain(value)
            if receiver == ["self"] and caller.klass:
                found = self._method_in_class(caller.klass, name)
                if found is not None:
                    return found
            return self._unique_method(name)
        # Bare ``name(...)``: same module, then explicit import, then a
        # project-unique module-level function.
        module = self._module_functions.get(caller.relpath, {})
        if name in module:
            return module[name]
        target = self._imports.get(caller.relpath, {}).get(name, name)
        candidates = [
            info
            for info in self._by_name.get(target, [])
            if info.klass is None
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _method_in_class(
        self, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            klass = self._classes.get(current)
            if klass is None:
                continue
            if method in klass.methods:
                return klass.methods[method]
            queue.extend(klass.bases)
        return None

    def _method_in_bases(
        self, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        klass = self._classes.get(class_name)
        if klass is None:
            return None
        for base in klass.bases:
            found = self._method_in_class(base, method)
            if found is not None:
                return found
        return None

    def _unique_method(self, name: str) -> Optional[FunctionInfo]:
        if name in COMMON_METHOD_NAMES:
            return None
        candidates = self._by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- fact propagation ---------------------------------------------------

    def propagate(self, direct: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
        """Transitive closure of per-function facts over the call graph.

        ``result(f) = direct(f) | union(result(g))`` for every resolved
        callee ``g``; computed to fixpoint, so recursion and mutual
        calls converge instead of looping.
        """
        result: Dict[str, Set[str]] = {
            qualname: set(direct.get(qualname, ())) for qualname in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname in self.functions:
                facts = result[qualname]
                before = len(facts)
                for callee in self._callees.get(qualname, ()):
                    facts |= result.get(callee, set())
                if len(facts) != before:
                    changed = True
        return result
