"""LNT008: acquired handles must survive the exception edges between
acquisition and release.

The storage and network layers hand out handles that hold real
resources — ``open(...)`` file objects, page stores from ``create`` /
``make_store``, sockets from ``socket`` / ``create_connection``.  A
handle bound to a local variable has exactly three honest fates:

* it **escapes** — returned, yielded, stored on an object, or passed
  into another call (ownership transfers with it),
* it is **released** under protection — a ``with`` block, or a
  ``close()`` / ``release()`` inside a ``try``'s ``finally`` or an
  exception handler,
* or it is released on the straight-line path *with no call in
  between that could raise*.

Anything else leaks on the exception edge: ``h = open(p)`` followed by
``h.read()`` followed by ``h.close()`` drops the descriptor the moment
``read`` raises, because nothing runs the ``close``.  The checker
flags both that shape and the simpler one where a tracked handle is
never released or handed off at all.

The escape rule is deliberately generous — passing the handle to *any*
call counts as a transfer — so constructor-wrapping (``cls(raw)``) and
helper hand-offs stay clean; the rule exists to catch plainly dropped
descriptors, not to litigate ownership conventions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..callgraph import walk_scope
from ..framework import (
    Checker,
    Finding,
    SourceFile,
    attribute_chain,
    call_name,
    in_package,
)

#: Call names that produce a resource-owning handle.
ACQUIRE_NAMES = frozenset(
    {
        "open",
        "create",
        "connect",
        "create_connection",
        "socket",
        "make_store",
        "mkstemp",
    }
)

RELEASE_NAMES = frozenset({"close", "release", "shutdown"})


class ResourceLeakChecker(Checker):
    rule_id = "LNT008"
    slug = "leaks"
    title = "handles released on every exception edge"
    hint = (
        "wrap the handle in `with` (or `contextlib.closing`), or close it "
        "in a `try`/`finally` that starts right at the acquisition"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere handles are minted or piped: the storage engine
        and the layers that stack stores, replicas and sockets on it."""
        return (
            in_package(relpath, "storage")
            or in_package(relpath, "concurrent")
            or in_package(relpath, "replication")
            or in_package(relpath, "cluster")
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag handle acquisitions whose release an exception can skip."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.FunctionDef):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        protected = self._protected_calls(function)
        for statement in walk_scope(function):
            if not isinstance(statement, ast.Assign):
                continue
            if len(statement.targets) != 1 or not isinstance(
                statement.targets[0], ast.Name
            ):
                continue
            value = statement.value
            if not isinstance(value, ast.Call):
                continue
            if call_name(value) not in ACQUIRE_NAMES:
                continue
            handle = statement.targets[0].id
            finding = self._track(source, function, handle, value, protected)
            if finding is not None:
                yield finding

    def _track(
        self,
        source: SourceFile,
        function: ast.FunctionDef,
        handle: str,
        acquire: ast.Call,
        protected: Set[int],
    ) -> Optional[Finding]:
        acquired = ".".join(attribute_chain(acquire.func)) or call_name(acquire)
        releases: List[ast.Call] = []
        release_ids = set()
        escapes = False
        for node in walk_scope(function):
            if isinstance(node, ast.Call):
                if node is acquire:
                    continue
                if self._is_release(node, handle):
                    releases.append(node)
                    release_ids.add(id(node))
                elif self._passes_handle(node, handle):
                    escapes = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if self._mentions(getattr(node, "value", None), handle):
                    escapes = True
            elif isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == handle
                    and any(
                        not isinstance(target, ast.Name)
                        for target in node.targets
                    )
                ):
                    escapes = True
            elif isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == handle:
                        escapes = True
        if escapes:
            return None  # ownership handed off; the new owner releases
        if not releases:
            return self.finding(
                source,
                acquire,
                f"handle from `{acquired}(...)` is never closed or handed "
                "off on any path out of this function",
            )
        if any(id(release) in protected for release in releases):
            return None
        first_release = min(release.lineno for release in releases)
        for node in walk_scope(function):
            if not isinstance(node, ast.Call) or id(node) in release_ids:
                continue
            if acquire.lineno < node.lineno < first_release:
                return self.finding(
                    source,
                    acquire,
                    f"an exception raised between `{acquired}(...)` and its "
                    f"`.close()` (line {first_release}) leaks the handle — "
                    "nothing on that edge releases it",
                )
        return None

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _is_release(node: ast.Call, handle: str) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        chain = attribute_chain(node.func.value)
        return chain == [handle] and node.func.attr in RELEASE_NAMES

    @staticmethod
    def _passes_handle(node: ast.Call, handle: str) -> bool:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for child in ast.walk(arg):
                if isinstance(child, ast.Name) and child.id == handle:
                    return True
        return False

    @staticmethod
    def _mentions(node: Optional[ast.AST], handle: str) -> bool:
        if node is None:
            return False
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id == handle:
                return True
        return False

    @staticmethod
    def _protected_calls(function: ast.FunctionDef) -> Set[int]:
        """``id()`` of every call inside a finally or except block —
        those run on the exception edge, so a release there is safe."""
        protected: Set[int] = set()
        for node in walk_scope(function):
            if not isinstance(node, ast.Try):
                continue
            regions: List[ast.AST] = list(node.finalbody)
            regions.extend(node.handlers)
            for region in regions:
                for child in ast.walk(region):
                    if isinstance(child, ast.Call):
                        protected.add(id(child))
        return protected
