"""LNT001: algorithm layers must not bypass page-access accounting.

The paper's ``O(log^2 M / (D - d))`` bound is *measured* through the
logical counters that :class:`~repro.storage.pagefile.PageFile` charges
on every page touch.  An engine or baseline that reaches past that
surface — ``self.store.get_page(...)``, ``pagefile.store.peek(...)``,
``raw.read_page(...)`` — touches a page without charging it, which
silently invalidates every reported access count.  This checker bans
such calls in modules under ``core/`` and ``baselines/``.

Lifecycle and introspection methods on a store (``stats``, ``flush``,
``close``, ``closed``) are not page touches and stay allowed; a
genuinely uncharged access (recovery code, invariant checkers) carries
an explicit ``# lint: allow[accounting]`` pragma so reviewers see it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, SourceFile, attribute_chain, in_package

#: PageStore/backend primitives that touch a page when called.  The
#: packed-page surface added uncharged variants of its own: the fused
#: double read (``get_page2``), the raw column move helper
#: (``move_between``), and the image codec entry points that hand back
#: page bytes without metering the touch.
STORE_PRIMITIVES = frozenset(
    {
        "get_page",
        "get_page2",
        "put_page",
        "peek",
        "move_records",
        "move_between",
        "prefetch",
        "read_page",
        "write_page",
        "encode_page_image",
        "decode_page_image",
    }
)

#: Receiver names that identify a raw store/backend object.  ``PageFile``
#: methods of the same name (``read_page``, ``move_records``) remain
#: allowed because their receiver chain (``self.pages``) carries none of
#: these markers.  ``packed`` covers the byte-image module itself
#: (``packed.decode_page_image(...)`` reconstructs a page with no
#: charge).
STORE_RECEIVERS = frozenset({"store", "raw", "backend", "inner", "pool", "packed"})


class AccountingChecker(Checker):
    rule_id = "LNT001"
    slug = "accounting"
    title = "logical page-access accounting"
    hint = (
        "go through the counter-bearing PageFile surface "
        "(read_page/insert_record/...) or justify with "
        "`# lint: allow[accounting]`"
    )

    def applies_to(self, relpath: str) -> bool:
        """Accounting covers the algorithm layers: ``core/`` and ``baselines/``."""
        return in_package(relpath, "core") or in_package(relpath, "baselines")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag direct store-primitive calls that bypass the access counters."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in STORE_PRIMITIVES:
                continue
            receiver = attribute_chain(node.func.value)
            if not set(receiver) & STORE_RECEIVERS:
                continue
            dotted = ".".join(receiver + [node.func.attr])
            yield self.finding(
                source,
                node,
                f"direct store primitive `{dotted}(...)` bypasses the "
                "logical page-access counters the paper's bound is "
                "measured through",
            )
