"""LNT006: blocking calls in ``concurrent/`` must carry a time budget.

The concurrency layer's contract is that no operation blocks past its
``timeout=``/``deadline=`` budget — the wall-clock analogue of the
paper's worst-case page-access bound.  That only holds if every
blocking primitive in the package forwards the budget.  Flagged shapes:

* ``cond.wait()`` with no argument — an unbounded sleep; pass
  ``budget.wait_budget()``,
* ``acquire_read()`` / ``acquire_write()`` / ``read_locked()`` /
  ``write_locked()`` with no deadline argument,
* ``gate.enter(kind)`` without a deadline (second positional or
  ``deadline=``),
* ``thread.join()`` with no timeout — a deadlocked worker would hang
  the caller forever,
* and — interprocedurally, via the whole-project call graph — a caller
  that *has* a ``timeout=``/``deadline=`` budget calling a project
  function that may block and accepts a budget, without forwarding
  one.  The callee's blocking primitive may sit arbitrarily deep in
  other modules; per-file analysis sees a perfectly innocent call.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Set

from ..callgraph import walk_scope
from ..framework import Checker, Finding, SourceFile, attribute_chain, in_package

if TYPE_CHECKING:
    from ..callgraph import Project

LOCK_ACQUIRE = frozenset(
    {"acquire_read", "acquire_write", "read_locked", "write_locked"}
)

#: Parameter names that carry an operation's time budget.
BUDGET_PARAMS = frozenset({"timeout", "deadline", "budget", "op_timeout"})


class DeadlineChecker(Checker):
    rule_id = "LNT006"
    slug = "deadlines"
    title = "deadline propagation on blocking calls"
    hint = "accept and forward the operation's timeout=/deadline= budget"

    def __init__(self) -> None:
        self._project: Optional["Project"] = None
        #: Qualnames of functions that may block, directly or through
        #: any chain of resolvable calls.
        self._may_block: Set[str] = set()

    def prepare(self, project: "Project") -> None:
        """Propagate "may block" through the call graph to a fixpoint."""
        direct: Dict[str, Set[str]] = {}
        for info in project.functions.values():
            for node in walk_scope(info.node):
                if isinstance(node, ast.Call) and self._is_blocking(node):
                    direct[info.qualname] = {"blocks"}
                    break
        self._project = project
        facts = project.propagate(direct)
        self._may_block = {
            qualname for qualname, fact in facts.items() if fact
        }

    @staticmethod
    def _is_blocking(node: ast.Call) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        name = node.func.attr
        receiver = attribute_chain(node.func.value)
        if name == "wait" and DeadlineChecker._is_cond(receiver):
            return True
        if name in LOCK_ACQUIRE:
            return True
        if name == "enter" and any("gate" in part for part in receiver):
            return True
        return False

    def applies_to(self, relpath: str) -> bool:
        """Deadline propagation is a ``concurrent/`` + ``replication/``
        + ``cluster/`` contract — replica reads, catch-up loops and
        cluster RPCs all serve under the same per-operation budgets as
        the primary front-end."""
        return (
            in_package(relpath, "concurrent")
            or in_package(relpath, "replication")
            or in_package(relpath, "cluster")
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag blocking calls that drop the timeout/deadline budget."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            name = node.func.attr
            receiver = attribute_chain(node.func.value)
            has_args = bool(node.args or node.keywords)
            if name == "wait" and not has_args and self._is_cond(receiver):
                yield self.finding(
                    source,
                    node,
                    "unbounded `.wait()` on a condition variable",
                    hint="pass the remaining budget: wait(budget.wait_budget())",
                )
            elif name in LOCK_ACQUIRE and not has_args:
                yield self.finding(
                    source,
                    node,
                    f"`{name}()` without a deadline blocks unboundedly "
                    "under contention",
                    hint="forward the operation's Deadline",
                )
            elif (
                name == "enter"
                and any("gate" in part for part in receiver)
                and len(node.args) < 2
                and not any(kw.arg == "deadline" for kw in node.keywords)
            ):
                yield self.finding(
                    source,
                    node,
                    "admission `enter(...)` without a deadline queues "
                    "unboundedly",
                    hint="pass the operation's Deadline as the second argument",
                )
            elif name == "join" and not has_args:
                yield self.finding(
                    source,
                    node,
                    "`.join()` without a timeout hangs forever on a "
                    "deadlocked worker",
                    hint="join(timeout) and check is_alive() afterwards",
                )
        yield from self._check_budget_forwarding(source)

    def _check_budget_forwarding(self, source: SourceFile) -> Iterator[Finding]:
        """Flag callers that hold a budget but forward none to a blocker."""
        if self._project is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            caller = self._project.function_for(node)
            if caller is None:
                continue
            own_budget = sorted(set(caller.params) & BUDGET_PARAMS)
            if not own_budget:
                continue
            for call, resolved in self._project.callsites(caller):
                if resolved is None:
                    continue
                if resolved.qualname not in self._may_block:
                    continue
                accepted = sorted(set(resolved.params) & BUDGET_PARAMS)
                if not accepted:
                    continue
                if self._passes_budget(call, resolved.params):
                    continue
                yield self.finding(
                    source,
                    call,
                    f"drops the caller's `{own_budget[0]}` budget: "
                    f"`{resolved.name}` may block and accepts "
                    f"`{accepted[0]}=`, but this call forwards no budget "
                    "(the callee then waits unboundedly)",
                )

    @staticmethod
    def _passes_budget(call: ast.Call, params) -> bool:
        if any(kw.arg is None or kw.arg in BUDGET_PARAMS for kw in call.keywords):
            return True
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return True
        for index, param in enumerate(params):
            if param in BUDGET_PARAMS:
                return len(call.args) > index
        return False

    @staticmethod
    def _is_cond(receiver) -> bool:
        return any("cond" in part for part in receiver)
