"""LNT006: blocking calls in ``concurrent/`` must carry a time budget.

The concurrency layer's contract is that no operation blocks past its
``timeout=``/``deadline=`` budget — the wall-clock analogue of the
paper's worst-case page-access bound.  That only holds if every
blocking primitive in the package forwards the budget.  Flagged shapes:

* ``cond.wait()`` with no argument — an unbounded sleep; pass
  ``budget.wait_budget()``,
* ``acquire_read()`` / ``acquire_write()`` / ``read_locked()`` /
  ``write_locked()`` with no deadline argument,
* ``gate.enter(kind)`` without a deadline (second positional or
  ``deadline=``),
* ``thread.join()`` with no timeout — a deadlocked worker would hang
  the caller forever.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, SourceFile, attribute_chain, in_package

LOCK_ACQUIRE = frozenset(
    {"acquire_read", "acquire_write", "read_locked", "write_locked"}
)


class DeadlineChecker(Checker):
    rule_id = "LNT006"
    slug = "deadlines"
    title = "deadline propagation on blocking calls"
    hint = "accept and forward the operation's timeout=/deadline= budget"

    def applies_to(self, relpath: str) -> bool:
        """Deadline propagation is a ``concurrent/`` + ``replication/``
        + ``cluster/`` contract — replica reads, catch-up loops and
        cluster RPCs all serve under the same per-operation budgets as
        the primary front-end."""
        return (
            in_package(relpath, "concurrent")
            or in_package(relpath, "replication")
            or in_package(relpath, "cluster")
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag blocking calls that drop the timeout/deadline budget."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            name = node.func.attr
            receiver = attribute_chain(node.func.value)
            has_args = bool(node.args or node.keywords)
            if name == "wait" and not has_args and self._is_cond(receiver):
                yield self.finding(
                    source,
                    node,
                    "unbounded `.wait()` on a condition variable",
                    hint="pass the remaining budget: wait(budget.wait_budget())",
                )
            elif name in LOCK_ACQUIRE and not has_args:
                yield self.finding(
                    source,
                    node,
                    f"`{name}()` without a deadline blocks unboundedly "
                    "under contention",
                    hint="forward the operation's Deadline",
                )
            elif (
                name == "enter"
                and any("gate" in part for part in receiver)
                and len(node.args) < 2
                and not any(kw.arg == "deadline" for kw in node.keywords)
            ):
                yield self.finding(
                    source,
                    node,
                    "admission `enter(...)` without a deadline queues "
                    "unboundedly",
                    hint="pass the operation's Deadline as the second argument",
                )
            elif name == "join" and not has_args:
                yield self.finding(
                    source,
                    node,
                    "`.join()` without a timeout hangs forever on a "
                    "deadlocked worker",
                    hint="join(timeout) and check is_alive() afterwards",
                )

    @staticmethod
    def _is_cond(receiver) -> bool:
        return any("cond" in part for part in receiver)
