"""LNT004: the ``core.errors`` taxonomy is the only error surface.

Library modules must raise :mod:`repro.core.errors` types — callers are
promised that one ``except ReproError`` catches everything this package
raises, and the CLI's exit-code mapping depends on it.  Three shapes
break that promise and are flagged:

* a bare ``except:`` (catches ``KeyboardInterrupt``/``SystemExit`` too;
  the mechanical ``repro lint --fix`` rewrites it to
  ``except Exception:``, the narrowest safe drop-in),
* an over-broad ``except Exception:`` / ``except BaseException:`` whose
  body swallows (no re-raise) — deliberate wreckage absorption in the
  harness carries a pragma,
* ``raise ValueError(...)`` / ``raise RuntimeError(...)`` — use
  ``ConfigurationError``/``UsageError`` (both ``ValueError``-compatible)
  or ``LockProtocolError`` (``RuntimeError``-compatible) instead,
* a swallowed ``OperationTimeout``: deadline expiry must surface to the
  caller, not vanish into a handler.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import (
    Checker,
    Finding,
    SourceFile,
    attribute_chain,
    exception_names,
    handler_reraises,
)

BANNED_RAISES = {
    "ValueError": "ConfigurationError or UsageError (ValueError-compatible)",
    "RuntimeError": "LockProtocolError or a new ReproError subclass",
}

BROAD_CATCHES = frozenset({"Exception", "BaseException"})


class ErrorTaxonomyChecker(Checker):
    rule_id = "LNT004"
    slug = "errors"
    title = "core.errors taxonomy"
    hint = "raise/catch repro.core.errors types"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag bare excepts, banned builtin raises and swallowed timeouts."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(source, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(source, node)

    def _check_handler(
        self, source: SourceFile, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                source,
                handler,
                "bare `except:` catches KeyboardInterrupt and SystemExit",
                hint=(
                    "catch a specific exception; `repro lint --fix` "
                    "rewrites this to `except Exception:`"
                ),
            )
            return
        caught = exception_names(handler)
        if set(caught) & BROAD_CATCHES and not handler_reraises(handler):
            yield self.finding(
                source,
                handler,
                f"over-broad `except {', '.join(caught)}` swallows "
                "arbitrary failures without re-raising",
                hint=(
                    "narrow to core.errors types, re-raise, or justify "
                    "with `# lint: allow[errors]`"
                ),
            )
        if "OperationTimeout" in caught and not handler_reraises(handler):
            yield self.finding(
                source,
                handler,
                "swallowed OperationTimeout: a spent deadline must "
                "surface to the caller",
                hint=(
                    "re-raise after recording, or justify with "
                    "`# lint: allow[errors]`"
                ),
            )

    def _check_raise(
        self, source: SourceFile, node: ast.Raise
    ) -> Iterator[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        chain = attribute_chain(exc) if exc is not None else []
        name = chain[-1] if chain else ""
        if name in BANNED_RAISES:
            yield self.finding(
                source,
                node,
                f"`raise {name}` from a library module escapes the "
                "core.errors taxonomy",
                hint=f"use {BANNED_RAISES[name]}",
            )
