"""LNT005: hot paths must be seeded and iteration-order stable.

Every experiment in this repository is replayable from a seed: the
workload generators, the fault plans and the torture harness all take
``random.Random(seed)`` instances, and the benchmarks compare logical
counters across runs.  One call into the *global* random module, one
wall-clock read, or one iteration over a hash-ordered set in ``core/``,
``storage/`` or ``workloads/`` makes two runs with the same seed
diverge.  (Wall-clock benchmark code lives outside these packages and
is therefore outside this rule.)

Flagged shapes:

* global-RNG calls (``random.random()``, ``random.choice(...)``, …) and
  an unseeded ``random.Random()``,
* wall-clock reads: ``time.time()``, ``datetime.now()``/``utcnow()``,
  ``date.today()`` (inject a clock instead — ``time.monotonic`` via a
  ``clock=`` parameter is the package convention),
* iterating directly over a set expression (literal, ``set(...)`` call
  or set comprehension) or an unsorted ``os.listdir(...)`` — both orders
  vary across processes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, SourceFile, attribute_chain, in_package

GLOBAL_RNG_CALLS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "getrandbits",
        "seed",
    }
)

WALL_CLOCK = {
    ("time", "time"): "time.time()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("date", "today"): "date.today()",
}


class DeterminismChecker(Checker):
    rule_id = "LNT005"
    slug = "determinism"
    title = "seeded determinism in hot paths"
    hint = (
        "thread a seeded random.Random(seed) / injectable clock through, "
        "or sort before iterating"
    )

    def applies_to(self, relpath: str) -> bool:
        """Determinism covers ``core/``, ``storage/`` and ``workloads/``."""
        return any(
            in_package(relpath, package)
            for package in ("core", "storage", "workloads")
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag unseeded randomness, wall-clock reads and set-order iteration."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                finding = self._unstable_iteration(source, iterable)
                if finding is not None:
                    yield finding

    def _check_call(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        chain = attribute_chain(node.func)
        if len(chain) == 2 and chain[0] == "random":
            if chain[1] in GLOBAL_RNG_CALLS:
                yield self.finding(
                    source,
                    node,
                    f"global-RNG call `random.{chain[1]}(...)` is not "
                    "replayable from a seed",
                    hint="use a seeded random.Random(seed) instance",
                )
            elif chain[1] == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    source,
                    node,
                    "`random.Random()` without a seed draws entropy from "
                    "the OS",
                    hint="pass the run's seed: random.Random(seed)",
                )
        if len(chain) >= 2 and tuple(chain[-2:]) in WALL_CLOCK:
            yield self.finding(
                source,
                node,
                f"wall-clock read `{WALL_CLOCK[tuple(chain[-2:])]}` in a "
                "deterministic hot path",
                hint="inject a clock (the package passes clock= callables)",
            )

    def _unstable_iteration(self, source, iterable):
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield_from = "a set expression"
        elif isinstance(iterable, ast.Call):
            chain = attribute_chain(iterable.func)
            if chain == ["set"] or chain == ["frozenset"]:
                yield_from = f"a `{chain[0]}(...)` call"
            elif chain[-2:] == ["os", "listdir"] or chain == ["listdir"]:
                yield_from = "`os.listdir(...)` (filesystem order)"
            else:
                return None
        else:
            return None
        return self.finding(
            source,
            iterable,
            f"iterating {yield_from} is hash/OS-order dependent",
            hint="wrap in sorted(...) to pin the order",
        )
