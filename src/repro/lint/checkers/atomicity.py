"""LNT007: no unguarded path from a public front-end method to a mutation.

LNT002 checks the *lexical* rule — a ``ThreadSafe*`` public method may
touch ``self._inner`` only inside a guarded block.  It deliberately
skips private helpers (they run under a caller's guard) — which leaves
a hole: a public method that calls a helper *without* taking the lock,
where the helper (possibly in another file) performs the mutation.
Both halves look fine on their own; the composition is a race.

This rule closes the hole interprocedurally.  Using the whole-project
call graph it computes, per function, whether an **unguarded path**
reaches a mutation primitive:

* an engine mutator — ``insert`` / ``delete`` / ``update`` /
  ``insert_many`` / ``delete_range`` / ``compact`` on a receiver chain
  naming the wrapped engine (``_inner``, ``inner``, ``engine``,
  ``_engine``, ``_dense``), or
* a store primitive — ``put_page`` / ``move_records`` on a receiver
  naming a store (``store``, ``_store``, ``raw``, ``backend``,
  ``pool``, ``stack``, ``inner``, ``_inner``).

A path is guarded as soon as it passes a lock acquisition: a ``with
self._guarded(...)`` / ``read_locked`` / ``write_locked`` block or a
``with``-held internal mutex.  Guarding cuts propagation — everything
beneath the acquisition runs under the lock, wherever it is defined.
Entry points are the public methods of ``ThreadSafe*`` classes and of
the ``cluster/`` front-end classes; helpers themselves are never
flagged, only the public surface that lets an unguarded path escape.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..callgraph import FunctionInfo
from ..framework import Checker, Finding, SourceFile, attribute_chain, in_package
from .locks import GUARD_CALLS, classify_acquisition

if TYPE_CHECKING:
    from ..callgraph import Project

ENGINE_MUTATORS = frozenset(
    {"insert", "delete", "update", "insert_many", "delete_range", "compact"}
)
ENGINE_MARKERS = frozenset({"_inner", "inner", "_engine", "engine", "_dense"})
STORE_MUTATORS = frozenset({"put_page", "move_records"})
STORE_MARKERS = frozenset(
    {"store", "_store", "raw", "backend", "pool", "stack", "inner", "_inner"}
)


def mutation_call(node: ast.Call) -> Optional[str]:
    """A dotted description when ``node`` is a mutation primitive."""
    if not isinstance(node.func, ast.Attribute):
        return None
    name = node.func.attr
    receiver = attribute_chain(node.func.value)
    if not receiver:
        return None
    dotted = ".".join(receiver + [name])
    if name in ENGINE_MUTATORS and any(p in ENGINE_MARKERS for p in receiver):
        return dotted
    if name in STORE_MUTATORS and any(p in STORE_MARKERS for p in receiver):
        return dotted
    return None


def is_lock_guard(expr: ast.expr) -> bool:
    """Whether a ``with`` item establishes mutual exclusion for its body."""
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in GUARD_CALLS:
            return True
        if isinstance(expr.func, ast.Name) and expr.func.id in GUARD_CALLS:
            return True
    classified = classify_acquisition(expr)
    if classified is None:
        return False
    level = classified[0]
    # The admission gate bounds *load*, not access: it is not a guard.
    return level == "rwlock" or level.startswith("mutex:")


class AtomicityChecker(Checker):
    rule_id = "LNT007"
    slug = "atomicity"
    title = "lock-atomic mutation paths"
    hint = (
        "take the lock before the helper call (`with self._guarded(...)`, "
        "a write_locked block, or the owning mutex) so the whole mutation "
        "path runs under it"
    )

    #: Same exemptions as LNT002: lifecycle methods run before/after
    #: the lock exists.
    EXEMPT_METHODS = frozenset({"__init__", "__enter__", "__exit__", "__repr__"})

    def __init__(self) -> None:
        self._project: Optional["Project"] = None
        #: qualname -> (witness description, line, via-callee qualname).
        #: ``via is None`` marks a direct mutation; otherwise the
        #: witness continues at ``via``.
        self._reach: Dict[str, Tuple[str, int, Optional[str]]] = {}

    def applies_to(self, relpath: str) -> bool:
        """The front-end surfaces: ``concurrent/`` and ``cluster/``."""
        return in_package(relpath, "concurrent") or in_package(
            relpath, "cluster"
        )

    def prepare(self, project: "Project") -> None:
        """Fixpoint: which functions reach a mutation unguarded."""
        self._project = project
        direct: Dict[str, Tuple[str, int]] = {}
        unguarded_calls: Dict[str, List[Tuple[str, int]]] = {}
        for info in project.functions.values():
            mutations, calls = self._scan(project, info)
            if mutations:
                direct[info.qualname] = mutations[0]
            if calls:
                unguarded_calls[info.qualname] = calls
        self._reach = {
            qualname: (description, line, None)
            for qualname, (description, line) in direct.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, calls in unguarded_calls.items():
                if qualname in self._reach:
                    continue
                for callee, line in calls:
                    if callee in self._reach:
                        name = project.functions[callee].name
                        self._reach[qualname] = (f"`{name}(...)`", line, callee)
                        changed = True
                        break

    def _scan(
        self, project: "Project", info: FunctionInfo
    ) -> Tuple[List[Tuple[str, int]], List[Tuple[str, int]]]:
        """Unguarded direct mutations and unguarded resolved call sites."""
        mutations: List[Tuple[str, int]] = []
        calls: List[Tuple[str, int]] = []

        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, ast.With):
                body_guarded = guarded or any(
                    is_lock_guard(item.context_expr) for item in node.items
                )
                for item in node.items:
                    visit(item.context_expr, guarded)
                for child in node.body:
                    visit(child, body_guarded)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # nested defs get their own FunctionInfo (or none)
            if isinstance(node, ast.Call) and not guarded:
                description = mutation_call(node)
                if description is not None:
                    mutations.append((f"`{description}`", node.lineno))
                else:
                    resolved = project.resolve_call(info, node)
                    if resolved is not None:
                        calls.append((resolved.qualname, node.lineno))
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        for statement in info.node.body:
            visit(statement, False)
        return mutations, calls

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag entry points whose unguarded paths reach a mutation."""
        if self._project is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (
                node.name.startswith("ThreadSafe")
                or in_package(source.relpath, "cluster")
            ):
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name.startswith("_"):
                    continue  # helpers run under a caller's guard
                if method.name in self.EXEMPT_METHODS:
                    continue
                info = self._project.function_for(method)
                if info is None or info.qualname not in self._reach:
                    continue
                yield self.finding(
                    source,
                    method,
                    f"{node.name}.{method.name} reaches mutation "
                    f"{self._render_path(info.qualname)} with no lock "
                    "acquisition anywhere on the path (the mutation is "
                    "not atomic with the caller's checks)",
                )

    def _render_path(self, qualname: str) -> str:
        """``` `helper(...)` -> `self._inner.insert` ``` witness chain."""
        parts: List[str] = []
        current: Optional[str] = qualname
        while current is not None:
            description, _, via = self._reach[current]
            parts.append(description)
            current = via
        return " -> ".join(parts)
