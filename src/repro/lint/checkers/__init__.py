"""The rule registry: one :class:`~repro.lint.framework.Checker` per rule.

============  ==============  ====================================================
rule id       pragma slug     what it protects
============  ==============  ====================================================
``LNT001``    accounting      the paper's logical page-access accounting
``LNT002``    lock-discipline single-writer rule of the concurrent front-end
``LNT003``    lock-order      deadlock freedom (acquisition graph, no cycles)
``LNT004``    errors          the ``core.errors`` taxonomy (no bare/builtin raises)
``LNT005``    determinism     seeded, reproducible hot paths
``LNT006``    deadlines       every blocking call carries a time budget
``LNT007``    atomicity       lock held on every path to a mutation primitive
``LNT008``    leaks           handles released on every exception edge
============  ==============  ====================================================

``fresh_checkers()`` builds new instances per run — checkers carry
cross-file state (the lock-order graph, the call-graph fact tables), so
instances are single-use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ...core.errors import ConfigurationError
from ..framework import Checker
from .accounting import AccountingChecker
from .atomicity import AtomicityChecker
from .deadlines import DeadlineChecker
from .determinism import DeterminismChecker
from .errors import ErrorTaxonomyChecker
from .leaks import ResourceLeakChecker
from .locks import LockDisciplineChecker, LockOrderChecker

#: Registration order is report order for ties on the same line.
CHECKER_TYPES: Sequence[Type[Checker]] = (
    AccountingChecker,
    LockDisciplineChecker,
    LockOrderChecker,
    ErrorTaxonomyChecker,
    DeterminismChecker,
    DeadlineChecker,
    AtomicityChecker,
    ResourceLeakChecker,
)


def rule_table() -> List[Dict[str, str]]:
    """``[{"id": ..., "slug": ..., "title": ..., "hint": ...}, ...]``."""
    return [
        {
            "id": checker.rule_id,
            "slug": checker.slug,
            "title": checker.title,
            "hint": checker.hint,
        }
        for checker in CHECKER_TYPES
    ]


def fresh_checkers(rules: Optional[Sequence[str]] = None) -> List[Checker]:
    """New checker instances, optionally restricted to ``rules``.

    ``rules`` entries may be rule ids (``LNT004``) or slugs
    (``errors``), case-insensitive.
    """
    if rules is None:
        return [checker_type() for checker_type in CHECKER_TYPES]
    wanted = {rule.strip().lower() for rule in rules if rule.strip()}
    known = {
        name.lower(): checker_type
        for checker_type in CHECKER_TYPES
        for name in (checker_type.rule_id, checker_type.slug)
    }
    unknown = wanted - set(known)
    if unknown:
        raise ConfigurationError(
            f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(c.rule_id for c in CHECKER_TYPES)}"
        )
    selected = []
    for checker_type in CHECKER_TYPES:
        names = {checker_type.rule_id.lower(), checker_type.slug.lower()}
        if names & wanted:
            selected.append(checker_type())
    return selected
