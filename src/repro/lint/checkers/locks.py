"""LNT002 lock discipline and LNT003 lock order for ``concurrent/``.

**LNT002** — every public method of a ``ThreadSafe*`` front-end class
must reach the wrapped engine (``self._inner`` / ``self.inner``) only
from inside a guarded region: a ``with self._guarded(...)`` block or an
explicit ``read_locked``/``write_locked`` context.  Touching engine
state on a lock-free fast path — including store I/O such as
``self._inner.flush()`` — breaks the single-writer rule the
linearizability harness assumes.  The deliberate escape hatch (the
``inner`` property) carries a pragma.

**LNT003** — acquisitions across the package must follow one global
order; the checker classifies every acquisition site into a level,
records the nesting edges it can see statically, and fails on

* an edge that runs *backwards* through the canonical order
  ``admission-gate -> rwlock -> internal mutexes``,
* a nested acquisition of a non-reentrant level (the rwlock and the
  condition mutexes deadlock against themselves), and
* any cycle in the accumulated acquisition graph (covers mutex/mutex
  inversions the canonical order does not rank).

Held-state is tracked lexically: a ``with`` over an acquisition holds
for its body, and a bare acquisition call (``self._gate.enter(...)``
assigned for a later ``__exit__``) is treated as held for the rest of
the enclosing function — the pattern ``_guarded`` uses.

LNT003 is *interprocedural*: via the whole-project call graph
(:mod:`repro.lint.callgraph`) every call made while a lock is held is
treated as an acquisition of everything its resolved target
transitively acquires, so an inversion split across two functions — or
two files — still lands in the same acquisition graph the cycle check
runs over.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ..framework import (
    Checker,
    Finding,
    SourceFile,
    attribute_chain,
    in_package,
)

from ..callgraph import walk_calls, walk_scope

if TYPE_CHECKING:
    from ..callgraph import Project

#: Canonical acquisition order, outermost first.  ``mutex:*`` levels
#: (the leaf ``threading.Condition``/``Lock`` objects inside the gate,
#: the rwlock and the stores) all rank last.
CANONICAL_ORDER = ("admission-gate", "rwlock")
MUTEX_RANK = len(CANONICAL_ORDER)

#: Levels that deadlock when one thread acquires them twice.
NON_REENTRANT = frozenset({"rwlock"})

RWLOCK_CALLS = frozenset(
    {"read_locked", "write_locked", "acquire_read", "acquire_write"}
)
GUARD_CALLS = frozenset({"_guarded", "read_locked", "write_locked"})
MUTEX_ATTRS = frozenset({"_cond", "_mutex", "_lock_internal"})


def _rank(level: str) -> int:
    if level.startswith("mutex:"):
        return MUTEX_RANK
    return CANONICAL_ORDER.index(level)


def classify_acquisition(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(level, description)`` when ``node`` acquires a lock, else ``None``.

    Recognized forms::

        self._gate.enter(kind, budget)      -> admission-gate
        self._lock.write_locked(budget)     -> rwlock (also acquire_*)
        with self._cond: ...                -> mutex:self._cond
        with self._cond.something: never    (only bare mutex attributes)
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = attribute_chain(node.func.value)
        name = node.func.attr
        if name == "enter" and any("gate" in part for part in receiver):
            return "admission-gate", ".".join(receiver + [name])
        if name in RWLOCK_CALLS:
            return "rwlock", ".".join(receiver + [name])
        return None
    chain = attribute_chain(node)
    if chain and chain[-1] in MUTEX_ATTRS:
        dotted = ".".join(chain)
        return f"mutex:{dotted}", dotted
    return None


class LockDisciplineChecker(Checker):
    rule_id = "LNT002"
    slug = "lock-discipline"
    title = "rwlock before engine state"
    hint = (
        "wrap the engine access in `with self._guarded(kind, timeout, "
        "deadline):` (or a read_locked/write_locked block); the raw "
        "`inner` escape hatch needs `# lint: allow[lock-discipline]`"
    )

    #: Methods that may run before/after the lock exists at all.
    EXEMPT_METHODS = frozenset({"__init__", "__enter__", "__exit__", "__repr__"})

    def applies_to(self, relpath: str) -> bool:
        """Lock discipline is a ``concurrent/`` front-end contract."""
        return in_package(relpath, "concurrent")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Flag engine-state access outside a guarded lock block."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name.startswith(
                "ThreadSafe"
            ):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, klass: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in klass.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in self.EXEMPT_METHODS:
                continue
            if method.name.startswith("_") and not method.name.startswith(
                "__"
            ):
                # Private helpers run under a caller's guard; the public
                # surface is where the discipline is enforced.
                continue
            yield from self._check_method(source, klass, method)

    def _check_method(
        self, source: SourceFile, klass: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, ast.With):
                body_guarded = guarded or any(
                    self._is_guard(item.context_expr) for item in node.items
                )
                for item in node.items:
                    visit(item.context_expr, guarded)
                for child in node.body:
                    visit(child, body_guarded)
                return
            if not guarded and self._is_engine_state(node):
                dotted = ".".join(attribute_chain(node))
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"{klass.name}.{method.name} touches engine state "
                        f"`{dotted}` outside the lock (lock-free fast "
                        "paths may not reach the wrapped file or its "
                        "store)",
                    )
                )
                return  # one finding per access chain, not per sub-node
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        for statement in method.body:
            visit(statement, False)
        return iter(findings)

    @staticmethod
    def _is_guard(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        if isinstance(expr.func, ast.Attribute):
            return expr.func.attr in GUARD_CALLS
        if isinstance(expr.func, ast.Name):
            return expr.func.id in GUARD_CALLS
        return False

    @staticmethod
    def _is_engine_state(node: ast.AST) -> bool:
        if not isinstance(node, ast.Attribute):
            return False
        chain = attribute_chain(node)
        return len(chain) >= 2 and chain[0] == "self" and chain[1] in (
            "_inner",
            "inner",
        )


class LockOrderChecker(Checker):
    rule_id = "LNT003"
    slug = "lock-order"
    title = "global lock acquisition order"
    hint = (
        "acquire in the canonical order admission-gate -> rwlock -> "
        "internal mutexes, and never nest a non-reentrant lock"
    )

    def __init__(self) -> None:
        #: level -> {level}: observed "held X while acquiring Y" edges.
        self._edges: Dict[str, Set[str]] = {}
        #: (held, acquired) -> first site, for cycle reporting.
        self._sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
        #: Edges already reported in-file (inversions, nested
        #: non-reentrant); cycle detection removes them first, so a
        #: cycle finding always names a *new* problem.
        self._reported: Set[Tuple[str, str]] = set()
        #: The whole-project call graph, once :meth:`prepare` has run.
        self._project: Optional["Project"] = None
        #: qualname -> every level the function may acquire, directly
        #: or through any chain of resolvable calls.
        self._transitive: Dict[str, Set[str]] = {}

    def prepare(self, project: "Project") -> None:
        """Precompute which levels every project function may acquire.

        A call site is then an acquisition of everything its resolved
        target transitively acquires — the edges a per-file pass cannot
        see (holding lock A in one function while a helper in another
        file takes lock B).
        """
        direct: Dict[str, Set[str]] = {}
        for info in project.functions.values():
            levels: Set[str] = set()
            for node in walk_scope(info.node):
                if isinstance(node, ast.With):
                    for item in node.items:
                        classified = classify_acquisition(item.context_expr)
                        if classified is not None:
                            levels.add(classified[0])
                elif isinstance(node, ast.Call):
                    classified = classify_acquisition(node)
                    if classified is not None:
                        levels.add(classified[0])
            if levels:
                direct[info.qualname] = levels
        self._project = project
        self._transitive = project.propagate(direct)

    def applies_to(self, relpath: str) -> bool:
        """Lock ordering is checked across every ``concurrent/`` and
        ``cluster/`` module — breaker and server mutexes join the same
        global order as the front-end locks."""
        return in_package(relpath, "concurrent") or in_package(
            relpath, "cluster"
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Record acquisitions and flag nesting/ordering violations in-file."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.FunctionDef):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        caller = (
            self._project.function_for(function)
            if self._project is not None
            else None
        )

        def record(held: str, acquired: str, node: ast.AST) -> None:
            self._edges.setdefault(held, set()).add(acquired)
            self._sites.setdefault(
                (held, acquired), (source.path, getattr(node, "lineno", 1))
            )
            if acquired == held and acquired in NON_REENTRANT:
                self._reported.add((held, acquired))
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"nested acquisition of non-reentrant `{acquired}` "
                        "(a thread waiting on itself deadlocks)",
                    )
                )
            elif _rank(acquired) < _rank(held):
                self._reported.add((held, acquired))
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"lock-order inversion: acquiring `{acquired}` "
                        f"while holding `{held}` (canonical order: "
                        "admission-gate -> rwlock -> internal mutexes)",
                    )
                )

        def acquire(expr: ast.expr, held: List[str]) -> Optional[str]:
            classified = classify_acquisition(expr)
            if classified is None:
                return None
            level, _ = classified
            for held_level in held:
                record(held_level, level, expr)
            return level

        def record_via_call(held: List[str], call: ast.Call) -> None:
            # A call made while holding a lock acquires everything its
            # resolved target transitively acquires: the cross-function
            # edges only the call graph can see.
            if caller is None or self._project is None:
                return
            if classify_acquisition(call) is not None:
                return  # direct acquisitions are recorded precisely
            resolved = self._project.resolve_call(caller, call)
            if resolved is None:
                return
            for level in sorted(self._transitive.get(resolved.qualname, ())):
                for held_level in held:
                    if held_level == level and level not in NON_REENTRANT:
                        continue  # legal reentry; finalize drops self-loops
                    self._edges.setdefault(held_level, set()).add(level)
                    self._sites.setdefault(
                        (held_level, level),
                        (source.path, getattr(call, "lineno", 1)),
                    )
                    if held_level == level:
                        self._reported.add((held_level, level))
                        findings.append(
                            self.finding(
                                source,
                                call,
                                f"`{resolved.name}` acquires non-reentrant "
                                f"`{level}`, which the caller already holds "
                                "(a thread waiting on itself deadlocks)",
                            )
                        )
                    elif _rank(level) < _rank(held_level):
                        self._reported.add((held_level, level))
                        findings.append(
                            self.finding(
                                source,
                                call,
                                f"lock-order inversion via call: "
                                f"`{resolved.name}` acquires `{level}` while "
                                f"`{held_level}` is held (canonical order: "
                                "admission-gate -> rwlock -> internal "
                                "mutexes)",
                            )
                        )

        def visit_block(statements: List[ast.stmt], held: List[str]) -> None:
            local: List[str] = []
            for statement in statements:
                visit(statement, held + local)
                if held or local:
                    for call in walk_calls(statement):
                        record_via_call(held + local, call)
                # A bare acquisition call (not in a `with`) holds for the
                # rest of the enclosing block — the assign-then-__exit__
                # pattern.
                value = getattr(statement, "value", None)
                if isinstance(statement, (ast.Assign, ast.Expr)) and isinstance(
                    value, ast.Call
                ):
                    level = acquire(value, held + local)
                    if level is not None:
                        local.append(level)

        def visit(node: ast.AST, held: List[str]) -> None:
            if isinstance(node, ast.With):
                entered: List[str] = []
                for item in node.items:
                    level = acquire(item.context_expr, held + entered)
                    if level is not None:
                        entered.append(level)
                visit_block(list(node.body), held + entered)
                return
            if isinstance(node, ast.FunctionDef):
                return  # nested defs get their own pass
            for name in ("body", "orelse", "finalbody"):
                block = getattr(node, name, None)
                if isinstance(block, list) and block and isinstance(
                    block[0], ast.stmt
                ):
                    visit_block(block, held)
            for handler in getattr(node, "handlers", []) or []:
                visit_block(list(handler.body), held)

        visit_block(list(function.body), [])
        return iter(findings)

    def finalize(self) -> Iterator[Finding]:
        """Flag cross-file cycles in the accumulated acquisition graph."""
        # Cycle detection over the accumulated graph: any cycle means no
        # global acquisition order exists, even when every individual
        # edge looked locally plausible.  Edges already reported in-file
        # are removed first — the cycle they would close restates the
        # same root cause at an innocent site.
        # Self-loops are also dropped: re-entering a *reentrant* level
        # (two admissions at the gate) is legal, and the non-reentrant
        # self-nesting case is already a check()-time finding.
        edges: Dict[str, Set[str]] = {
            level: {
                successor
                for successor in successors
                if successor != level
                and (level, successor) not in self._reported
            }
            for level, successors in self._edges.items()
        }
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {level: WHITE for level in edges}

        def dfs(level: str, path: List[str]) -> Optional[List[str]]:
            color[level] = GRAY
            for successor in sorted(edges.get(level, ())):
                if color.get(successor, WHITE) == GRAY:
                    return path + [level, successor]
                if color.get(successor, WHITE) == WHITE:
                    found = dfs(successor, path + [level])
                    if found is not None:
                        return found
            color[level] = BLACK
            return None

        for level in sorted(edges):
            if color.get(level, 0) == WHITE:
                cycle = dfs(level, [])
                if cycle is not None:
                    start = cycle.index(cycle[-1])
                    loop = cycle[start:]
                    edge = (loop[0], loop[1])
                    path, line = self._sites.get(edge, ("<unknown>", 1))
                    yield Finding(
                        path=path,
                        line=line,
                        rule=self.rule_id,
                        message=(
                            "acquisition graph has a cycle: "
                            + " -> ".join(loop)
                            + " (no global lock order exists)"
                        ),
                        hint=self.hint,
                    )
                    return
