"""``repro.lint``: AST-based invariant linting for the whole stack.

Four layers of this package enforce load-bearing disciplines — logical
page-access accounting, the single-writer lock rules, the
``core.errors`` taxonomy, seeded determinism and deadline propagation —
that runtime tests can only spot-check.  This package checks them
*statically* on every file, every CI run:

>>> from repro.lint import run_lint
>>> report = run_lint(["src/repro", "tools"])
>>> report.clean
True

Entry points: ``repro lint`` (the CLI subcommand), ``tools/lint.py``
(the same thing as a standalone script) and :func:`run_lint` (the
library call the tests use).  Rules, pragma syntax and the rationale
live in ``DESIGN.md`` §10.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .checkers import CHECKER_TYPES, fresh_checkers, rule_table
from .fixes import apply_fixes, fix_bare_excepts
from .framework import (
    Checker,
    Finding,
    LintReport,
    SourceFile,
    iter_python_files,
    run_checkers,
)

#: Roots ``repro lint`` scans when given no paths, relative to the
#: repository root (the corpus under tests/ is deliberately excluded —
#: it exists to fail).
DEFAULT_ROOTS = ("src/repro", "tools")


def run_lint(
    roots: Sequence[str],
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every Python file under ``roots`` with the selected rules."""
    return run_checkers(roots, fresh_checkers(rules))


def run_fix(roots: Sequence[str]) -> List[Tuple[str, int]]:
    """Apply the mechanically safe rewrites in place; see :mod:`.fixes`."""
    targets: List[Tuple[str, str]] = []
    for root in roots:
        targets.extend(iter_python_files(root))
    return apply_fixes(targets)


__all__ = [
    "CHECKER_TYPES",
    "Checker",
    "DEFAULT_ROOTS",
    "Finding",
    "LintReport",
    "SourceFile",
    "apply_fixes",
    "fix_bare_excepts",
    "fresh_checkers",
    "iter_python_files",
    "rule_table",
    "run_fix",
    "run_lint",
    "run_checkers",
]
