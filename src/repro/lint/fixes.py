"""``repro lint --fix``: mechanical rewrites for the safe rules.

Only one rewrite is mechanically safe enough to automate: the LNT004
bare-``except:`` clause becomes ``except Exception:``, which catches
strictly less (``KeyboardInterrupt``/``SystemExit`` escape again) and
never changes the handler body.  Everything else a checker flags needs
a human decision — a better exception type, a lock, a seed — so
``--fix`` leaves those findings in place and reports them.

The rewrite is AST-anchored (the handler's own line/column, not a
regex over the file), applied bottom-up so earlier edits cannot shift
later offsets, and idempotent: a fixed file contains no bare handlers,
so a second ``--fix`` pass rewrites nothing.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from .framework import SourceFile

#: ``except:`` with optional internal whitespace, as it appears at the
#: handler's anchored column.
_BARE = "except"


def bare_except_edits(source: SourceFile) -> List[Tuple[int, int]]:
    """``(line, col)`` anchors of every bare ``except:`` handler."""
    edits = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            edits.append((node.lineno, node.col_offset))
    return edits


def fix_bare_excepts(source: SourceFile) -> Tuple[str, int]:
    """Rewrite bare ``except:`` to ``except Exception:``.

    Returns ``(new_text, rewrites)``; the text is unchanged when there
    is nothing to rewrite.
    """
    edits = bare_except_edits(source)
    if not edits:
        return source.text, 0
    lines = source.text.splitlines(keepends=True)
    rewrites = 0
    for lineno, col in sorted(edits, reverse=True):
        line = lines[lineno - 1]
        head = line[:col]
        tail = line[col:]
        if not tail.startswith(_BARE):
            continue  # defensive: the anchor must sit on the keyword
        rest = tail[len(_BARE):]
        stripped = rest.lstrip()
        if not stripped.startswith(":"):
            continue  # `except X:` — not bare; nothing to do
        lines[lineno - 1] = head + "except Exception" + stripped
        rewrites += 1
    return "".join(lines), rewrites


def apply_fixes(paths: List[Tuple[str, str]]) -> List[Tuple[str, int]]:
    """Fix every file in ``paths`` (``(path, relpath)`` pairs) in place.

    Returns ``(path, rewrites)`` for each file that changed.
    """
    changed = []
    for path, relpath in paths:
        source = SourceFile.load(path, relpath)
        new_text, rewrites = fix_bare_excepts(source)
        if rewrites:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(new_text)
            changed.append((path, rewrites))
    return changed
