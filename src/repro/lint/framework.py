"""The checker framework under ``repro lint``.

The linter parses every target module once into an :mod:`ast` tree and
hands the tree to a set of :class:`Checker` subclasses, each owning one
rule (``LNT001`` .. ``LNT008``).  A checker reports
:class:`Finding` objects — file, line, rule id, message and a fix hint —
which the runner filters through the pragma allowlist and renders as
human-readable text or JSON for CI annotation.

Pragmas
-------
A finding is suppressed when the offending line carries an allowlist
pragma naming the rule (by slug or id)::

    page = self.store.get_page(n)  # lint: allow[accounting]

A whole file opts out of one rule with a file-level pragma on a line of
its own (conventionally in the module header)::

    # lint: allow-file[determinism]

Pragmas are deliberately loud: ``repro lint`` counts them in its
summary, so a growing allowlist is visible in review instead of silent.

Paths and module classes
------------------------
Checkers decide applicability from the file's path relative to the
scanned root (``core/engine.py``, ``concurrent/rwlock.py`` …), so the
same checkers run unchanged against the live tree and against the
known-bad corpus under ``tests/lint_corpus/`` (whose subdirectories
mimic the package layout).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # circular at runtime: callgraph builds on SourceFile
    from .callgraph import Project

#: ``# lint: allow[rule]`` / ``# lint: allow[rule1, rule2]`` on the
#: offending line; ``allow-file`` scopes the allowlist to the module.
_PRAGMA = re.compile(r"#\s*lint:\s*(allow(?:-file)?)\[([^\]]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """One-line human-readable form: ``path:line: RULE message (fix: …)``."""
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (keys: path, line, rule, message, hint)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class SourceFile:
    """One parsed module plus its pragma allowlist."""

    path: str  #: path as reported in findings (OS-native, as given)
    relpath: str  #: posix path relative to the scanned root
    text: str
    tree: ast.Module
    #: line number -> set of rule slugs/ids allowed on that line
    line_pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule slugs/ids allowed for the whole file
    file_pragmas: Set[str] = field(default_factory=set)
    suppressed: int = 0

    @classmethod
    def load(cls, path: str, relpath: str) -> "SourceFile":
        """Read and parse ``path``, collecting its pragma allowlist."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            raise ConfigurationError(
                f"{path}: cannot lint a file that does not parse "
                f"(line {error.lineno}: {error.msg})"
            ) from error
        source = cls(path=path, relpath=relpath, text=text, tree=tree)
        for number, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            rules = {part.strip() for part in match.group(2).split(",")}
            if match.group(1) == "allow-file":
                source.file_pragmas |= rules
            else:
                source.line_pragmas.setdefault(number, set()).update(rules)
        return source

    def allows(self, rule_id: str, slug: str, line: int) -> bool:
        """Whether a pragma suppresses ``rule`` at ``line``.

        A pragma applies on the offending line itself or on a comment
        line of its own immediately above it (for statements too long to
        carry a trailing comment).
        """
        names = {rule_id, slug}
        if self.file_pragmas & names:
            return True
        if self.line_pragmas.get(line, set()) & names:
            return True
        above = self.line_pragmas.get(line - 1, set())
        if above & names:
            stripped = self._line_text(line - 1).strip()
            return stripped.startswith("#")
        return False

    def _line_text(self, line: int) -> str:
        lines = self.text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


class Checker:
    """Base class: one rule, applied file by file with a final pass.

    Subclasses set :attr:`rule_id` (``LNTnnn``), :attr:`slug` (the
    pragma name), :attr:`hint` (the generic fix advice) and implement
    :meth:`check`.  A checker that accumulates cross-file state (the
    lock-order graph) also overrides :meth:`finalize`.
    """

    rule_id = "LNT000"
    slug = "abstract"
    title = "abstract checker"
    hint = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule covers the module at ``relpath``."""
        return True

    def prepare(self, project: "Project") -> None:
        """Receive the whole-project call graph before any :meth:`check`.

        The runner loads every source first, builds one
        :class:`~repro.lint.callgraph.Project`, and hands it to each
        checker — interprocedural rules (LNT003's transitive
        acquisitions, LNT006's budget forwarding, LNT007's unguarded
        mutation paths) precompute their facts here.  Default: ignore.
        """

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        """Yield findings that need the whole scanned set (default none)."""
        return iter(())

    def finding(
        self, source: SourceFile, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        """Build a :class:`Finding` at ``node`` with this checker's rule id."""
        return Finding(
            path=source.path,
            line=getattr(node, "lineno", 1),
            rule=self.rule_id,
            message=message,
            hint=hint or self.hint,
        )


def path_segments(relpath: str) -> Tuple[str, ...]:
    """The posix path split into segments (``core/engine.py`` -> 2)."""
    return tuple(relpath.split("/"))


def in_package(relpath: str, package: str) -> bool:
    """Whether ``relpath`` sits under the ``package/`` directory."""
    return path_segments(relpath)[0] == package


# ---------------------------------------------------------------------------
# shared AST helpers used by several checkers
# ---------------------------------------------------------------------------


def attribute_chain(node: ast.AST) -> List[str]:
    """``self.pages.store.get_page`` -> ``["self", "pages", "store", "get_page"]``.

    Returns an empty list for receivers that are not plain name/attribute
    chains (calls, subscripts, …) beyond the point of interruption: the
    chain covers the trailing names only.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def call_name(node: ast.Call) -> str:
    """The called attribute or function name (``""`` when dynamic)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether an ``except`` body re-raises (bare or explicit)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def exception_names(handler: ast.ExceptHandler) -> List[str]:
    """The caught exception names (``except (A, B):`` -> ``["A", "B"]``)."""
    node = handler.type
    if node is None:
        return []
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in items:
        chain = attribute_chain(item)
        if chain:
            names.append(chain[-1])
    return names


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def iter_python_files(root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(path, relpath)`` for every ``.py`` under ``root``, sorted.

    ``root`` may also name a single file, whose relpath is then its
    basename.
    """
    if os.path.isfile(root):
        yield root, os.path.basename(root)
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root).replace(os.sep, "/")
            yield path, relpath


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    rules: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """Whether the run produced no (unsuppressed) findings."""
        return not self.findings

    def to_json(self) -> str:
        """The run as a stable JSON document for CI annotation."""
        return json.dumps(
            {
                "tool": "repro-lint",
                "version": 1,
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "rules": list(self.rules),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def render(self) -> str:
        """Human-readable findings plus a one-line summary."""
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s); {self.suppressed} suppressed by pragmas"
        )
        return "\n".join(lines)


def run_checkers(
    roots: Sequence[str],
    checkers: Iterable[Checker],
) -> LintReport:
    """Run ``checkers`` over every Python file under ``roots``.

    Two phases: every file is loaded first and indexed into one
    whole-project call graph (handed to each checker via
    :meth:`Checker.prepare`), then the per-file checks and the
    cross-file :meth:`Checker.finalize` pass run as before.  The first
    phase is what makes the interprocedural rules possible — a checker
    looking at ``concurrent/file.py`` can follow a call into a helper
    defined in ``concurrent/admission.py``.
    """
    from .callgraph import Project

    checkers = list(checkers)
    findings: List[Finding] = []
    suppressed = 0
    sources: Dict[str, SourceFile] = {}
    ordered: List[SourceFile] = []
    for root in roots:
        if not os.path.exists(root):
            raise ConfigurationError(f"lint target {root!r} does not exist")
        for path, relpath in iter_python_files(root):
            source = SourceFile.load(path, relpath)
            sources[path] = source
            ordered.append(source)
    project = Project(ordered)
    for checker in checkers:
        checker.prepare(project)
    for source in ordered:
        for checker in checkers:
            if not checker.applies_to(source.relpath):
                continue
            for finding in checker.check(source):
                if source.allows(checker.rule_id, checker.slug, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    for checker in checkers:
        for finding in checker.finalize():
            source = sources.get(finding.path)
            if source is not None and source.allows(
                checker.rule_id, checker.slug, finding.line
            ):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return LintReport(
        findings=findings,
        files_checked=len(ordered),
        suppressed=suppressed,
        rules=tuple(checker.rule_id for checker in checkers),
    )
