"""ASCII occupancy visualizations for dense files.

Two views used by the CLI and the examples:

* :func:`occupancy_bar` — one line per bucket of pages, a glyph encoding
  fill level, so a whole file fits in a terminal row.
* :func:`occupancy_history` — a strip per snapshot, visualizing how a
  surge of insertions diffuses outward under CONTROL 2's sweeps (the
  dynamic Figure 4 illustrates).
"""

from __future__ import annotations

from typing import List, Sequence

#: Fill glyphs from empty to over-full.
GLYPHS = " .:-=+*#%@"
OVERFULL = "!"


def _glyph(count: int, capacity: int) -> str:
    if capacity <= 0:
        return OVERFULL
    if count > capacity:
        return OVERFULL
    index = min(len(GLYPHS) - 1, (count * (len(GLYPHS) - 1)) // capacity)
    if count > 0 and index == 0:
        index = 1
    return GLYPHS[index]


def occupancy_bar(
    occupancies: Sequence[int], capacity: int, width: int = 64
) -> str:
    """Render page occupancies as one fixed-width strip.

    Pages are grouped into ``width`` equal buckets; each bucket shows the
    glyph for its mean fill.  ``!`` marks a bucket whose *maximum* page
    exceeds ``capacity`` (an invariant violation worth seeing).
    """
    total = len(occupancies)
    if total == 0:
        return ""
    width = min(width, total)
    cells = []
    for bucket in range(width):
        lo = bucket * total // width
        hi = max(lo + 1, (bucket + 1) * total // width)
        chunk = occupancies[lo:hi]
        if max(chunk) > capacity:
            cells.append(OVERFULL)
        else:
            mean = sum(chunk) / len(chunk)
            cells.append(_glyph(round(mean), capacity))
    return "".join(cells)


def occupancy_legend(capacity: int) -> str:
    """One-line legend mapping glyphs to fill fractions."""
    steps = len(GLYPHS) - 1
    marks = ", ".join(
        f"'{GLYPHS[index]}'~{index * capacity // steps}"
        for index in range(0, len(GLYPHS), 3)
    )
    return f"fill per page (capacity {capacity}): {marks}, '!'=over capacity"


def occupancy_history(
    snapshots: Sequence[Sequence[int]],
    capacity: int,
    labels: Sequence[str] = (),
    width: int = 64,
) -> str:
    """Render a sequence of occupancy snapshots, one strip per row."""
    lines: List[str] = []
    for index, snapshot in enumerate(snapshots):
        label = labels[index] if index < len(labels) else f"t{index}"
        lines.append(f"{label:>8} |{occupancy_bar(snapshot, capacity, width)}|")
    return "\n".join(lines)


def fill_summary(occupancies: Sequence[int], capacity: int) -> str:
    """One line of fill statistics for the CLI's info command."""
    total = sum(occupancies)
    nonempty = sum(1 for count in occupancies if count)
    peak = max(occupancies) if occupancies else 0
    return (
        f"{total} records over {len(occupancies)} pages "
        f"({nonempty} non-empty); peak page {peak}/{capacity}; "
        f"mean fill {total / max(1, len(occupancies)):.2f}"
    )
