"""Summary statistics over per-operation cost series.

The experiments compare *worst-case* and *amortized* behaviour, so the
summaries report extremes and means side by side, plus percentiles for
the spike-profile plots (CONTROL 1's rebalances show up as a heavy tail
that CONTROL 2 lacks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of one cost series."""

    count: int
    total: float
    mean: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def as_row(self, precision: int = 2) -> List[str]:
        """Format for :func:`repro.analysis.report.render_table`."""
        return [
            str(self.count),
            f"{self.mean:.{precision}f}",
            f"{self.p50:.{precision}f}",
            f"{self.p90:.{precision}f}",
            f"{self.p99:.{precision}f}",
            f"{self.maximum:.{precision}f}",
        ]


SUMMARY_HEADERS = ["n", "mean", "p50", "p90", "p99", "max"]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return float(sorted_values[rank])


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` of any numeric series."""
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(float(value) for value in values)
    total = sum(ordered)
    return Summary(
        count=len(ordered),
        total=total,
        mean=total / len(ordered),
        maximum=ordered[-1],
        p50=percentile(ordered, 0.50),
        p90=percentile(ordered, 0.90),
        p99=percentile(ordered, 0.99),
    )


def flatten_counters(stats: dict, prefix: str = "") -> dict:
    """Flatten a nested backend/journal ``stats()`` dict to dotted keys.

    Storage stacks nest their counters (a ``BufferedStore`` reports an
    ``"inner"`` dict, a journaled file a ``"journal"`` dict).  Reports
    and the benchmark JSON want one flat namespace of numeric counters:
    ``{"hits": 9, "inner": {"reads": 3}}`` becomes
    ``{"hits": 9, "inner.reads": 3}``.  Non-numeric leaves (backend
    names, paths) are dropped; booleans are kept as 0/1.
    """
    flat: dict = {}
    for key, value in stats.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_counters(value, prefix=f"{name}."))
        elif isinstance(value, bool):
            flat[name] = int(value)
        elif isinstance(value, (int, float)):
            flat[name] = value
    return flat


def tail_profile(values: Sequence[float], bins: int = 10) -> List[int]:
    """Histogram of a series (equal-width bins up to the maximum).

    A quick textual view of the spike structure: amortized algorithms
    have mass in the last bins, deamortized ones do not.
    """
    if not values:
        return [0] * bins
    maximum = max(values)
    if maximum <= 0:
        return [len(values)] + [0] * (bins - 1)
    histogram = [0] * bins
    for value in values:
        index = min(bins - 1, int(bins * value / maximum))
        histogram[index] += 1
    return histogram


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used to check scaling claims: a flat worst-case curve has exponent
    near 0, a linear one near 1.  Pairs with non-positive coordinates
    are skipped.
    """
    points = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        return 0.0
    n = len(points)
    sum_x = sum(p[0] for p in points)
    sum_y = sum(p[1] for p in points)
    sum_xx = sum(p[0] * p[0] for p in points)
    sum_xy = sum(p[0] * p[1] for p in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        return 0.0
    return (n * sum_xy - sum_x * sum_y) / denominator
