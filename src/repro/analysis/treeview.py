"""ASCII rendering of the calibrator tree (the paper's Figures 1b / 3).

One row per depth; each node prints its page range and, optionally, its
density and warning state — the same information the paper annotates
its calibrator figures with.
"""

from __future__ import annotations

from typing import List, Optional


def render_calibrator(
    calibrator,
    engine=None,
    show_density: bool = True,
    width: int = 0,
) -> str:
    """Render the calibrator, one depth level per line.

    Parameters
    ----------
    calibrator:
        A :class:`~repro.core.calibrator.CalibratorTree`.
    engine:
        Optional CONTROL 2 engine; when given, warning nodes are marked
        ``!`` and their DEST pointer is shown.
    show_density:
        Include ``p(v)`` (as a float with two decimals) per node.
    width:
        Total line width; 0 sizes each level to its content.
    """
    by_depth: List[List[int]] = []
    for node in calibrator.iter_nodes():
        depth = calibrator.depth[node]
        while len(by_depth) <= depth:
            by_depth.append([])
        by_depth[depth].append(node)
    for level in by_depth:
        level.sort(key=lambda node: calibrator.lo[node])

    lines = []
    for depth, level in enumerate(by_depth):
        cells = []
        for node in level:
            lo, hi = calibrator.lo[node], calibrator.hi[node]
            label = f"[{lo},{hi}]" if lo != hi else f"[{lo}]"
            if show_density:
                pages = calibrator.pages_in(node)
                density = calibrator.count[node] / pages
                label += f" p={density:.2f}"
            if engine is not None and calibrator.flag[node]:
                dest = engine.destinations.get(node)
                label += f" !DEST={dest}"
            cells.append(label)
        row = "   ".join(cells)
        if width:
            row = row.center(width)
        lines.append(f"d{depth}: {row}")
    return "\n".join(lines)


def render_figure_1b(occupancies, num_pages: Optional[int] = None) -> str:
    """Convenience: build a calibrator over ``occupancies`` and render it.

    Reproduces the paper's Figure 1b style ("the number inside the node
    v is its density p(v)") for any occupancy vector.
    """
    from ..core.calibrator import CalibratorTree

    total = num_pages if num_pages is not None else len(occupancies)
    tree = CalibratorTree(total)
    for page, count in enumerate(occupancies, start=1):
        if count:
            tree.add(page, count)
    return render_calibrator(tree)
