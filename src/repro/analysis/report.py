"""Plain-text table and series rendering for the benchmark harness.

Every benchmark prints the rows/series it reproduces through these
helpers, so `pytest benchmarks/ --benchmark-only -s` doubles as the
"regenerate the paper's tables" command.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(widths[index]) for index, cell in enumerate(cells)
        )

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_series(
    label: str, xs: Sequence, ys: Sequence, width: int = 40
) -> str:
    """Render an (x, y) series with a proportional ASCII bar per row."""
    maximum = max((float(y) for y in ys), default=0.0)
    lines = [label]
    for x, y in zip(xs, ys):
        value = float(y)
        bar = "#" * (int(width * value / maximum) if maximum > 0 else 0)
        lines.append(f"  {x!s:>12}  {value:>12.3f}  {bar}")
    return "\n".join(lines)


def render_comparison(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Sequence,
) -> str:
    """Render several named series against a shared x column.

    ``series`` is a sequence of ``(name, values)`` pairs.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for index, x in enumerate(xs):
        row = [x]
        for _, values in series:
            value = values[index]
            row.append(f"{value:.3f}" if isinstance(value, float) else value)
        rows.append(row)
    return render_table(headers, rows, title=title)
