"""Analysis and reporting helpers for the benchmark harness."""

from .heatmap import (
    fill_summary,
    occupancy_bar,
    occupancy_history,
    occupancy_legend,
)
from .report import render_comparison, render_series, render_table
from .treeview import render_calibrator, render_figure_1b
from .stats import (
    SUMMARY_HEADERS,
    Summary,
    flatten_counters,
    growth_exponent,
    percentile,
    summarize,
    tail_profile,
)

__all__ = [
    "SUMMARY_HEADERS",
    "Summary",
    "fill_summary",
    "flatten_counters",
    "growth_exponent",
    "occupancy_bar",
    "occupancy_history",
    "occupancy_legend",
    "percentile",
    "render_calibrator",
    "render_comparison",
    "render_figure_1b",
    "render_series",
    "render_table",
    "summarize",
    "tail_profile",
]
