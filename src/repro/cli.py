"""Command-line interface for persistent dense sequential files.

Usage (also via ``python -m repro``):

    repro create  orders.dsf --pages 256 --low-density 8 --capacity 48
    repro put     orders.dsf 42 "first order"
    repro get     orders.dsf 42
    repro scan    orders.dsf --start 0 --count 10
    repro range   orders.dsf --lo 10 --hi 99
    repro delete  orders.dsf 42
    repro load    orders.dsf --keys 0:1000:2
    repro replay  orders.dsf trace.jsonl
    repro delete-range orders.dsf --lo 10 --hi 99
    repro rank    orders.dsf 42
    repro count   orders.dsf --lo 10 --hi 99
    repro compact orders.dsf
    repro info    orders.dsf
    repro verify  orders.dsf
    repro scrub   orders.dsf        # repair / quarantine corrupt pages
    repro stress  --threads 8 --ops 400 --seed 7   # concurrency torture
    repro stress  --replica-reads   # readers on a WAL-shipped replica
    repro soak    --seconds 20 --seed 7   # primary+replica SLO soak
    repro bench   --quick --baseline BENCH_PR9.json  # perf matrix + gate
    repro serve   --shards 4 --port 7421   # sharded cluster over TCP
    repro chaos   --seed 7          # network chaos sweep (trichotomy)
    repro demo                      # replay the paper's Example 5.2

Exit codes are part of the operator contract (scripts branch on them):

    0   clean — the command succeeded and the file is healthy
    1   error — bad usage, missing file, or a typed ReproError
    2   not found — ``get`` on an absent key
    3   corrupt — checksum failures (``verify``), unhealed pages
        (``scrub``), or harness findings (``stress``/``chaos``/...)
    4   regression — ``bench`` exceeded its baseline gate
    5   degraded — the file serves reads but is quarantined read-only
        (``verify``/``info`` on a file scrub could not fully heal)
    6   pending replay — committed journal work is outstanding and the
        requested backend cannot replay it (``verify``/``info`` with
        ``--backend disk``/``buffered`` on a dirty journal)

All mutating commands run through the crash-atomic journaled facade.
``create``, ``verify`` and ``info`` take ``--backend`` to pick the
storage stack (``journaled`` default, plain write-through ``disk``, or
``buffered`` for a live LRU cache of ``--cache-pages`` frames whose
hit-rate counters ``info`` prints); ``demo`` accepts
``--backend memory|buffered``.

Keys given on the command line are parsed as int, then float, then kept
as strings — one file should stick to one key type.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.heatmap import fill_summary, occupancy_bar, occupancy_legend
from .analysis.stats import flatten_counters
from .core.errors import ReproError
from .persistent import JournaledDenseFile, PersistentDenseFile

#: The documented exit-code contract (see the module docstring).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_NOT_FOUND = 2
EXIT_CORRUPT = 3
EXIT_REGRESSION = 4
EXIT_DEGRADED = 5
EXIT_PENDING_REPLAY = 6


def parse_key(text: str):
    """CLI key literal: int, then float, then string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _add_path(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="persistent dense file (.dsf)")


def _cache_pages(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("a cache needs at least one frame")
    return value


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["journaled", "disk", "buffered"],
        default="journaled",
        help="storage stack: crash-atomic journal (default), plain "
        "write-through disk, or a live LRU cache over disk",
    )
    parser.add_argument(
        "--cache-pages", type=_cache_pages, default=None,
        help="frame count for --backend buffered",
    )
    parser.add_argument(
        "--readahead", type=int, default=0,
        help="scan readahead window for --backend buffered "
        "(prefetch up to K upcoming pages on stream retrievals)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dense sequential files with worst-case maintenance "
        "(Willard, SIGMOD 1986).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    create = commands.add_parser("create", help="create a new dense file")
    _add_path(create)
    create.add_argument("--pages", type=int, required=True, help="M")
    create.add_argument(
        "--low-density", type=int, required=True, dest="d",
        help="d (cardinality cap is d*M)",
    )
    create.add_argument(
        "--capacity", type=int, required=True, dest="D",
        help="D (per-page record cap)",
    )
    create.add_argument("--shift-budget", type=int, default=None, dest="j")
    create.add_argument(
        "--algorithm", choices=["control2", "control1"], default="control2"
    )
    create.add_argument("--slot-bytes", type=int, default=0)
    create.add_argument("--force", action="store_true", help="overwrite")
    _add_backend(create)

    put = commands.add_parser("put", help="insert one record")
    _add_path(put)
    put.add_argument("key")
    put.add_argument("value", nargs="?", default=None)

    get = commands.add_parser("get", help="look up one key")
    _add_path(get)
    get.add_argument("key")

    delete = commands.add_parser("delete", help="delete one key")
    _add_path(delete)
    delete.add_argument("key")

    scan = commands.add_parser("scan", help="next N records from a key")
    _add_path(scan)
    scan.add_argument("--start", required=True)
    scan.add_argument("--count", type=int, default=10)

    key_range = commands.add_parser("range", help="records with lo<=key<=hi")
    _add_path(key_range)
    key_range.add_argument("--lo", required=True)
    key_range.add_argument("--hi", required=True)

    load = commands.add_parser("load", help="bulk-insert integer keys")
    _add_path(load)
    load.add_argument(
        "--keys", required=True,
        help="Python-range syntax start:stop[:step], e.g. 0:1000:2",
    )

    replay = commands.add_parser(
        "replay", help="apply a .jsonl operation trace to the file"
    )
    _add_path(replay)
    replay.add_argument("trace", help="trace file from workloads.dump_operations")

    wipe = commands.add_parser("delete-range", help="bulk delete lo..hi")
    _add_path(wipe)
    wipe.add_argument("--lo", required=True)
    wipe.add_argument("--hi", required=True)

    rank = commands.add_parser("rank", help="records with key < KEY")
    _add_path(rank)
    rank.add_argument("key")

    count = commands.add_parser("count", help="records with lo<=key<=hi")
    _add_path(count)
    count.add_argument("--lo", required=True)
    count.add_argument("--hi", required=True)

    compact = commands.add_parser(
        "compact", help="uniformly redistribute all records"
    )
    _add_path(compact)

    info = commands.add_parser("info", help="geometry, fill and heatmap")
    _add_path(info)
    _add_backend(info)

    verify = commands.add_parser(
        "verify", help="invariants + on-disk checksums"
    )
    _add_path(verify)
    _add_backend(verify)

    scrub = commands.add_parser(
        "scrub",
        help="checksum every page, repair from the journal, quarantine "
        "the rest (exit 0 healthy, 3 degraded)",
    )
    _add_path(scrub)

    stress = commands.add_parser(
        "stress",
        help="deterministic concurrency torture run (linearizability "
        "vs. a sequential oracle; exit 0 clean, 1 violation)",
    )
    stress.add_argument("--threads", type=int, default=4)
    stress.add_argument(
        "--ops", type=int, default=200,
        help="total operations across all threads",
    )
    stress.add_argument("--seed", type=int, default=0)
    stress.add_argument(
        "--batch", type=int, default=4,
        help="max operations raced in one batch",
    )
    stress.add_argument(
        "--stack", choices=["memory", "disk", "buffered", "faulty"],
        default="memory",
    )
    stress.add_argument(
        "--fault-rate", type=float, default=0.05,
        help="transient-fault rate for --stack faulty",
    )
    stress.add_argument(
        "--self-test", action="store_true",
        help="also run the harness's negative controls (seeded race, "
        "lock-order deadlock) and require they are detected",
    )
    stress.add_argument(
        "--sanitize", action="store_true",
        help="rebuild the stack with the race sanitizer (Eraser-style "
        "lockset + happens-before + lock-order graph) and fail on any "
        "finding; with --self-test, also require the planted unlocked "
        "write and ABBA acquisition are detected",
    )
    stress.add_argument(
        "--replica-reads", action="store_true", dest="replica_reads",
        help="replication schedule instead: writers on a journaled "
        "primary, readers on a WAL-shipped replica, every snapshot "
        "checked prefix-consistent against the primary's commit digests",
    )
    stress.add_argument(
        "--readers", type=int, default=2,
        help="replica reader threads for --replica-reads",
    )

    soak = commands.add_parser(
        "soak",
        help="long-soak SLO runner: a primary+replica pair under mixed "
        "load, seeded crashes, torn writes and bit flips, with "
        "promote-on-crash failovers and scrub healing; writes a "
        "repro-bench/1 JSON report (exit 0 clean, 1 findings)",
    )
    soak.add_argument(
        "--seconds", type=float, default=20.0,
        help="wall-clock soak duration",
    )
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument(
        "--transport", choices=["queue", "directory"], default="queue",
        help="WAL shipping transport: in-process queue or a shipping "
        "directory of one-file-per-transaction frames",
    )
    soak.add_argument(
        "--workdir", default=None,
        help="directory for the node files (default: a fresh temp dir)",
    )
    soak.add_argument(
        "--out", default=None,
        help="write the repro-bench/1 JSON report here",
    )
    soak.add_argument(
        "--crash-every", type=int, default=200, dest="crash_every",
        help="mean writes between seeded primary crashes",
    )
    soak.add_argument(
        "--corrupt-every", type=int, default=450, dest="corrupt_every",
        help="mean writes between torn-write/bit-flip corruption rounds",
    )
    soak.add_argument(
        "--op-timeout", type=float, default=2.0, dest="op_timeout",
        help="per-operation deadline budget, seconds",
    )

    bench = commands.add_parser(
        "bench",
        help="wall-clock benchmark matrix (scenarios x backends) with "
        "JSON report + --baseline regression gate (exit 4 on regression)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: shrink the operation counts",
    )
    bench.add_argument("--ops", type=int, default=None,
                       help="records per scenario (default 4000)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out", default="BENCH_PR9.json",
        help="write the JSON report here ('-' to skip writing)",
    )
    bench.add_argument(
        "--scenario", action="append", dest="scenarios", default=None,
        choices=["bulk_load", "insert_burst", "mixed", "stream_scan"],
        help="run only this scenario (repeatable; default: all four)",
    )
    bench.add_argument(
        "--bench-backend", action="append", dest="bench_backends",
        default=None, choices=["memory", "buffered", "disk"],
        help="benchmark this backend (repeatable; default: memory+buffered)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="compare against this BENCH_*.json; exit 4 on regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=None,
        help="allowed throughput drop vs --baseline, percent (default 30)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run the matrix under cProfile; print the hottest functions "
        "(cumulative time) to stderr",
    )
    bench.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="write the profile table to FILE instead of stderr "
        "(implies --profile)",
    )
    bench.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="number of functions in the profile table (default 25)",
    )

    lint = commands.add_parser(
        "lint",
        help="AST invariant linter: page-access accounting, lock "
        "discipline and order, error taxonomy, determinism, deadline "
        "propagation (exit 0 clean, 1 findings)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro and tools)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
        help="report format (json is the CI annotation feed)",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids or slugs (e.g. LNT004,determinism)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the mechanically safe rewrites in place "
        "(LNT004 bare `except:` -> `except Exception:`), then re-lint",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a range-sharded in-memory cluster over TCP "
        "(framed JSON protocol with idempotency tokens and "
        "deadline budgets)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7421,
        help="TCP port (0 picks a free one and prints it)",
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--key-space", type=int, default=100_000, dest="key_space",
        help="keys are routed across [0, key-space)",
    )
    serve.add_argument(
        "--capacity", type=int, default=8192,
        help="records each shard is sized to hold",
    )
    serve.add_argument(
        "--shed-load", action="store_true", dest="shed_load",
        help="per-shard admission gates reject writes that would queue",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None, dest="max_in_flight",
        help="per-shard in-flight operation cap",
    )
    serve.add_argument(
        "--seconds", type=float, default=None,
        help="serve for N seconds then exit (default: until Ctrl-C)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="network chaos harness: sweep seeded fault schedules "
        "(drops, delays, duplicates, reorders, truncations, a "
        "kill-shard drill) against multi-client workloads and prove "
        "the success / typed-timeout / not-applied trichotomy "
        "(exit 0 held, 3 violations)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--ops", type=int, default=120,
        help="operations per profile",
    )
    chaos.add_argument("--threads", type=int, default=3)
    chaos.add_argument(
        "--profile", default=None,
        help="run one named profile instead of the full sweep "
        "(clean, drops, delays, duplicates, reorders, truncates, "
        "storm, kill-shard)",
    )
    chaos.add_argument(
        "--out", default=None,
        help="write a repro-chaos/1 JSON report here",
    )

    demo = commands.add_parser("demo", help="replay the paper's Example 5.2")
    demo.add_argument(
        "--backend", choices=["memory", "buffered"], default="memory",
        help="run the example on the pure simulator or through a live "
        "LRU cache (prints its hit-rate counters)",
    )
    demo.add_argument("--cache-pages", type=_cache_pages, default=None)
    return parser


def _parse_range(spec: str) -> range:
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ReproError(f"bad --keys spec {spec!r}; want start:stop[:step]")
    numbers = [int(part) for part in parts]
    return range(*numbers)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=out)
        return 1


def _open_backend(args):
    """Open an existing file through the stack ``--backend`` names."""
    backend = getattr(args, "backend", "journaled")
    if backend == "journaled":
        return JournaledDenseFile.open(args.path)
    cache = args.cache_pages if backend == "buffered" else None
    if backend == "buffered" and cache is None:
        from .storage.backend import DEFAULT_CACHE_PAGES

        cache = DEFAULT_CACHE_PAGES
    readahead = getattr(args, "readahead", 0) if backend == "buffered" else 0
    return PersistentDenseFile.open(
        args.path, cache_pages=cache, readahead=readahead
    )


def _dispatch(args, out) -> int:
    if args.command == "create":
        common = dict(
            num_pages=args.pages,
            d=args.d,
            D=args.D,
            j=args.j,
            algorithm=args.algorithm,
            slot_capacity=args.slot_bytes,
            overwrite=args.force,
        )
        if args.backend == "journaled":
            dense = JournaledDenseFile.create(args.path, **common)
        else:
            cache = args.cache_pages if args.backend == "buffered" else None
            if args.backend == "buffered" and cache is None:
                from .storage.backend import DEFAULT_CACHE_PAGES

                cache = DEFAULT_CACHE_PAGES
            readahead = args.readahead if args.backend == "buffered" else 0
            dense = PersistentDenseFile.create(
                args.path, cache_pages=cache, readahead=readahead, **common
            )
        print(
            f"created {args.path}: M={args.pages}, d={args.d}, D={args.D}, "
            f"J={dense.params.shift_budget}, cap {dense.params.max_records} "
            f"records ({args.backend} backend)",
            file=out,
        )
        dense.close()
        return 0

    if args.command == "lint":
        return _lint(args, out)

    if args.command == "bench":
        return _bench(args, out)

    if args.command == "stress":
        return _stress(args, out)

    if args.command == "soak":
        return _soak(args, out)

    if args.command == "serve":
        return _serve(args, out)

    if args.command == "chaos":
        return _chaos(args, out)

    if args.command == "demo":
        return _demo(out, backend=args.backend, cache_pages=args.cache_pages)

    if args.command == "verify":
        return _verify(args, out)

    if args.command == "scrub":
        return _scrub(args, out)

    if args.command == "info":
        from .storage.ondisk import CorruptPageError
        from .storage.wal import journal_state

        state = journal_state(args.path)
        if not state.clean and getattr(args, "backend", "") != "journaled":
            # A plain backend cannot replay the journal; report the
            # durable LSN and what recovery would do instead of dying
            # on the refuse-to-open error path.
            print(f"journal:   {state.describe()}", file=out)
            print(
                "reopen with the journaled backend (default) to replay "
                "the committed transaction or discard the torn tail",
                file=out,
            )
            return EXIT_PENDING_REPLAY
        try:
            with _open_backend(args) as dense:
                return _dispatch_on_file(args, dense, out)
        except CorruptPageError:
            # Fall back to the degraded read-only view so the operator
            # can still see geometry, fill and the quarantine set.
            with PersistentDenseFile.open(
                args.path, on_corruption="degrade"
            ) as dense:
                code = _dispatch_on_file(args, dense, out)
                return EXIT_DEGRADED if code == EXIT_OK else code

    with JournaledDenseFile.open(args.path) as dense:
        return _dispatch_on_file(args, dense, out)


def _verify(args, out) -> int:
    """Checksums first (works even when pages are unreadable), then the
    structural invariants through the requested storage stack."""
    from .storage.ondisk import DiskPagedStore
    from .storage.wal import TransactionJournal, journal_state

    with DiskPagedStore.open(args.path) as store:
        corrupt = store.verify_all()
    if corrupt:
        print(f"CORRUPT pages: {corrupt}", file=out)
        committed = TransactionJournal(args.path + ".journal").read_committed()
        journaled = sorted(set(corrupt) & set(committed or ()))
        if journaled:
            print(
                f"repairable from the journal: {journaled} — run "
                "`repro scrub`",
                file=out,
            )
        unrepairable = sorted(set(corrupt) - set(committed or ()))
        if unrepairable:
            print(
                f"no journaled image for: {unrepairable} — `repro scrub` "
                "will quarantine them (file becomes read-only)",
                file=out,
            )
        return EXIT_CORRUPT
    state = journal_state(args.path)
    if not state.clean and getattr(args, "backend", "") != "journaled":
        # Checksums passed, but recovery work is outstanding and the
        # requested backend cannot run it: report the durable LSN and
        # the pending-replay state instead of the refuse-to-open error.
        print(f"journal:   {state.describe()}", file=out)
        print(
            "reopen with the journaled backend (default) to replay the "
            "committed transaction or discard the torn tail",
            file=out,
        )
        return EXIT_PENDING_REPLAY
    with _open_backend(args) as dense:
        dense.validate()
        degraded = bool(getattr(dense, "read_only", False))
        counters = flatten_counters(dense.store_stats())
    if degraded:
        print(
            "DEGRADED: structure verifies but the file is quarantined "
            "read-only — run `repro scrub` or restore from backup",
            file=out,
        )
        return EXIT_DEGRADED
    print(
        "ok: sequential order, (d,D)-density, BALANCE(d,D), counters, "
        "checksums",
        file=out,
    )
    state = journal_state(args.path)
    if state.durable_sequence or not state.clean or state.applied_retained:
        print(f"journal:   {state.describe()}", file=out)
    interesting = {
        key: value
        for key, value in sorted(counters.items())
        if ("prefetch" in key or "journal" in key or key == "readahead")
    }
    if interesting:
        line = ", ".join(f"{key}={value}" for key, value in interesting.items())
        print(f"counters:  {line}", file=out)
    return 0


def _default_lint_roots() -> List[str]:
    """The package sources and the tools/ scripts next to them.

    Resolved from the installed package location so ``repro lint``
    works from any working directory inside (or outside) the repo.
    """
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    roots = [package_dir]
    repo_root = os.path.dirname(os.path.dirname(package_dir))
    tools_dir = os.path.join(repo_root, "tools")
    if os.path.isdir(tools_dir):
        roots.append(tools_dir)
    return roots


def _lint(args, out) -> int:
    """Run the AST checkers; exit 0 clean, 1 findings."""
    from .lint import rule_table, run_fix, run_lint

    if args.list_rules:
        for rule in rule_table():
            print(
                f"{rule['id']}  {rule['slug']:<16} {rule['title']}",
                file=out,
            )
        return 0
    roots = args.paths or _default_lint_roots()
    rules = args.rules.split(",") if args.rules else None
    if args.fix:
        for path, rewrites in run_fix(roots):
            print(
                f"fixed {path}: {rewrites} bare `except:` clause(s) -> "
                "`except Exception:`",
                file=out,
            )
    report = run_lint(roots, rules)
    if args.fmt == "json":
        print(report.to_json(), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.clean else 1


def _bench(args, out) -> int:
    """Run the benchmark matrix, write the JSON report, gate on baseline."""
    import json

    from . import benchmark

    kwargs = dict(
        seed=args.seed,
        quick=args.quick,
        scenarios=tuple(args.scenarios or benchmark.SCENARIOS),
        backends=tuple(args.bench_backends or ("memory", "buffered")),
    )
    if args.ops is not None:
        kwargs["ops"] = args.ops
    if args.profile or args.profile_out is not None:
        import sys

        report, table = benchmark.run_bench_profiled(
            profile_top=args.profile_top, **kwargs
        )
        if args.profile_out:
            with open(args.profile_out, "w") as handle:
                handle.write(table)
            print(f"profile written to {args.profile_out}", file=out)
        else:
            sys.stderr.write(table)
        print(
            "note: wall-clock figures below include cProfile overhead",
            file=out,
        )
    else:
        report = benchmark.run_bench(**kwargs)
    print(benchmark.render_report(report), file=out)
    if args.out and args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}", file=out)
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        problems = benchmark.validate_report(baseline)
        if problems:
            raise ReproError(
                f"baseline {args.baseline} is not a valid report: "
                + "; ".join(problems)
            )
        compare_kwargs = {}
        if args.max_regression is not None:
            compare_kwargs["max_regression"] = args.max_regression
        regressions = benchmark.compare_reports(
            baseline, report, **compare_kwargs
        )
        if regressions:
            print(f"REGRESSION vs {args.baseline}:", file=out)
            for line in regressions:
                print(f"  {line}", file=out)
            return EXIT_REGRESSION
        print(f"no regression vs {args.baseline}", file=out)
    return 0


def _stress(args, out) -> int:
    """One seeded torture run (optionally plus the self-test controls)."""
    import os
    import tempfile

    from .concurrent.harness import StressConfig, run_stress, self_test

    if args.self_test and args.sanitize:
        from .sanitizer import sanitize_self_test

        sanitize_report = sanitize_self_test(seed=args.seed)
        print(sanitize_report.summary(), file=out)
        return 0 if sanitize_report.ok else 1
    if args.self_test:
        report = self_test(seed=args.seed)
        print(report.summary(), file=out)
        return 0 if report.ok else 1
    if args.replica_reads:
        from .concurrent.harness import (
            ReplicaStressConfig,
            run_replica_stress,
        )

        replica_report = run_replica_stress(
            ReplicaStressConfig(
                path=os.path.join(
                    tempfile.mkdtemp(prefix="repro-stress-"), "primary.dsf"
                ),
                threads=args.threads,
                readers=args.readers,
                total_ops=args.ops,
                seed=args.seed,
            )
        )
        print(replica_report.summary(), file=out)
        return 0 if replica_report.ok else 1
    path = None
    if args.stack in ("disk", "buffered"):
        path = os.path.join(
            tempfile.mkdtemp(prefix="repro-stress-"), "stress.dsf"
        )
    report = run_stress(
        StressConfig(
            threads=args.threads,
            total_ops=args.ops,
            seed=args.seed,
            max_batch=args.batch,
            stack=args.stack,
            transient_rate=args.fault_rate,
            path=path,
            sanitize=args.sanitize,
        )
    )
    print(report.summary(), file=out)
    return 0 if report.ok else 1


def _soak(args, out) -> int:
    """Run the replication SLO soak; write the repro-bench/1 report."""
    import json
    import tempfile

    from .replication import SoakConfig, run_soak

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-soak-")
    report = run_soak(
        SoakConfig(
            workdir=workdir,
            seconds=args.seconds,
            seed=args.seed,
            transport=args.transport,
            crash_every=args.crash_every,
            corrupt_every=args.corrupt_every,
            op_timeout=args.op_timeout,
        )
    )
    print(report.summary(), file=out)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_bench_report(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}", file=out)
    return 0 if report.clean else 1


def _serve(args, out) -> int:
    """Run the sharded cluster server until interrupted (or --seconds)."""
    import time as _time

    from .cluster import ClusterServer, ShardedDenseFile

    store = ShardedDenseFile.build(
        num_shards=args.shards,
        key_space=args.key_space,
        capacity_hint=args.capacity,
        shed_load=args.shed_load,
        max_in_flight=args.max_in_flight,
    )
    server = ClusterServer(store)
    host, port = server.start(args.host, args.port)
    print(
        f"serving {args.shards} shards over [0, {args.key_space}) "
        f"on {host}:{port}",
        file=out,
    )
    for shard_range in store.shard_map.ranges():
        print(f"  {shard_range.describe()}", file=out)
    try:
        if args.seconds is not None:
            _time.sleep(args.seconds)
        else:
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=out)
    finally:
        server.stop()
        store.close()
    print(
        f"served {server.requests} requests "
        f"({server.errors} errors, {server.dedup_replays} dedup replays)",
        file=out,
    )
    return EXIT_OK


def _chaos(args, out) -> int:
    """Run the chaos sweep (or one profile) and gate on the trichotomy."""
    import json

    from .cluster.chaos import SWEEP_PROFILES, run_sweep

    profiles = SWEEP_PROFILES
    if args.profile is not None:
        chosen = dict(SWEEP_PROFILES).get(args.profile)
        if chosen is None:
            names = ", ".join(name for name, _overrides in SWEEP_PROFILES)
            raise ReproError(
                f"unknown chaos profile {args.profile!r}; pick one of {names}"
            )
        profiles = ((args.profile, chosen),)

    reports = run_sweep(
        seed=args.seed,
        total_ops=args.ops,
        threads=args.threads,
        profiles=profiles,
    )
    failed = 0
    for name, report in reports:
        print(f"[{name}]", file=out)
        print(report.summary(), file=out)
        if not report.ok:
            failed += 1
    if args.out:
        payload = {
            "schema": "repro-chaos/1",
            "seed": args.seed,
            "profiles": {name: report.to_dict() for name, report in reports},
            "ok": failed == 0,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=out)
    print(
        f"{len(reports) - failed}/{len(reports)} profiles held the "
        "trichotomy",
        file=out,
    )
    return EXIT_OK if failed == 0 else EXIT_CORRUPT


def _scrub(args, out) -> int:
    """Run the detect/repair/quarantine/verify ladder and report it."""
    from .storage.scrub import scrub

    report = scrub(args.path)
    print(report.summary(), file=out)
    return EXIT_OK if report.healthy else EXIT_CORRUPT


def _dispatch_on_file(args, dense, out) -> int:
    if args.command == "put":
        dense.insert(parse_key(args.key), args.value)
        print(f"ok ({len(dense)} records)", file=out)
        return 0

    if args.command == "get":
        record = dense.search(parse_key(args.key))
        if record is None:
            print("not found", file=out)
            return EXIT_NOT_FOUND
        print(f"{record.key}\t{record.value}", file=out)
        return 0

    if args.command == "delete":
        dense.delete(parse_key(args.key))
        print(f"deleted ({len(dense)} records left)", file=out)
        return 0

    if args.command == "scan":
        for record in dense.scan(parse_key(args.start), args.count):
            print(f"{record.key}\t{record.value}", file=out)
        return 0

    if args.command == "range":
        for record in dense.range(parse_key(args.lo), parse_key(args.hi)):
            print(f"{record.key}\t{record.value}", file=out)
        return 0

    if args.command == "load":
        count = dense.insert_many(_parse_range(args.keys))
        print(f"loaded {count} records ({len(dense)} total)", file=out)
        return 0

    if args.command == "replay":
        from .workloads import load_operations, run_workload

        operations = load_operations(args.trace)
        result = run_workload(dense, operations)
        print(
            f"replayed {result.operations_executed} commands "
            f"({len(dense)} records now)",
            file=out,
        )
        return 0

    if args.command == "delete-range":
        removed = dense.delete_range(parse_key(args.lo), parse_key(args.hi))
        print(f"deleted {removed} records ({len(dense)} left)", file=out)
        return 0

    if args.command == "rank":
        print(dense.rank(parse_key(args.key)), file=out)
        return 0

    if args.command == "count":
        print(
            dense.count_range(parse_key(args.lo), parse_key(args.hi)),
            file=out,
        )
        return 0

    if args.command == "compact":
        pages = dense.compact()
        print(f"compacted: rewrote {pages} pages", file=out)
        return 0

    if args.command == "info":
        params = dense.params
        print(f"path:      {dense.path}", file=out)
        print(f"algorithm: {dense.engine.algorithm_name}", file=out)
        print(
            f"geometry:  M={params.num_pages}, d={params.d}, D={params.D}, "
            f"J={params.shift_budget}",
            file=out,
        )
        occupancies = dense.occupancies()
        print(f"fill:      {fill_summary(occupancies, params.D)}", file=out)
        print(f"layout:    |{occupancy_bar(occupancies, params.D)}|", file=out)
        print(f"           {occupancy_legend(params.D)}", file=out)
        stats = dense.store_stats()
        print(f"backend:   {stats['backend']}", file=out)
        if getattr(dense, "read_only", False):
            print(
                f"state:     DEGRADED (read-only); quarantined pages "
                f"{list(dense.quarantined)} — run `repro scrub` or "
                "restore from backup",
                file=out,
            )
        if stats["backend"] == "buffered":
            print(
                f"cache:     {stats['capacity']} frames, "
                f"{stats['hits']} hits / {stats['misses']} misses "
                f"(hit rate {stats['hit_rate']:.3f}), "
                f"{stats['evictions']} evictions",
                file=out,
            )
            print(
                f"readahead: window {stats['readahead']}, "
                f"{stats['prefetches']} prefetches, "
                f"{stats['prefetch_hits']} prefetch hits",
                file=out,
            )
            print(
                f"physical:  {stats['physical_reads']} reads, "
                f"{stats['physical_writes']} writes",
                file=out,
            )
        journal = stats.get("journal")
        if journal is not None:
            print(
                f"journal:   {journal['transactions']} transactions, "
                f"{journal['pages_journaled']} pages journaled, "
                f"{journal['fsyncs']} fsyncs (group commit coalesces "
                "commands per fsync)",
                file=out,
            )
        from .storage.wal import journal_state

        state = journal_state(dense.path)
        if (
            journal is not None
            or state.durable_sequence
            or not state.clean
            or state.applied_retained
        ):
            print(f"wal:       {state.describe()}", file=out)
        if getattr(dense, "read_only", False):
            return EXIT_DEGRADED
        return EXIT_OK

    raise AssertionError(f"unhandled command {args.command}")


def _demo(out, backend: str = "memory", cache_pages: Optional[int] = None) -> int:
    from .core.control2 import Control2Engine
    from .core.params import DensityParams
    from .core.trace import MomentRecorder
    from .storage.backend import BufferedStore, MemoryStore

    params = DensityParams(num_pages=8, d=9, D=18, j=3)
    store = None
    if backend == "buffered":
        store = BufferedStore(MemoryStore(8), capacity=cache_pages or 4)
    engine = Control2Engine(params, store=store)
    engine.load_occupancies([16, 1, 0, 1, 9, 9, 9, 16], key_start=0, key_gap=10)
    recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)
    print("Example 5.2 (M=8, d=9, D=18, J=3)", file=out)
    print(f"      t0: {engine.occupancies()}", file=out)
    engine.insert_at_page(8, 10_000)
    engine.insert_at_page(1, -10_000)
    for index, moment in enumerate(recorder.moments, start=1):
        print(f"      t{index}: {list(moment.occupancies)}", file=out)
    engine.validate()
    print("matches Figure 4 of the paper; invariants hold", file=out)
    if store is not None:
        store.flush()
        pool = store.pool_stats
        print(
            f"live cache ({pool.capacity} frames): {pool.hits} hits / "
            f"{pool.misses} misses (hit rate {pool.hit_rate:.3f}), "
            f"{pool.physical_reads} physical reads, "
            f"{pool.physical_writes} physical writes",
            file=out,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
