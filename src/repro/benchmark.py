"""Wall-clock benchmark harness with machine-readable regression tracking.

The paper's argument is throughput under streams: bounded page accesses
per command keep insertion bursts and stream retrievals disk-arm
friendly.  The logical access counters prove the *bounds*; this module
measures what they buy in *wall-clock* terms, so every PR inherits a
performance trajectory (``BENCH_PR4.json`` and successors) instead of
hoping nothing got slower.

Four named scenarios run over interchangeable backends:

``bulk_load``
    Uniformly load ``ops`` sorted records into an empty file (the
    Theorem 5.5 initial state), timed in chunks.
``insert_burst``
    Preload half, then drive a sorted insertion burst through the
    batched ``insert_many`` fast path in chunks.
``mixed``
    Preload half, then a seeded 50/50 insert/delete mix timed per
    operation (the steady-state update workload).
``stream_scan``
    Preload, then stream every record through ``range`` — plus the same
    retrieval on the :class:`~repro.baselines.btree.BPlusTree` baseline
    for the paper's dense-file-vs-B-tree contrast (reported under
    ``extra.baseline``).

Each (scenario, backend) cell reports ops/sec, **logical** page
accesses (the paper's metered quantity, identical on every backend),
p50/p99 per-operation latency, and the flattened physical counters of
the backend stack (cache hits, prefetches, journal fsyncs ... via
:func:`repro.analysis.stats.flatten_counters`).

:func:`compare_reports` implements the regression gate: given a
baseline report it flags cells whose throughput dropped by more than a
threshold (wall clock is noisy — CI treats this as informational; the
deterministic logical counters are compared with a tight threshold).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.stats import flatten_counters, percentile
from .baselines.btree import BPlusTree
from .core.dense_file import DenseSequentialFile
from .core.errors import ConfigurationError
from .workloads.generators import DELETE, INSERT, mixed_workload

SCHEMA = "repro-bench/1"

SCENARIOS = ("bulk_load", "insert_burst", "mixed", "stream_scan")
#: ``cluster`` runs the workload through a real TCP round trip per
#: operation against a loopback :class:`~repro.cluster.server.ClusterServer`
#: over a 4-shard store — the networked cost of the same algorithms.
BACKENDS = ("memory", "buffered", "disk", "cluster")

#: Default knobs; ``quick`` mode shrinks ops for CI smoke jobs.
DEFAULT_OPS = 4000
QUICK_OPS = 600
DEFAULT_CACHE_PAGES = 64
DEFAULT_READAHEAD = 8
_CHUNK = 64

#: Wall-clock throughput may jitter this much (percent) before the
#: comparison flags it; logical page accesses are deterministic and get
#: the tight bound.
DEFAULT_MAX_REGRESSION = 30.0
ACCESS_REGRESSION = 2.0

#: Retained per-operation latency samples per cell.  Collection is a
#: plain append in the timed loop; runs longer than the cap are
#: down-sampled afterwards by a seeded reservoir, so the stored sample
#: is an unbiased, deterministic draw from every observed operation.
LATENCY_RESERVOIR = 2048


def _reservoir(latencies: List[float], seed: int) -> List[float]:
    """Deterministically down-sample to ``LATENCY_RESERVOIR`` entries.

    Classic reservoir sampling (Algorithm R) over the full observation
    list, seeded so two runs of the same workload keep the same sample
    positions.  Runs at or under the cap are returned unchanged.
    """
    if len(latencies) <= LATENCY_RESERVOIR:
        return latencies
    rng = random.Random(seed ^ 0x5EED)
    sample = latencies[:LATENCY_RESERVOIR]
    for index in range(LATENCY_RESERVOIR, len(latencies)):
        slot = rng.randint(0, index)
        if slot < LATENCY_RESERVOIR:
            sample[slot] = latencies[index]
    return sample


#: What one latency observation means, per scenario, for the local
#: backends (the cluster runner labels its cells separately because its
#: bulk_load is chunked and its stream_scan is a single round trip).
_LATENCY_SOURCES = {
    "bulk_load": "aggregate",
    "insert_burst": "per_chunk_mean",
    "mixed": "per_op",
    "stream_scan": "per_chunk_mean",
}


def _geometry(ops: int) -> Dict[str, int]:
    """Pick a (M, d, D) with room for ~2*ops records at average density.

    D - d = 40 keeps the slack condition satisfied up to M = 8192
    (3 * 13 = 39 < 40), which caps ops at ~32k records.
    """
    need = max(256, (2 * ops) // 8 + 1)
    num_pages = 1 << (need - 1).bit_length()
    if num_pages > 8192:
        raise ConfigurationError("ops too large for the benchmark geometry (max ~32000)")
    return {"num_pages": num_pages, "d": 8, "D": 48}


def _make_file(
    backend: str,
    geometry: Dict[str, int],
    tmpdir: Optional[str],
    cache_pages: int,
    readahead: int,
    page_format: str = "packed",
) -> DenseSequentialFile:
    if backend == "memory":
        return DenseSequentialFile(**geometry, page_format=page_format)
    if backend == "buffered":
        return DenseSequentialFile(
            **geometry,
            backend="buffered",
            cache_pages=cache_pages,
            readahead=readahead,
            page_format=page_format,
        )
    if backend == "disk":
        import os

        if tmpdir is None:
            raise ConfigurationError("disk backend needs a tmpdir")
        path = os.path.join(tmpdir, f"bench-{backend}.dsf")
        return DenseSequentialFile(
            **geometry,
            backend="disk",
            path=path,
            overwrite=True,
            page_format=page_format,
        )
    raise ConfigurationError(f"unknown backend {backend!r}; pick one of {BACKENDS}")


def _chunks(values: Sequence, size: int) -> List[Sequence]:
    return [values[i : i + size] for i in range(0, len(values), size)]


def _result(
    scenario: str,
    backend: str,
    ops: int,
    elapsed: float,
    latencies: List[float],
    accesses: int,
    counters: Dict[str, float],
    extra: Optional[dict] = None,
    latency_source: str = "per_op",
    seed: int = 0,
) -> dict:
    # ``latency_source`` records what one latency sample *is* so the
    # percentiles can be read honestly: "per_op" samples time a single
    # command; "per_chunk_mean" (the batched scenarios) average a chunk,
    # so their p99 understates tail latency by construction; "aggregate"
    # is one whole-phase measurement.  This is an additive repro-bench/1
    # schema extension — older reports simply lack the two fields.
    sample = _reservoir(latencies, seed)
    ordered = sorted(sample)
    return {
        "scenario": scenario,
        "backend": backend,
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_sec": (ops / elapsed) if elapsed > 0 else 0.0,
        "page_accesses": accesses,
        "latency_p50_us": percentile(ordered, 0.50) * 1e6,
        "latency_p99_us": percentile(ordered, 0.99) * 1e6,
        "latency_source": latency_source,
        "latency_samples": len(ordered),
        "counters": counters,
        "extra": extra or {},
    }


def _run_scenario(
    scenario: str,
    backend: str,
    ops: int,
    seed: int,
    tmpdir: Optional[str],
    cache_pages: int,
    readahead: int,
    page_format: str = "packed",
) -> dict:
    if backend == "cluster":
        return _run_cluster_scenario(scenario, ops, seed)
    geometry = _geometry(ops)
    dense = _make_file(
        backend, geometry, tmpdir, cache_pages, readahead, page_format
    )
    clock = time.perf_counter
    latencies: List[float] = []
    executed = 0
    try:
        if scenario == "bulk_load":
            keys = list(range(0, 2 * ops, 2))
            before = dense.stats.page_accesses
            start = clock()
            dense.bulk_load(keys)
            elapsed = clock() - start
            executed = len(keys)
            latencies.append(elapsed / executed)
        elif scenario == "insert_burst":
            dense.bulk_load(list(range(0, 2 * ops, 4)))
            burst = [key for key in range(0, 2 * ops, 4)]
            burst = [key + 1 for key in burst][: ops - len(dense)]
            before = dense.stats.page_accesses
            start = clock()
            for chunk in _chunks(burst, _CHUNK):
                t0 = clock()
                dense.insert_many(chunk)
                latencies.append((clock() - t0) / len(chunk))
                executed += len(chunk)
            elapsed = clock() - start
        elif scenario == "mixed":
            preload = list(range(0, ops, 2))
            dense.bulk_load(preload)
            # Materialize and pre-dispatch the stream before timing:
            # the workload generator (and the kind test per operation)
            # is harness, not the measured structure, and consuming it
            # inside the loop used to charge its cost to every
            # operation.
            calls = [
                (dense.insert, (operation.key, operation.value))
                if operation.kind == INSERT
                else (dense.delete, (operation.key,))
                for operation in mixed_workload(
                    ops // 2,
                    insert_ratio=0.5,
                    key_space=4 * ops,
                    seed=seed,
                    preloaded=preload,
                )
            ]
            append = latencies.append
            before = dense.stats.page_accesses
            # Chained timestamps: one clock read per operation (the end
            # of op N is the start of op N+1), so the per-op meter costs
            # half of the naive two-reads-per-op pattern.  The loop's
            # own unpack/append overhead (~50ns) rides inside each
            # sample; the timer read it replaces cost more.
            start = t0 = clock()
            for call, args in calls:
                call(*args)
                t1 = clock()
                append(t1 - t0)
                t0 = t1
            elapsed = t0 - start
            executed = len(calls)
        elif scenario == "stream_scan":
            keys = list(range(ops))
            dense.bulk_load(keys)
            before = dense.stats.page_accesses
            start = clock()
            t0 = clock()
            for record in dense.range(keys[0], keys[-1]):
                executed += 1
                if executed % 256 == 0:
                    latencies.append((clock() - t0) / 256)
                    t0 = clock()
            elapsed = clock() - start
            if not latencies:
                latencies.append(elapsed / max(1, executed))
        else:
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; pick one of {SCENARIOS}"
            )
        accesses = dense.stats.page_accesses - before
        counters = flatten_counters(dense.store_stats())
        extra = None
        if scenario == "stream_scan":
            extra = {"baseline": _btree_scan(geometry, ops)}
        return _result(
            scenario, backend, executed, elapsed, latencies, accesses,
            counters, extra,
            latency_source=_LATENCY_SOURCES[scenario], seed=seed,
        )
    finally:
        dense.close()


def _btree_scan(geometry: Dict[str, int], ops: int) -> dict:
    """The same stream retrieval on a bulk-loaded B+-tree baseline."""
    tree = BPlusTree(
        fanout=16, leaf_capacity=geometry["D"], cache_internal_nodes=True
    )
    keys = list(range(ops))
    tree.bulk_load(keys)
    before = tree.stats.page_accesses
    start = time.perf_counter()
    scanned = sum(1 for _ in tree.range_scan(keys[0], keys[-1]))
    elapsed = time.perf_counter() - start
    return {
        "structure": "B+-tree",
        "ops": scanned,
        "ops_per_sec": (scanned / elapsed) if elapsed > 0 else 0.0,
        "page_accesses": tree.stats.page_accesses - before,
    }


def _run_cluster_scenario(scenario: str, ops: int, seed: int) -> dict:
    """One scenario through the sharded cluster over loopback TCP.

    Every timed operation is a full client round trip — framing, CRC,
    socket write, server dispatch, shard update, response — so this
    cell prices the *network* layer the other backends omit.  Preloads
    happen server-side (untimed); page accesses are summed across the
    shards' logical counters, which stay deterministic because loopback
    TCP injects no faults and therefore no retries.
    """
    from .cluster import ClusterClient, ClusterServer, ShardedDenseFile

    key_space = 4 * ops
    store = ShardedDenseFile.build(
        num_shards=4, key_space=key_space, capacity_hint=ops
    )
    server = ClusterServer(store)
    host, port = server.start()
    clock = time.perf_counter
    latencies: List[float] = []
    executed = 0

    def accesses_now() -> int:
        return sum(shard.stats.page_accesses for shard in store.shards)

    try:
        with ClusterClient.connect(host, port) as client:
            if scenario == "bulk_load":
                keys = list(range(0, 2 * ops, 2))
                before = accesses_now()
                start = clock()
                for chunk in _chunks(keys, _CHUNK):
                    t0 = clock()
                    for key in chunk:
                        client.insert(key)
                    latencies.append((clock() - t0) / len(chunk))
                    executed += len(chunk)
                elapsed = clock() - start
            elif scenario == "insert_burst":
                for key in range(0, 2 * ops, 4):
                    store.insert(key)
                burst = [key + 1 for key in range(0, 2 * ops, 4)]
                burst = burst[: ops - len(store)]
                before = accesses_now()
                start = clock()
                for chunk in _chunks(burst, _CHUNK):
                    t0 = clock()
                    for key in chunk:
                        client.insert(key)
                    latencies.append((clock() - t0) / len(chunk))
                    executed += len(chunk)
                elapsed = clock() - start
            elif scenario == "mixed":
                preload = list(range(0, ops, 2))
                for key in preload:
                    store.insert(key)
                # Same fix as the local runner: generate the stream
                # before timing so generator cost is not billed to the
                # per-operation round trips.
                operations = list(
                    mixed_workload(
                        ops // 2,
                        insert_ratio=0.5,
                        key_space=key_space,
                        seed=seed,
                        preloaded=preload,
                    )
                )
                before = accesses_now()
                start = clock()
                for operation in operations:
                    t0 = clock()
                    if operation.kind == INSERT:
                        client.insert(operation.key, operation.value)
                    elif operation.kind == DELETE:
                        client.delete(operation.key)
                    latencies.append(clock() - t0)
                    executed += 1
                elapsed = clock() - start
            elif scenario == "stream_scan":
                keys = list(range(ops))
                for key in keys:
                    store.insert(key)
                before = accesses_now()
                start = clock()
                result = client.range(keys[0], keys[-1])
                elapsed = clock() - start
                executed = len(result)
                latencies.append(elapsed / max(1, executed))
            else:
                raise ConfigurationError(
                    f"unknown scenario {scenario!r}; pick one of {SCENARIOS}"
                )
            accesses = accesses_now() - before
            retries = client.client_stats()["retries"]
    finally:
        server.stop()
        store.close()
    counters: Dict[str, float] = {
        "num_shards": float(store.shard_map.num_shards),
        "requests": float(server.requests),
        "errors": float(server.errors),
        "dedup_replays": float(server.dedup_replays),
        "client_retries": float(retries),
    }
    cluster_sources = {
        "bulk_load": "per_chunk_mean",
        "insert_burst": "per_chunk_mean",
        "mixed": "per_op",
        "stream_scan": "aggregate",
    }
    return _result(
        scenario, "cluster", executed, elapsed, latencies, accesses, counters,
        latency_source=cluster_sources[scenario], seed=seed,
    )


def run_bench(
    scenarios: Sequence[str] = SCENARIOS,
    backends: Sequence[str] = ("memory", "buffered"),
    ops: int = DEFAULT_OPS,
    seed: int = 0,
    quick: bool = False,
    cache_pages: int = DEFAULT_CACHE_PAGES,
    readahead: int = DEFAULT_READAHEAD,
    page_format: str = "packed",
) -> dict:
    """Run the scenario x backend matrix; returns the report dict.

    ``page_format`` picks the in-core page representation for the local
    backends (``"packed"`` — the default — or ``"object"``); the
    ``cluster`` backend builds its own shards and ignores it.  Logical
    page accesses are identical for both formats; only wall clock
    differs.
    """
    import tempfile

    if quick:
        ops = min(ops, QUICK_OPS)
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; pick from {SCENARIOS}"
            )
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmpdir:
        for scenario in scenarios:
            for backend in backends:
                results.append(
                    _run_scenario(
                        scenario, backend, ops, seed, tmpdir,
                        cache_pages, readahead, page_format,
                    )
                )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "ops": ops,
        "page_format": page_format,
        "geometry": _geometry(ops),
        "results": results,
    }


def run_bench_profiled(profile_top: int = 25, **kwargs) -> "Tuple[dict, str]":
    """:func:`run_bench` under cProfile; returns ``(report, table)``.

    ``table`` is the ``pstats`` rendering of the ``profile_top`` hottest
    functions by cumulative time.  The report's wall-clock figures
    include profiler overhead — use a profiled run to find hot spots,
    never to record a baseline.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report = run_bench(**kwargs)
    finally:
        profiler.disable()
    table = io.StringIO()
    stats = pstats.Stats(profiler, stream=table)
    stats.sort_stats("cumulative").print_stats(max(1, profile_top))
    return report, table.getvalue()


# ----------------------------------------------------------------------
# report validation and comparison
# ----------------------------------------------------------------------

_REQUIRED_FIELDS = (
    "scenario", "backend", "ops", "elapsed_s", "ops_per_sec",
    "page_accesses", "latency_p50_us", "latency_p99_us", "counters",
)


def validate_report(report: dict) -> List[str]:
    """Schema-check a report dict; returns problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {SCHEMA!r}"
        )
    results = report.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty list")
        return problems
    for index, cell in enumerate(results):
        if not isinstance(cell, dict):
            problems.append(f"results[{index}] is not an object")
            continue
        for fieldname in _REQUIRED_FIELDS:
            if fieldname not in cell:
                problems.append(f"results[{index}] missing {fieldname!r}")
        for numeric in (
            "ops", "elapsed_s", "ops_per_sec", "page_accesses",
            "latency_p50_us", "latency_p99_us", "latency_samples",
        ):
            value = cell.get(numeric)
            if value is not None and not isinstance(value, (int, float)):
                problems.append(
                    f"results[{index}].{numeric} is not numeric"
                )
        # Optional fields (added after the first reports were recorded;
        # absent in e.g. BENCH_PR4.json, so absence is not a problem).
        source = cell.get("latency_source")
        if source is not None and not isinstance(source, str):
            problems.append(f"results[{index}].latency_source is not a string")
        if "counters" in cell and not isinstance(cell["counters"], dict):
            problems.append(f"results[{index}].counters is not an object")
    return problems


def compare_reports(
    baseline: dict,
    current: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    access_regression: float = ACCESS_REGRESSION,
) -> List[str]:
    """Flag (scenario, backend) cells that regressed vs ``baseline``.

    Throughput (``ops_per_sec``) may drop up to ``max_regression``
    percent before it is flagged — wall clock is noisy.  Logical
    ``page_accesses`` are deterministic, so any growth beyond
    ``access_regression`` percent is flagged.  Cells present in only
    one report are ignored.  Returns human-readable regression lines
    (empty == no regression).
    """
    regressions: List[str] = []
    current_cells = {
        (cell["scenario"], cell["backend"]): cell
        for cell in current.get("results", [])
    }
    for cell in baseline.get("results", []):
        key = (cell["scenario"], cell["backend"])
        now = current_cells.get(key)
        if now is None:
            continue
        base_ops = cell.get("ops_per_sec") or 0.0
        now_ops = now.get("ops_per_sec") or 0.0
        if base_ops > 0 and now_ops < base_ops * (1 - max_regression / 100):
            drop = 100 * (1 - now_ops / base_ops)
            regressions.append(
                f"{key[0]}/{key[1]}: throughput {now_ops:,.0f} ops/s is "
                f"{drop:.1f}% below baseline {base_ops:,.0f} ops/s "
                f"(limit {max_regression:.0f}%)"
            )
        base_acc = cell.get("page_accesses") or 0
        now_acc = now.get("page_accesses") or 0
        if base_acc > 0 and now_acc > base_acc * (1 + access_regression / 100):
            growth = 100 * (now_acc / base_acc - 1)
            regressions.append(
                f"{key[0]}/{key[1]}: logical page accesses {now_acc} grew "
                f"{growth:.1f}% over baseline {base_acc} "
                f"(limit {access_regression:.0f}%)"
            )
    return regressions


def render_report(report: dict) -> str:
    """One-line-per-cell text rendering for terminals and CI logs."""
    lines = [
        f"repro bench  (schema {report.get('schema')}, "
        f"ops={report.get('ops')}, quick={report.get('quick')})"
    ]
    for cell in report.get("results", []):
        line = (
            f"  {cell['scenario']:<13} {cell['backend']:<9} "
            f"{cell['ops_per_sec']:>12,.0f} ops/s  "
            f"{cell['page_accesses']:>8} accesses  "
            f"p50 {cell['latency_p50_us']:>8.1f}us  "
            f"p99 {cell['latency_p99_us']:>8.1f}us"
        )
        baseline = (cell.get("extra") or {}).get("baseline")
        if baseline:
            line += (
                f"  [vs {baseline['structure']}: "
                f"{baseline['ops_per_sec']:,.0f} ops/s, "
                f"{baseline['page_accesses']} accesses]"
            )
        lines.append(line)
    return "\n".join(lines)
