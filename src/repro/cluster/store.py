"""The range-sharded store: N dense files behind one routing facade.

:class:`ShardedDenseFile` splits the keyspace across N shards — each a
:class:`~repro.concurrent.file.ThreadSafeDenseFile` over its own store
— and routes every operation by the shared
:class:`~repro.cluster.sharding.ShardMap`.  Point operations touch
exactly one shard; stream scans fan out across the intersecting shards
in key order and merge (shards own disjoint sorted ranges, so the merge
is a concatenation).

**Partial-failure degradation** is the design center.  Each shard has a
health state (``up`` / ``degraded`` / ``down``), tracked explicitly and
updated by the failure paths:

* a ``down`` shard serves nothing: point operations fail *immediately*
  with :class:`~repro.core.errors.ShardUnavailableError` naming the
  affected key range — no queueing, no hanging;
* a ``degraded`` shard (read-only, e.g. opened with
  ``on_corruption="degrade"``) serves reads but rejects writes the
  same way (``mode="degraded"``);
* every *other* shard keeps serving reads and writes — one failed
  shard never takes the cluster down;
* stream scans that cross a ``down`` shard do not block and do not
  pretend: they return a :class:`ScanResult` with ``partial=True`` and
  the exact unavailable key ranges, so the caller knows which slice of
  the answer is missing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..concurrent.deadline import Deadline
from ..concurrent.file import ThreadSafeDenseFile
from ..core.dense_file import DenseSequentialFile
from ..core.errors import (
    ConfigurationError,
    ReadOnlyError,
    ShardUnavailableError,
)
from ..core.params import ceil_log2
from ..records import Record
from ..storage.backend import MemoryStore, PageStore
from .sharding import ShardMap

#: Health states a shard can be in.
UP, DEGRADED, DOWN = "up", "degraded", "down"


@dataclass(frozen=True)
class ScanResult:
    """A stream-scan answer that is honest about holes.

    ``records`` is everything the available shards returned, in key
    order.  When a ``down`` shard intersected the request, ``partial``
    is ``True`` and ``unavailable`` lists its ``(lo, hi)`` key ranges —
    an explicit marker, never a silent gap.
    """

    records: Tuple[Record, ...]
    partial: bool = False
    unavailable: Tuple[Tuple[Any, Any], ...] = ()

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def complete(self) -> bool:
        """Whether every intersecting shard answered."""
        return not self.partial


@dataclass
class ShardHealth:
    """One shard's health record (state + transition counters)."""

    shard_id: int
    state: str = UP
    downs: int = 0
    degrades: int = 0
    revives: int = 0
    rejected_writes: int = 0
    rejected_reads: int = 0

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready health record for ``health`` RPCs and reports."""
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "downs": self.downs,
            "degrades": self.degrades,
            "revives": self.revives,
            "rejected_writes": self.rejected_writes,
            "rejected_reads": self.rejected_reads,
        }


def _shard_geometry(capacity_hint: int) -> Tuple[int, int, int]:
    """An (M, d, D) per shard that holds ``capacity_hint`` keys with slack."""
    d = 8
    num_pages = max(16, -(-capacity_hint // d) * 2)
    D = d + 3 * ceil_log2(num_pages) + 4
    return num_pages, d, D


class ShardedDenseFile:
    """Route one logical dense file across N range shards.

    Parameters
    ----------
    shards:
        One :class:`~repro.concurrent.file.ThreadSafeDenseFile` (or any
        object with its query/update surface) per shard, indexed by
        shard id.
    shard_map:
        The routing table; must have exactly ``len(shards)`` ranges.
    default_timeout:
        Budget applied to operations that pass neither ``timeout=`` nor
        ``deadline=`` (``None`` = wait forever).
    """

    def __init__(
        self,
        shards: List[Any],
        shard_map: ShardMap,
        default_timeout: Optional[float] = None,
    ):
        if shard_map.num_shards != len(shards):
            raise ConfigurationError(
                f"{len(shards)} shards but the map routes "
                f"{shard_map.num_shards} ranges"
            )
        self.shards = list(shards)
        self.shard_map = shard_map
        self.default_timeout = default_timeout
        self._mutex = threading.Lock()
        self._health = [ShardHealth(shard_id) for shard_id in range(len(shards))]

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        num_shards: int,
        key_space: int,
        capacity_hint: int = 2048,
        store_factory: Optional[Callable[[int, int], PageStore]] = None,
        default_timeout: Optional[float] = None,
        shed_load: bool = False,
        max_in_flight: Optional[int] = None,
    ) -> "ShardedDenseFile":
        """A memory-backed cluster: N shards over ``range(key_space)``.

        ``store_factory(shard_id, num_pages)`` overrides the backing
        store per shard (the chaos harness injects fault stacks here).
        ``capacity_hint`` sizes each shard for that many live records.
        """
        shard_map = ShardMap.uniform(num_shards, key_space)
        num_pages, d, D = _shard_geometry(capacity_hint)
        shards: List[ThreadSafeDenseFile] = []
        for shard_id in range(num_shards):
            store = (
                store_factory(shard_id, num_pages)
                if store_factory is not None
                else MemoryStore(num_pages)
            )
            dense = DenseSequentialFile(num_pages, d, D, store=store)
            shards.append(
                ThreadSafeDenseFile(
                    dense,
                    default_timeout=default_timeout,
                    shed_load=shed_load,
                    max_in_flight=max_in_flight,
                )
            )
        return cls(shards, shard_map, default_timeout=default_timeout)

    # -- health ---------------------------------------------------------

    def health(self) -> List[Dict[str, object]]:
        """Every shard's health record, in shard-id order."""
        with self._mutex:
            return [record.snapshot() for record in self._health]

    def state_of(self, shard_id: int) -> str:
        """The health state of one shard."""
        with self._mutex:
            return self._health[shard_id].state

    def mark_down(self, shard_id: int) -> None:
        """Take a shard out of service (crash, partition, kill)."""
        with self._mutex:
            record = self._health[shard_id]
            if record.state != DOWN:
                record.state = DOWN
                record.downs += 1

    def mark_degraded(self, shard_id: int) -> None:
        """Degrade a shard to read-only service."""
        with self._mutex:
            record = self._health[shard_id]
            if record.state != DEGRADED:
                record.state = DEGRADED
                record.degrades += 1

    def revive(self, shard_id: int) -> None:
        """Return a shard to full service."""
        with self._mutex:
            record = self._health[shard_id]
            if record.state != UP:
                record.state = UP
                record.revives += 1

    def _refuse(self, shard_id: int, write: bool) -> ShardUnavailableError:
        with self._mutex:
            record = self._health[shard_id]
            if write:
                record.rejected_writes += 1
            else:
                record.rejected_reads += 1
            mode = record.state
        owned = self.shard_map.range_of(shard_id)
        kind = "write" if write else "read"
        return ShardUnavailableError(
            f"{kind} refused: {owned.describe()} is {mode} "
            "(other key ranges are still served)",
            shard_ids=(shard_id,),
            key_ranges=((owned.lo, owned.hi),),
            mode=mode,
        )

    def _check_route(self, shard_id: int, write: bool) -> Any:
        """The shard for an operation, or raise if it cannot serve it."""
        state = self.state_of(shard_id)
        if state == DOWN or (write and state == DEGRADED):
            raise self._refuse(shard_id, write)
        return self.shards[shard_id]

    # -- point operations (exactly one shard) ---------------------------

    def insert(
        self,
        key: Any,
        value: Any = None,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Insert a record on the owning shard (or refuse immediately)."""
        shard_id = self.shard_map.shard_for(key)
        shard = self._check_route(shard_id, write=True)
        try:
            shard.insert(key, value, timeout=timeout, deadline=deadline)
        except ReadOnlyError as error:
            self.mark_degraded(shard_id)
            raise self._refuse(shard_id, write=True) from error

    def delete(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Record:
        """Delete and return the record on the owning shard."""
        shard_id = self.shard_map.shard_for(key)
        shard = self._check_route(shard_id, write=True)
        try:
            return shard.delete(key, timeout=timeout, deadline=deadline)
        except ReadOnlyError as error:
            self.mark_degraded(shard_id)
            raise self._refuse(shard_id, write=True) from error

    def search(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Point lookup on the owning shard (down shards refuse)."""
        shard_id = self.shard_map.shard_for(key)
        shard = self._check_route(shard_id, write=False)
        return shard.search(key, timeout=timeout, deadline=deadline)

    # -- fan-out operations (one or more shards) ------------------------

    def scan(
        self,
        start_key: Any,
        count: int,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ScanResult:
        """Up to ``count`` records from ``start_key``, across shards.

        Walks the shards in key order from the owner of ``start_key``;
        a ``down`` shard contributes an unavailable range (and flips
        ``partial``) instead of blocking the whole scan.
        """
        budget = Deadline.resolve(timeout, deadline, self.default_timeout)
        collected: List[Record] = []
        holes: List[Tuple[Any, Any]] = []
        shard_id = self.shard_map.shard_for(start_key)
        while shard_id < self.shard_map.num_shards and len(collected) < count:
            if self.state_of(shard_id) == DOWN:
                owned = self.shard_map.range_of(shard_id)
                holes.append((owned.lo, owned.hi))
                with self._mutex:
                    self._health[shard_id].rejected_reads += 1
            else:
                collected.extend(
                    self.shards[shard_id].scan(
                        start_key, count - len(collected), deadline=budget
                    )
                )
            shard_id += 1
        return ScanResult(
            records=tuple(collected[:count]),
            partial=bool(holes),
            unavailable=tuple(holes),
        )

    def range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ScanResult:
        """All records with ``lo_key <= key <= hi_key``, across shards."""
        budget = Deadline.resolve(timeout, deadline, self.default_timeout)
        collected: List[Record] = []
        holes: List[Tuple[Any, Any]] = []
        for shard_id in self.shard_map.shards_for_range(lo_key, hi_key):
            if self.state_of(shard_id) == DOWN:
                owned = self.shard_map.range_of(shard_id)
                holes.append((owned.lo, owned.hi))
                with self._mutex:
                    self._health[shard_id].rejected_reads += 1
            else:
                collected.extend(
                    self.shards[shard_id].range(lo_key, hi_key, deadline=budget)
                )
        return ScanResult(
            records=tuple(collected),
            partial=bool(holes),
            unavailable=tuple(holes),
        )

    def count_range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Records in ``[lo_key, hi_key]``; refuses if a shard is down.

        A count has no honest partial answer, so a ``down`` shard in
        the range raises :class:`ShardUnavailableError` immediately.
        """
        budget = Deadline.resolve(timeout, deadline, self.default_timeout)
        shard_ids = self.shard_map.shards_for_range(lo_key, hi_key)
        down = [sid for sid in shard_ids if self.state_of(sid) == DOWN]
        if down:
            raise ShardUnavailableError(
                f"count refused: shards {down} are down",
                shard_ids=tuple(down),
                key_ranges=self.shard_map.key_ranges(down),
                mode=DOWN,
            )
        return sum(
            self.shards[sid].count_range(lo_key, hi_key, deadline=budget)
            for sid in shard_ids
        )

    def __len__(self) -> int:
        """Live records across every shard that is not down."""
        return sum(
            len(self.shards[sid])
            for sid in range(self.shard_map.num_shards)
            if self.state_of(sid) != DOWN
        )

    # -- lifecycle and introspection ------------------------------------

    def validate(self) -> None:
        """Validate every available shard's structural invariants."""
        for shard_id, shard in enumerate(self.shards):
            if self.state_of(shard_id) != DOWN:
                shard.validate()

    def close(self) -> None:
        """Close every shard (down shards included; close is idempotent)."""
        for shard in self.shards:
            shard.close()

    def stats(self) -> Dict[str, object]:
        """Cluster-wide stats: routing table, health, per-shard sizes."""
        sizes = [
            len(self.shards[sid]) if self.state_of(sid) != DOWN else None
            for sid in range(self.shard_map.num_shards)
        ]
        return {
            "num_shards": self.shard_map.num_shards,
            "ranges": [r.describe() for r in self.shard_map.ranges()],
            "health": self.health(),
            "records_per_shard": sizes,
            "records_total": sum(size or 0 for size in sizes),
        }


# Re-exported convenience: the unavailable states (tests and the chaos
# harness compare against these instead of string literals).
STATES = (UP, DEGRADED, DOWN)
