"""The cluster server: framed requests in, typed outcomes out.

:class:`ClusterServer` owns a :class:`~repro.cluster.store.ShardedDenseFile`
and exposes it through one bytes-in/bytes-out dispatcher,
:meth:`ClusterServer.handle_frame`.  The TCP accept loop and the
in-process :class:`~repro.cluster.transport.LocalChannel` both call
that same function, so the chaos harness exercises byte-for-byte the
production request path.

Three properties the dispatcher guarantees:

**At-most-once writes.**  Mutating requests carry an idempotency
``token``.  The first time a token reaches a *definite* outcome —
success or a domain error like ``DuplicateKeyError`` — the outcome is
recorded in the :class:`IdempotencyTable`; a retried request with the
same token replays the recorded outcome instead of re-executing.
Outcomes that mean *not applied* (timeout waiting for admission,
shard down, overload shed) are deliberately **not** recorded, so a
retry after the fault clears can still succeed.

**Deadline propagation.**  Requests carry the client's remaining
``budget`` in seconds; the server converts it to a
:class:`~repro.concurrent.deadline.Deadline` and threads it through
the store, so work the caller has already abandoned is cut short at
the next blocking point instead of holding locks for a dead request.

**Typed failure.**  Every :class:`~repro.core.errors.ReproError`
serializes to an error response carrying its class name and payload
(affected key ranges, queue depth, retry-after), which the client
reconstructs into the same exception type — remote failures read
exactly like local ones.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..concurrent.deadline import Deadline
from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    OperationTimeout,
    OverloadError,
    ReproError,
    ShardUnavailableError,
    WireProtocolError,
)
from .store import ShardedDenseFile
from .wire import decode_bytes, encode_frame, error_response, ok_response

#: Error classes whose outcome means the write was NOT applied — these
#: are never recorded against an idempotency token, so a retry after
#: the fault clears can still execute.
NOT_APPLIED_ERRORS = (
    "OperationTimeout",
    "OverloadError",
    "ShardUnavailableError",
    "CircuitOpenError",
    "TransientNetworkError",
    "WireProtocolError",
)

#: Operations that mutate state (idempotency tokens apply to these).
MUTATING_OPS = frozenset({"insert", "delete"})


class IdempotencyTable:
    """Bounded token -> outcome map proving at-most-once application.

    Keeps the most recent ``capacity`` definite outcomes in insertion
    order; a retried token replays its recorded outcome.  The table is
    also the chaos harness's ground truth: after a run, a token absent
    from the table is *proof* the write was never applied.

    At-most-once needs more than a lookup: a retried request can race a
    *still-executing* first attempt (the client reconnected while the
    old connection's worker is mid-write), and a check-then-execute
    window would double-execute.  :meth:`reserve` therefore claims the
    token atomically **before** dispatch — the first attempt becomes
    the owner, duplicates wait on its completion event and then replay
    the recorded outcome — and :meth:`finish` releases the claim.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ConfigurationError("idempotency capacity must be positive")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._outcomes: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._pending: Dict[str, threading.Event] = {}
        self.hits = 0
        self.evictions = 0
        self.waits = 0

    def get(self, token: str) -> Optional[Dict[str, Any]]:
        """The recorded outcome for ``token``, or ``None`` if unseen."""
        with self._mutex:
            outcome = self._outcomes.get(token)
            if outcome is not None:
                self.hits += 1
            return outcome

    def peek(self, token: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without counting a dedup hit."""
        with self._mutex:
            return self._outcomes.get(token)

    def put(self, token: str, outcome: Dict[str, Any]) -> None:
        """Record a definite outcome, evicting the oldest past capacity."""
        with self._mutex:
            self._record_locked(token, outcome)

    def _record_locked(self, token: str, outcome: Dict[str, Any]) -> None:
        self._outcomes[token] = outcome
        while len(self._outcomes) > self.capacity:
            self._outcomes.popitem(last=False)
            self.evictions += 1

    def reserve(self, token: str) -> Tuple[str, Any]:
        """Atomically claim ``token`` for execution.

        Returns one of three claims:

        ``("replay", outcome)``
            A definite outcome is already recorded — replay it, do not
            execute.
        ``("wait", event)``
            Another attempt for the same token is executing right now.
            Wait on the :class:`threading.Event`, then call
            :meth:`reserve` again to pick up its outcome.
        ``("execute", None)``
            The caller now owns the token and **must** call
            :meth:`finish` exactly once, however execution ends.
        """
        with self._mutex:
            outcome = self._outcomes.get(token)
            if outcome is not None:
                self.hits += 1
                return ("replay", outcome)
            event = self._pending.get(token)
            if event is not None:
                self.waits += 1
                return ("wait", event)
            self._pending[token] = threading.Event()
            return ("execute", None)

    def finish(self, token: str, outcome: Optional[Dict[str, Any]]) -> None:
        """The owner's epilogue: record and release in one atomic step.

        ``outcome`` is the definite response to replay for later
        retries, or ``None`` when the attempt ended *not applied*
        (admission timeout, shard down, overload shed) and the token
        must stay free for a retry to execute.  Either way the pending
        claim is dropped and any duplicate attempts parked on the
        event are woken.
        """
        with self._mutex:
            if outcome is not None:
                self._record_locked(token, outcome)
            event = self._pending.pop(token, None)
        if event is not None:
            event.set()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._outcomes)


def _record_to_wire(record: Any) -> Optional[List[Any]]:
    return None if record is None else [record.key, record.value]


def _error_detail(error: ReproError) -> Dict[str, Any]:
    """The reconstructable payload for a typed error response."""
    detail: Dict[str, Any] = {}
    if isinstance(error, ShardUnavailableError):
        detail["shard_ids"] = list(error.shard_ids)
        detail["key_ranges"] = [list(pair) for pair in error.key_ranges]
        detail["mode"] = error.mode
    elif isinstance(error, CircuitOpenError):
        detail["shard_id"] = error.shard_id
        detail["retry_after"] = error.retry_after
    elif isinstance(error, OverloadError):
        detail["queue_depth"] = error.queue_depth
        detail["in_flight"] = error.in_flight
    return detail


class ClusterServer:
    """Serve a sharded dense file over frames (TCP or in-process)."""

    def __init__(
        self,
        store: ShardedDenseFile,
        idempotency_capacity: int = 8192,
        max_budget: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.store = store
        self.tokens = IdempotencyTable(idempotency_capacity)
        self.max_budget = max_budget
        self._clock = clock
        self._mutex = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._stopping = threading.Event()
        # Request counters (reads are approximate; writes under GIL).
        self.requests = 0
        self.errors = 0
        self.dedup_replays = 0

    # -- the dispatcher (shared by TCP and LocalChannel) ----------------

    def handle_frame(self, data: bytes) -> bytes:
        """One framed request in, one framed response out."""
        try:
            body = decode_bytes(data)
        except WireProtocolError as error:
            # No correlation id is recoverable from a mangled frame.
            return encode_frame(
                error_response("?", "WireProtocolError", str(error))
            )
        return encode_frame(self.handle_body(body))

    def handle_body(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request body to the store.

        Whatever shape the request is in, the caller gets a response
        frame back: a malformed body (missing args, non-numeric
        budget) earns a typed ``WireProtocolError`` answer instead of
        an escaped exception that would kill the connection thread and
        leave the client retrying into silence.
        """
        self.requests += 1
        request_id = str(body.get("id", "?"))
        try:
            op = body.get("op")
            args = body.get("args") or {}
            if not isinstance(args, dict):
                raise WireProtocolError(
                    f"args must be an object, got {type(args).__name__}"
                )
            token = body.get("token")
            deadline = self._budget_deadline(body.get("budget"))
            if token is not None and op in MUTATING_OPS:
                return self._apply_once(
                    request_id, str(token), op, args, deadline
                )
            return self._respond(request_id, op, args, deadline)
        except ReproError as error:
            # Typed refusals raised outside _respond's own accounting:
            # malformed budget/args, a duplicate-token wait that hit
            # the deadline.  All of them mean "not applied".
            self.errors += 1
            return error_response(
                request_id,
                type(error).__name__,
                str(error),
                detail=_error_detail(error),
            )
        except Exception as error:  # lint: allow[errors]
            # A request whose shape we did not anticipate must still
            # get a typed answer rather than a dead connection.
            self.errors += 1
            return error_response(
                request_id,
                "WireProtocolError",
                f"malformed request: {type(error).__name__}: {error}",
            )

    def _budget_deadline(self, budget: Any) -> Optional[Deadline]:
        """The request's ``budget`` field as a server-side deadline."""
        if budget is not None and not isinstance(budget, (int, float)):
            raise WireProtocolError(
                f"budget must be a number, got {type(budget).__name__}"
            )
        effective = budget
        if self.max_budget is not None:
            effective = (
                self.max_budget if budget is None
                else min(budget, self.max_budget)
            )
        if effective is None:
            return None
        # A non-positive budget is a request that expired in transit:
        # an already-spent deadline turns it into a typed timeout at
        # the first blocking point instead of a UsageError.
        return Deadline.after(max(0.0, effective), clock=self._clock)

    def _respond(
        self,
        request_id: str,
        op: Any,
        args: Dict[str, Any],
        deadline: Optional[Deadline],
    ) -> Dict[str, Any]:
        """Execute ``op`` and shape the outcome as a response body."""
        try:
            result = self._dispatch(op, args, deadline)
        except ReproError as error:
            self.errors += 1
            return error_response(
                request_id,
                type(error).__name__,
                str(error),
                detail=_error_detail(error),
            )
        return ok_response(request_id, result)

    def _apply_once(
        self,
        request_id: str,
        token: str,
        op: Any,
        args: Dict[str, Any],
        deadline: Optional[Deadline],
    ) -> Dict[str, Any]:
        """Execute a mutating op at most once per idempotency token.

        The token is claimed atomically *before* dispatch, so a retried
        request that races a still-executing first attempt (the client
        reconnected while the old connection's worker is mid-write)
        waits for that attempt's outcome and replays it instead of
        re-executing — a double-execute would, e.g., turn an applied
        delete into a spurious ``RecordNotFoundError`` recorded as the
        token's definite outcome.
        """
        while True:
            claim, payload = self.tokens.reserve(token)
            if claim == "replay":
                # Replay the definite outcome under the NEW correlation
                # id: the retry is a different request for the same op.
                self.dedup_replays += 1
                replay = dict(payload)
                replay["id"] = request_id
                replay["replayed"] = True
                return replay
            if claim == "wait":
                if not payload.wait(
                    None if deadline is None else deadline.wait_budget()
                ):
                    # The first attempt is still executing at our
                    # deadline.  Its outcome (applied or not) remains
                    # owned by that attempt; this retry only times out.
                    raise OperationTimeout(
                        f"duplicate of token {token!r} still executing "
                        f"when the retry's budget expired"
                    )
                continue
            # claim == "execute": this attempt owns the token and must
            # release it on every path out, or duplicates wait forever.
            definite: Optional[Dict[str, Any]] = None
            try:
                response = self._respond(request_id, op, args, deadline)
                error_name = response.get("error")
                if error_name is None or error_name not in NOT_APPLIED_ERRORS:
                    # Success or a domain error: the op executed, so
                    # this is the outcome every retry must see.
                    definite = response
                return response
            finally:
                self.tokens.finish(token, definite)

    def _dispatch(
        self, op: Any, args: Dict[str, Any], deadline: Optional[Deadline]
    ) -> Any:
        store = self.store
        if op == "insert":
            store.insert(args["key"], args.get("value"), deadline=deadline)
            return None
        if op == "delete":
            return _record_to_wire(store.delete(args["key"], deadline=deadline))
        if op == "search":
            return _record_to_wire(store.search(args["key"], deadline=deadline))
        if op == "scan":
            scan = store.scan(args["key"], args["count"], deadline=deadline)
            return {
                "records": [_record_to_wire(r) for r in scan.records],
                "partial": scan.partial,
                "unavailable": [list(pair) for pair in scan.unavailable],
            }
        if op == "range":
            scan = store.range(args["lo"], args["hi"], deadline=deadline)
            return {
                "records": [_record_to_wire(r) for r in scan.records],
                "partial": scan.partial,
                "unavailable": [list(pair) for pair in scan.unavailable],
            }
        if op == "count":
            return store.count_range(args["lo"], args["hi"], deadline=deadline)
        if op == "len":
            return len(store)
        if op == "hello":
            return {
                "shard_map": store.shard_map.to_wire(),
                "num_shards": store.shard_map.num_shards,
                "health": store.health(),
            }
        if op == "health":
            return store.health()
        if op == "stats":
            stats = dict(store.stats())
            stats["requests"] = self.requests
            stats["errors"] = self.errors
            stats["dedup_replays"] = self.dedup_replays
            stats["tokens_recorded"] = len(self.tokens)
            return stats
        if op == "ping":
            return "pong"
        if op == "token":
            # Ground truth for the chaos trichotomy: was this write
            # ever applied?  Absent => proven not applied.
            return self.tokens.peek(str(args["token"]))
        if op == "kill_shard":
            store.mark_down(int(args["shard_id"]))
            return {"state": store.state_of(int(args["shard_id"]))}
        if op == "degrade_shard":
            store.mark_degraded(int(args["shard_id"]))
            return {"state": store.state_of(int(args["shard_id"]))}
        if op == "revive_shard":
            store.revive(int(args["shard_id"]))
            return {"state": store.state_of(int(args["shard_id"]))}
        raise WireProtocolError(f"unknown operation {op!r}")

    # -- TCP serving ----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; raises if not serving."""
        with self._mutex:
            if self._listener is None:
                raise ConfigurationError("server is not listening")
            host, port = self._listener.getsockname()[:2]
            return host, port

    def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and serve on a background thread; returns the address."""
        with self._mutex:
            if self._listener is not None:
                raise ConfigurationError("server is already listening")
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(64)
            # A short accept timeout keeps the loop responsive to stop().
            listener.settimeout(0.2)
            self._listener = listener
            self._stopping.clear()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="cluster-accept", daemon=True
            )
            self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            with self._mutex:
                listener = self._listener
            if listener is None:
                return
            try:
                conn, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during stop()
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="cluster-conn",
                daemon=True,
            )
            with self._mutex:
                self._workers = [t for t in self._workers if t.is_alive()]
                self._workers.append(worker)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        from .wire import HEADER, MAGIC, MAX_FRAME

        def recv_exact(count: int) -> bytes:
            chunks = []
            remaining = count
            while remaining > 0:
                chunk = conn.recv(min(remaining, 65536))
                if not chunk:
                    return b"".join(chunks)  # short read = peer left
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        try:
            conn.settimeout(30.0)
            while not self._stopping.is_set():
                header = recv_exact(HEADER.size)
                if len(header) < HEADER.size:
                    return  # clean (or mid-header) disconnect
                magic, length, _crc = HEADER.unpack(header)
                if magic != MAGIC or length > MAX_FRAME:
                    return  # unrecoverable stream; drop the connection
                payload = recv_exact(length)
                if len(payload) < length:
                    return
                conn.sendall(self.handle_frame(header + payload))
        except OSError:
            return  # reset/timeout: connection-scoped, server keeps serving
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting, close the listener, join worker threads."""
        self._stopping.set()
        with self._mutex:
            listener, self._listener = self._listener, None
            accept_thread, self._accept_thread = self._accept_thread, None
            workers, self._workers = list(self._workers), []
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        budget = Deadline.after(timeout)
        if accept_thread is not None:
            accept_thread.join(timeout=budget.wait_budget())
        for worker in workers:
            worker.join(timeout=budget.wait_budget())
