"""Key-range shard maps: who owns which slice of the keyspace.

A cluster splits one logical dense file into N contiguous key ranges,
each served by its own :class:`~repro.concurrent.file.ThreadSafeDenseFile`
over its own store.  The :class:`ShardMap` is the routing table both
sides share: the server routes incoming operations with it, and the
client downloads it in the ``hello`` handshake so it can keep one
circuit breaker per shard and name the affected ranges when a shard is
unavailable.

Ranges are half-open ``[lo, hi)``; the first shard additionally owns
everything below its ``lo`` and the last everything at or above its
``hi``, so *every* key routes somewhere and a routing miss is
impossible by construction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class ShardRange:
    """One shard's slice of the keyspace: ``[lo, hi)``."""

    shard_id: int
    lo: Any
    hi: Any

    def describe(self) -> str:
        """Compact rendering for error messages and ``repro info``."""
        return f"shard {self.shard_id} [{self.lo}, {self.hi})"


class ShardMap:
    """Routes keys and key ranges to shard ids.

    Built from ``cuts`` — the N-1 interior boundary keys, strictly
    increasing — plus the overall ``[lo, hi)`` envelope used only for
    describing the outermost ranges.  Routing is a ``bisect`` over the
    cuts: O(log N) per key, no per-shard scan.
    """

    def __init__(self, cuts: Sequence[Any], lo: Any = None, hi: Any = None):
        self.cuts: List[Any] = list(cuts)
        for left, right in zip(self.cuts, self.cuts[1:]):
            if not left < right:
                raise ConfigurationError(
                    f"shard cuts must be strictly increasing, got "
                    f"{left!r} before {right!r}"
                )
        self.lo = lo
        self.hi = hi

    # -- construction ---------------------------------------------------

    @classmethod
    def uniform(cls, num_shards: int, key_space: int) -> "ShardMap":
        """Split ``range(key_space)`` into ``num_shards`` equal ranges."""
        if num_shards < 1:
            raise ConfigurationError("a cluster needs at least one shard")
        if key_space < num_shards:
            raise ConfigurationError(
                f"key space {key_space} cannot feed {num_shards} shards"
            )
        step = key_space / num_shards
        cuts = [int(step * index) for index in range(1, num_shards)]
        return cls(cuts, lo=0, hi=key_space)

    # -- routing --------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many shards this map routes across."""
        return len(self.cuts) + 1

    def shard_for(self, key: Any) -> int:
        """The shard id owning ``key``."""
        return bisect.bisect_right(self.cuts, key)

    def shards_for_range(self, lo_key: Any, hi_key: Any) -> List[int]:
        """Every shard id intersecting ``[lo_key, hi_key]`` in key order."""
        first = self.shard_for(lo_key)
        last = self.shard_for(hi_key)
        return list(range(first, last + 1))

    def range_of(self, shard_id: int) -> ShardRange:
        """The ``[lo, hi)`` slice shard ``shard_id`` owns."""
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard {shard_id} not in a {self.num_shards}-shard map"
            )
        lo = self.lo if shard_id == 0 else self.cuts[shard_id - 1]
        hi = self.hi if shard_id == self.num_shards - 1 else self.cuts[shard_id]
        return ShardRange(shard_id, lo, hi)

    def ranges(self) -> List[ShardRange]:
        """Every shard's slice, in shard-id order."""
        return [self.range_of(shard_id) for shard_id in range(self.num_shards)]

    # -- wire round trip ------------------------------------------------

    def to_wire(self) -> dict:
        """JSON-ready description shipped in the ``hello`` handshake."""
        return {"cuts": self.cuts, "lo": self.lo, "hi": self.hi}

    @classmethod
    def from_wire(cls, payload: dict) -> "ShardMap":
        """Rebuild a map the server described over the wire."""
        return cls(payload["cuts"], lo=payload.get("lo"), hi=payload.get("hi"))

    def key_ranges(self, shard_ids: Sequence[int]) -> Tuple[Tuple[Any, Any], ...]:
        """``(lo, hi)`` tuples for ``shard_ids`` (for error payloads)."""
        return tuple(
            (self.range_of(shard_id).lo, self.range_of(shard_id).hi)
            for shard_id in shard_ids
        )
