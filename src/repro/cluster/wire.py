"""Length-prefixed wire protocol for the cluster front-end.

One frame = a fixed header + a JSON body::

    +-------+----------+---------+------------------+
    | magic | body len | CRC-32  | JSON body        |
    | 2 B   | 4 B BE   | 4 B BE  | body-len bytes   |
    +-------+----------+---------+------------------+

The header makes every network failure mode *detectable* instead of
ambiguous: a truncated stream fails the exact-read, a corrupted or
reordered stream fails the magic/CRC check, and an oversized length
field is refused before any allocation — all surfacing as
:class:`~repro.core.errors.WireProtocolError` so the client can drop
the connection and retry on a fresh one.

Requests and responses both carry a correlation ``id``.  The client
checks the echoed id on every response; a mismatch (a stale or
reordered response after chaos) is a :class:`WireProtocolError`, never
a silently misattributed result.  Mutating requests additionally carry
an idempotency ``token`` the server deduplicates on, so a retried
write is applied at most once no matter how the network mangled the
first attempt.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Callable, Dict, Optional

from ..core.errors import WireProtocolError

#: Frame header: magic, body length, CRC-32 of the body.
HEADER = struct.Struct(">2sII")
MAGIC = b"DW"  # dense-file wire
#: Hard cap on one frame's body; refuse before allocating.
MAX_FRAME = 8 * 1024 * 1024


def encode_frame(body: Dict[str, Any]) -> bytes:
    """One message as a framed byte string."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise WireProtocolError(
            f"frame body of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte cap"
        )
    return HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_frame(reader: Callable[[int], bytes]) -> Dict[str, Any]:
    """Read one frame via ``reader(n) -> exactly n bytes``.

    ``reader`` must either return exactly ``n`` bytes or raise; a short
    return means the peer disconnected mid-message and raises
    :class:`WireProtocolError`.
    """
    header = reader(HEADER.size)
    if len(header) < HEADER.size:
        raise WireProtocolError(
            f"connection closed mid-header ({len(header)} of "
            f"{HEADER.size} bytes)"
        )
    magic, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireProtocolError(
            f"frame claims {length} bytes, over the {MAX_FRAME}-byte cap"
        )
    payload = reader(length)
    if len(payload) < length:
        raise WireProtocolError(
            f"connection closed mid-body ({len(payload)} of {length} bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise WireProtocolError("frame body failed its CRC-32 check")
    try:
        body = json.loads(payload.decode("utf-8"))
    except ValueError as error:
        raise WireProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(body, dict):
        raise WireProtocolError("frame body must be a JSON object")
    return body


def decode_bytes(data: bytes) -> Dict[str, Any]:
    """Decode one frame from a complete byte string."""
    view = memoryview(data)
    cursor = 0

    def reader(count: int) -> bytes:
        nonlocal cursor
        chunk = bytes(view[cursor : cursor + count])
        cursor += count
        return chunk

    return decode_frame(reader)


# ----------------------------------------------------------------------
# request / response bodies
# ----------------------------------------------------------------------


def request(
    op: str,
    request_id: str,
    args: Optional[Dict[str, Any]] = None,
    token: Optional[str] = None,
    budget: Optional[float] = None,
) -> Dict[str, Any]:
    """A request body: op name, correlation id, args, token, budget.

    ``budget`` is the *remaining* deadline in seconds at send time —
    the client threads its :class:`~repro.concurrent.deadline.Deadline`
    through every RPC so the server stops working on an operation the
    caller has already given up on.
    """
    body: Dict[str, Any] = {"op": op, "id": request_id, "args": args or {}}
    if token is not None:
        body["token"] = token
    if budget is not None:
        body["budget"] = budget
    return body


def ok_response(request_id: str, result: Any) -> Dict[str, Any]:
    """A success response echoing the correlation id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: str,
    error: str,
    message: str,
    detail: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A typed-error response: exception class name plus its payload."""
    body: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": error,
        "message": message,
    }
    if detail:
        body["detail"] = detail
    return body


def check_correlation(response: Dict[str, Any], request_id: str) -> None:
    """Reject a response that answers some *other* request.

    Chaos (and real networks) can replay or reorder responses; the
    correlation id turns that into a typed, retryable failure instead
    of silently attributing shard A's answer to shard B's question.
    """
    echoed = response.get("id")
    if echoed != request_id:
        raise WireProtocolError(
            f"response correlation mismatch: sent {request_id!r}, "
            f"got {echoed!r} (reordered or stale response)"
        )
