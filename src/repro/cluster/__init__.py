"""Fault-tolerant sharded cluster front-end for the dense file.

This package scales the paper's single dense sequential file out to a
range-sharded cluster and makes the network between client and server a
first-class, testable failure domain:

:mod:`~repro.cluster.sharding`
    Key-range shard maps (who owns which slice of the keyspace).
:mod:`~repro.cluster.store`
    :class:`ShardedDenseFile` — N thread-safe shards behind one router,
    with per-shard health and honest partial results.
:mod:`~repro.cluster.wire`
    The length-prefixed framed protocol (magic + length + CRC-32 +
    JSON) with correlation ids and idempotency tokens.
:mod:`~repro.cluster.transport`
    :class:`SocketChannel` (real TCP) and :class:`LocalChannel`
    (in-process, byte-identical dispatch) client transports.
:mod:`~repro.cluster.server`
    :class:`ClusterServer` — the dispatcher, the idempotency table,
    and the TCP accept loop behind ``repro serve``.
:mod:`~repro.cluster.breaker`
    Per-shard circuit breakers (closed / open / half-open).
:mod:`~repro.cluster.client`
    :class:`ClusterClient` — deadline-aware retries with seeded jitter,
    breaker gating, at-most-once writes via idempotency tokens.
:mod:`~repro.cluster.netfaults`
    Seeded network fault plans and the :class:`ChaosChannel`.
:mod:`~repro.cluster.chaos`
    The chaos harness behind ``repro chaos``: proves every operation
    ends in success, a typed failure within its deadline, or a
    provably-not-applied write.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import ChaosConfig, ChaosReport, run_chaos, run_sweep
from .client import ClusterClient
from .netfaults import ChaosChannel, NetFaultPlan
from .server import ClusterServer, IdempotencyTable
from .sharding import ShardMap, ShardRange
from .store import ScanResult, ShardedDenseFile
from .transport import Channel, LocalChannel, SocketChannel
from .wire import MAX_FRAME, decode_bytes, decode_frame, encode_frame

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "run_sweep",
    "ClusterClient",
    "ChaosChannel",
    "NetFaultPlan",
    "ClusterServer",
    "IdempotencyTable",
    "ShardMap",
    "ShardRange",
    "ScanResult",
    "ShardedDenseFile",
    "Channel",
    "LocalChannel",
    "SocketChannel",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "decode_bytes",
]
