"""Network fault injection at the :class:`Channel` seam.

The storage layer makes disk failure deterministic with
:class:`~repro.storage.faults.FaultPlan`; this module extends the same
idiom one layer up, to the network between a cluster client and the
server.  A :class:`NetFaultPlan` is a seeded, reproducible schedule of
the failure modes a real network exhibits:

``drop``
    The connection dies before the request is delivered — the server
    never sees it (:class:`~repro.core.errors.TransientNetworkError`).
``drop_after``
    The connection dies *after* delivery but before the response comes
    back — the server **did** apply the operation, the client cannot
    know.  This is the fault that makes idempotency tokens necessary.
``delay``
    The exchange succeeds after a seeded extra latency, burning the
    caller's deadline budget.
``duplicate``
    The request is delivered twice (a retransmit); the server's
    idempotency table must make the second delivery a no-op.
``reorder``
    The client receives a *stale* response — the answer to some earlier
    exchange — which must fail the correlation check as
    :class:`~repro.core.errors.WireProtocolError`, never be
    misattributed.
``truncate``
    The response is cut off mid-frame (peer reset mid-message); the
    frame decoder must reject the partial bytes.

All randomness is drawn from one ``random.Random(seed)``, so a chaos
run replays byte-identically from its constructor arguments.  Every
injected fault is counted, and fault kinds whose semantics differ on
the apply/not-applied axis are tracked separately — the chaos
harness's trichotomy audit depends on that distinction.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from ..core.errors import (
    ConfigurationError,
    TransientNetworkError,
)
from .transport import Channel

#: The injectable fault kinds, in the order the plan draws them.
FAULT_KINDS = ("drop", "drop_after", "delay", "duplicate", "reorder", "truncate")


class NetFaultPlan:
    """A deterministic, seeded schedule of network faults.

    Parameters
    ----------
    seed:
        Seeds every Bernoulli draw and delay length.
    drop_rate / drop_after_rate / delay_rate / duplicate_rate /
    reorder_rate / truncate_rate:
        Per-exchange probabilities of each fault kind.  At most one
        fault fires per exchange (the first whose draw succeeds, in
        :data:`FAULT_KINDS` order).
    delay:
        Seconds of injected latency when a ``delay`` fault fires (the
        actual sleep is a seeded fraction of this maximum).
    max_faults:
        Cap on total injected faults (``None`` = unlimited), bounding
        the worst burst a retry policy must survive.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        drop_after_rate: float = 0.0,
        delay_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        truncate_rate: float = 0.0,
        delay: float = 0.01,
        max_faults: Optional[int] = None,
    ):
        rates = {
            "drop": drop_rate,
            "drop_after": drop_after_rate,
            "delay": delay_rate,
            "duplicate": duplicate_rate,
            "reorder": reorder_rate,
            "truncate": truncate_rate,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{kind}_rate must be a probability")
        if delay < 0.0:
            raise ConfigurationError("delay cannot be negative")
        self.seed = seed
        self.rates = rates
        self.delay = delay
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self.exchanges = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    @property
    def total_injected(self) -> int:
        """Total faults injected so far, across every kind."""
        return sum(self.injected.values())

    @property
    def enabled(self) -> bool:
        """Whether this plan can still inject anything."""
        if self.max_faults is not None and self.total_injected >= self.max_faults:
            return False
        return any(rate > 0.0 for rate in self.rates.values())

    def draw(self) -> Tuple[Optional[str], float]:
        """The fault (if any) for the next exchange: ``(kind, delay)``.

        At most one kind fires per exchange.  The PRNG is advanced one
        draw per kind regardless of earlier hits, so the schedule for
        exchange N is independent of which faults actually fired — a
        property the replay determinism of the chaos harness relies on.
        """
        self.exchanges += 1
        chosen: Optional[str] = None
        for kind in FAULT_KINDS:
            hit = self._rng.random() < self.rates[kind]
            if hit and chosen is None:
                chosen = kind
        extra_delay = self._rng.random() * self.delay
        if chosen is None or not self.enabled:
            return None, 0.0
        self.injected[chosen] += 1
        return chosen, extra_delay if chosen == "delay" else 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary for chaos reports."""
        return {
            "seed": self.seed,
            "rates": dict(self.rates),
            "exchanges": self.exchanges,
            "injected": dict(self.injected),
            "total_injected": self.total_injected,
        }


class ChaosChannel:
    """A :class:`Channel` decorator that mangles exchanges per a plan.

    Wraps any inner channel (normally a
    :class:`~repro.cluster.transport.LocalChannel` straight into the
    server dispatcher, so the only nondeterminism is the plan itself)
    and applies at most one injected fault per exchange:

    * ``drop`` raises before the inner channel is touched — the server
      provably never saw the request;
    * ``drop_after`` delivers the request, discards the response, and
      raises — the *ambiguous* fault;
    * ``duplicate`` delivers the request twice and returns the second
      response (both deliveries hit the idempotency table);
    * ``reorder`` returns the previous exchange's response bytes when
      one is cached (correlation ids must catch this);
    * ``truncate`` returns only a prefix of the response frame;
    * ``delay`` sleeps the drawn latency, then exchanges normally.
    """

    def __init__(
        self,
        inner: Channel,
        plan: NetFaultPlan,
        sleep: Callable[[float], None] = lambda _s: None,
    ):
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._previous_response: Optional[bytes] = None

    def request(self, frame: bytes, timeout: Optional[float] = None) -> bytes:
        """One exchange, possibly mangled by the plan."""
        kind, extra_delay = self.plan.draw()
        if kind == "drop":
            raise TransientNetworkError(
                "injected connection drop before delivery "
                f"(#{self.plan.injected['drop']})"
            )
        if kind == "delay":
            self._sleep(extra_delay)
            response = self.inner.request(frame, timeout)
            self._previous_response = response
            return response
        if kind == "drop_after":
            # Deliver, then lose the response: the server applied the
            # op but the client sees a dead connection.
            self.inner.request(frame, timeout)
            raise TransientNetworkError(
                "injected connection drop after delivery "
                f"(#{self.plan.injected['drop_after']})"
            )
        if kind == "duplicate":
            self.inner.request(frame, timeout)
            response = self.inner.request(frame, timeout)
            self._previous_response = response
            return response
        if kind == "reorder" and self._previous_response is not None:
            stale = self._previous_response
            # Still perform the real exchange (the network delivered
            # the request; we just handed the caller the wrong frame).
            self._previous_response = self.inner.request(frame, timeout)
            return stale
        if kind == "truncate":
            response = self.inner.request(frame, timeout)
            self._previous_response = response
            return response[: max(1, len(response) // 2)]
        response = self.inner.request(frame, timeout)
        self._previous_response = response
        return response

    def close(self) -> None:
        """Close the wrapped channel."""
        self.inner.close()
