"""The network chaos harness: prove the trichotomy under faults.

Every client operation issued against the cluster front-end must end in
exactly one of three ways — this is the contract the whole robustness
stack (retries, breakers, idempotency tokens, deadlines) exists to
uphold:

1. **success**, with a result that linearizes against the
   :class:`~repro.concurrent.harness.SequentialOracle`;
2. **typed failure within its deadline** — ``OperationTimeout``,
   ``OverloadError``, ``ShardUnavailableError``, ``CircuitOpenError`` —
   never a hang, never an untyped crash;
3. **provably not applied** — a failed write either shows up in the
   server's idempotency table (it *was* applied; its recorded outcome
   must then linearize) or is absent (proof it never executed).

:func:`run_chaos` drives a deterministic multi-client workload (the
schedule machinery of :mod:`repro.concurrent.harness`) through clients
whose only route to the server is a
:class:`~repro.cluster.netfaults.ChaosChannel` mangling exchanges per a
seeded :class:`~repro.cluster.netfaults.NetFaultPlan`.  After each
batch the harness resolves every ambiguous write against the token
table, then searches for a sequential witness with
:func:`~repro.concurrent.harness.check_batch`.  A mid-run
``kill_shard`` event additionally asserts graceful degradation: the
surviving key ranges must keep serving while the dead shard's range
fails fast with typed errors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..concurrent.deadline import Deadline
from ..concurrent.harness import (
    ClientOp,
    SequentialOracle,
    StressConfig,
    build_schedule,
    build_streams,
    check_batch,
    schedule_digest,
)
from ..concurrent.retry import RetryPolicy
from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    OperationTimeout,
    OverloadError,
    ReproError,
    ShardUnavailableError,
    TransientNetworkError,
    WireProtocolError,
)
from .client import ClusterClient
from .netfaults import ChaosChannel, NetFaultPlan
from .server import ClusterServer
from .store import ShardedDenseFile
from .transport import LocalChannel

#: Outcome tags that mean "not applied, skip in the witness search".
#: ``timeout`` and ``overload`` reuse the harness vocabulary; the rest
#: are cluster-specific refusals, equally definite about non-application.
NOT_APPLIED = (
    "timeout",
    "overload",
    "unavailable",
    "circuit_open",
    "partial",
    "network",
)


@dataclass
class ChaosConfig:
    """Everything that determines one chaos run (and only that)."""

    seed: int = 0
    threads: int = 3
    total_ops: int = 120
    num_shards: int = 4
    key_space: int = 2000
    max_batch: int = 3
    op_timeout: float = 0.5
    batch_timeout: float = 30.0
    grace: float = 2.0
    #: Network fault rates (see :class:`NetFaultPlan`).
    drop_rate: float = 0.0
    drop_after_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    truncate_rate: float = 0.0
    fault_delay: float = 0.005
    #: Retry shape shared by every client (re-seeded per client).
    retry_attempts: int = 6
    retry_base_delay: float = 0.001
    retry_jitter: float = 0.5
    breaker_threshold: int = 4
    breaker_reset: float = 0.05
    #: Kill shard ``kill_shard_id`` before batch ``kill_at`` (None = never),
    #: revive it before batch ``revive_at`` (None = stays down).
    kill_at: Optional[int] = None
    kill_shard_id: int = 0
    revive_at: Optional[int] = None
    insert_ratio: float = 0.6
    read_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError("need at least one chaos client")
        if self.op_timeout <= 0.0:
            raise ConfigurationError("op_timeout must be positive")

    def net_plan(self, thread: int) -> NetFaultPlan:
        """The seeded fault plan for one client thread's channel."""
        return NetFaultPlan(
            seed=(self.seed << 8) ^ (thread + 1),
            drop_rate=self.drop_rate,
            drop_after_rate=self.drop_after_rate,
            delay_rate=self.delay_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            truncate_rate=self.truncate_rate,
            delay=self.fault_delay,
        )

    def retry_policy(self) -> RetryPolicy:
        """The shared retry shape (clients re-seed the jitter)."""
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            max_delay=0.05,
            jitter=self.retry_jitter,
        )


@dataclass
class ChaosReport:
    """What one chaos run observed, audited, and proved."""

    config: ChaosConfig
    digest: str = ""
    batches: int = 0
    ops_issued: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    hangs: int = 0
    crashes: int = 0
    deadline_overruns: int = 0
    ambiguous_writes: int = 0
    resolved_applied: int = 0
    proven_not_applied: int = 0
    dedup_replays: int = 0
    retries: int = 0
    breaker_opens: int = 0
    post_kill_successes: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """The trichotomy held: no hangs, no crashes, no divergence."""
        return (
            not self.violations
            and self.hangs == 0
            and self.crashes == 0
            and self.deadline_overruns == 0
        )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"chaos seed={self.config.seed} threads={self.config.threads} "
            f"ops={self.ops_issued} batches={self.batches} "
            f"elapsed={self.elapsed:.2f}s",
            f"  outcomes: {dict(sorted(self.outcomes.items()))}",
            f"  faults injected: "
            f"{ {k: v for k, v in sorted(self.faults.items()) if v} }",
            f"  ambiguous writes: {self.ambiguous_writes} "
            f"(applied={self.resolved_applied}, "
            f"proven-not-applied={self.proven_not_applied})",
            f"  retries={self.retries} dedup_replays={self.dedup_replays} "
            f"breaker_opens={self.breaker_opens}",
        ]
        if self.config.kill_at is not None:
            lines.append(
                f"  kill shard {self.config.kill_shard_id} at batch "
                f"{self.config.kill_at}: post-kill successes on surviving "
                f"ranges = {self.post_kill_successes}"
            )
        if self.ok:
            lines.append("  TRICHOTOMY HELD (no hangs, no silent loss)")
        else:
            lines.append(
                f"  VIOLATIONS ({len(self.violations)} found, hangs="
                f"{self.hangs}, crashes={self.crashes}, "
                f"overruns={self.deadline_overruns}):"
            )
            lines.extend(f"    - {v}" for v in self.violations[:10])
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload for ``tools/chaos.py`` and CI artifacts."""
        return {
            "seed": self.config.seed,
            "digest": self.digest,
            "ok": self.ok,
            "batches": self.batches,
            "ops_issued": self.ops_issued,
            "outcomes": dict(sorted(self.outcomes.items())),
            "faults": dict(sorted(self.faults.items())),
            "violations": list(self.violations),
            "hangs": self.hangs,
            "crashes": self.crashes,
            "deadline_overruns": self.deadline_overruns,
            "ambiguous_writes": self.ambiguous_writes,
            "resolved_applied": self.resolved_applied,
            "proven_not_applied": self.proven_not_applied,
            "dedup_replays": self.dedup_replays,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "post_kill_successes": self.post_kill_successes,
            "elapsed": round(self.elapsed, 3),
        }


@dataclass
class _Issued:
    """One executed operation: what we asked, what we saw, the token."""

    op: ClientOp
    outcome: Tuple
    token: Optional[str] = None
    elapsed: float = 0.0
    shard_id: int = -1


def _run_op(client: ClusterClient, op: ClientOp, timeout: float) -> _Issued:
    """Issue one operation; encode the outcome in oracle vocabulary."""
    # Generate the token up front: if the call raises, the token is
    # what lets the audit prove whether the write was applied anyway.
    token: Optional[str] = None
    if op.kind in ("insert", "delete"):
        token = client.new_token()
    start = time.monotonic()
    try:
        if op.kind == "insert":
            client.insert_with_token(op.key, token=token, timeout=timeout)
            outcome: Tuple = ("ok",)
        elif op.kind == "delete":
            client.delete_with_token(op.key, token=token, timeout=timeout)
            outcome = ("ok",)
        elif op.kind == "search":
            record = client.search(op.key, timeout=timeout)
            outcome = ("hit",) if record is not None else ("miss",)
        elif op.kind == "scan":
            scan = client.scan(op.key, op.arg, timeout=timeout)
            if scan.partial:
                outcome = ("partial",)
            else:
                outcome = ("scan", tuple(record.key for record in scan.records))
        elif op.kind == "count":
            total = client.count_range(op.key, op.key + op.arg, timeout=timeout)
            outcome = ("count", total)
        else:
            raise ConfigurationError(f"unknown chaos op kind {op.kind!r}")
    except OperationTimeout:  # lint: allow[errors] -- timeout is a recorded outcome here
        outcome = ("timeout",)
    except OverloadError:
        outcome = ("overload",)
    except ShardUnavailableError:
        outcome = ("unavailable",)
    except CircuitOpenError:
        outcome = ("circuit_open",)
    except (TransientNetworkError, WireProtocolError):
        # The retry policy gave up mid-fault: a typed failure whose
        # application status the token audit resolves below.
        outcome = ("network",)
    except ReproError as error:
        outcome = ("error", type(error).__name__)
    except Exception as error:  # wreckage is a finding, not a crash of the harness  # lint: allow[errors]
        outcome = ("crash", f"{type(error).__name__}: {error}")
    return _Issued(
        op=op,
        outcome=outcome,
        token=token,
        elapsed=time.monotonic() - start,
    )


def _resolve_ambiguous(
    issued: _Issued, server: ClusterServer, report: ChaosReport
) -> _Issued:
    """Resolve a failed write against the idempotency table.

    A write whose outcome is in :data:`NOT_APPLIED` *might* still have
    been applied (the ``drop_after`` fault).  The server's token table
    is ground truth: a recorded outcome means it executed — substitute
    that outcome so the witness search accounts for it; an absent token
    is proof of non-application — keep the skipped outcome.
    """
    if issued.token is None or issued.outcome[0] not in NOT_APPLIED:
        return issued
    report.ambiguous_writes += 1
    recorded = server.tokens.peek(issued.token)
    if recorded is None:
        report.proven_not_applied += 1
        return issued
    report.resolved_applied += 1
    if recorded.get("ok"):
        resolved: Tuple = ("ok",)
    else:
        resolved = ("error", str(recorded.get("error", "ReproError")))
    return _Issued(
        op=issued.op,
        outcome=resolved,
        token=issued.token,
        elapsed=issued.elapsed,
        shard_id=issued.shard_id,
    )


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """One deterministic chaos run; returns the audited report."""
    started = time.monotonic()
    report = ChaosReport(config=config)

    store = ShardedDenseFile.build(
        num_shards=config.num_shards,
        key_space=config.key_space,
        capacity_hint=max(2048, config.total_ops * 2),
    )
    server = ClusterServer(store)
    clients: List[ClusterClient] = []
    for tid in range(config.threads):
        channel = ChaosChannel(
            LocalChannel(server.handle_frame),
            config.net_plan(tid),
            sleep=time.sleep,
        )
        clients.append(
            ClusterClient(
                channel,
                client_id=f"chaos-{config.seed}-t{tid}",
                retry_policy=config.retry_policy(),
                client_seed=(config.seed << 4) ^ tid,
                default_timeout=config.op_timeout,
                breaker_threshold=config.breaker_threshold,
                breaker_reset=config.breaker_reset,
            )
        )
        clients[-1].prime(store.shard_map)

    stress = StressConfig(
        threads=config.threads,
        total_ops=config.total_ops,
        seed=config.seed,
        max_batch=config.max_batch,
        key_space=config.key_space,
        insert_ratio=config.insert_ratio,
        read_fraction=config.read_fraction,
    )
    schedule = build_schedule(stress, build_streams(stress))
    report.digest = schedule_digest(schedule)

    oracle = SequentialOracle()
    dead_ranges: Tuple[Tuple[Any, Any], ...] = ()

    for batch_index, batch in enumerate(schedule):
        if config.kill_at is not None and batch_index == config.kill_at:
            store.mark_down(config.kill_shard_id)
            dead_ranges = store.shard_map.key_ranges((config.kill_shard_id,))
        if config.revive_at is not None and batch_index == config.revive_at:
            store.revive(config.kill_shard_id)
            dead_ranges = ()

        results: List[Optional[_Issued]] = [None] * len(batch)

        def worker(slot: int, op: ClientOp) -> None:
            results[slot] = _run_op(
                clients[op.thread], op, timeout=config.op_timeout
            )

        threads = [
            threading.Thread(
                target=worker, args=(slot, op), name=f"chaos-op-{slot}"
            )
            for slot, op in enumerate(batch)
        ]
        for thread in threads:
            thread.start()
        join_deadline = Deadline.after(config.batch_timeout)
        for thread in threads:
            thread.join(timeout=join_deadline.wait_budget())
            if thread.is_alive():
                report.hangs += 1
                report.violations.append(
                    f"batch {batch_index}: {thread.name} still alive after "
                    f"{config.batch_timeout}s — an operation hung"
                )
        if report.hangs:
            break  # the run is wedged; report what we have

        report.batches += 1
        executed: List[Tuple[ClientOp, Tuple]] = []
        for issued in results:
            if issued is None:
                continue
            report.ops_issued += 1
            issued = _resolve_ambiguous(issued, server, report)
            tag = issued.outcome[0]
            report.outcomes[tag] = report.outcomes.get(tag, 0) + 1
            if tag == "crash":
                report.crashes += 1
                report.violations.append(
                    f"batch {batch_index}: {issued.op.describe()} crashed "
                    f"untyped: {issued.outcome[1]}"
                )
            budget_cap = config.op_timeout + config.grace
            if issued.elapsed > budget_cap:
                report.deadline_overruns += 1
                report.violations.append(
                    f"batch {batch_index}: {issued.op.describe()} took "
                    f"{issued.elapsed:.3f}s, over its {budget_cap:.3f}s "
                    "budget+grace"
                )
            if dead_ranges and tag in ("ok", "hit", "miss", "scan", "count"):
                lo, hi = dead_ranges[0]
                if not (lo <= issued.op.key < hi):
                    report.post_kill_successes += 1
            # The harness's witness search only knows the base skip
            # vocabulary; map the cluster-specific not-applied refusals
            # onto it (the report keeps the precise tag above).
            witness_outcome = (
                ("timeout",)
                if tag in ("unavailable", "circuit_open", "partial", "network")
                else issued.outcome
            )
            executed.append((issued.op, witness_outcome))

        advanced, problem = check_batch(oracle, executed)
        if problem is not None:
            report.violations.append(f"batch {batch_index}: {problem}")
        else:
            assert advanced is not None
            oracle = advanced

    # Final audit: surviving shards must hold exactly the oracle's keys.
    for shard_range in store.shard_map.ranges():
        if store.state_of(shard_range.shard_id) == "down":
            continue
        actual = [
            record.key
            for record in store.shards[shard_range.shard_id].range(
                shard_range.lo, config.key_space
            )
            if shard_range.shard_id == store.shard_map.shard_for(record.key)
        ]
        expected = [
            key
            for key in oracle.keys()
            if store.shard_map.shard_for(key) == shard_range.shard_id
        ]
        if actual != expected:
            report.violations.append(
                f"final contents of {shard_range.describe()} diverge from "
                f"the oracle: {len(actual)} vs {len(expected)} keys "
                "(silent loss or duplication)"
            )

    # Aggregate observability counters.
    server_stats = store.stats()
    report.dedup_replays = server.dedup_replays
    for client in clients:
        stats = client.client_stats()
        report.retries += stats["retries"]
        report.breaker_opens += sum(
            breaker["opens"] for breaker in stats["breakers"].values()
        )
        for kind, count in client.channel.plan.describe()["injected"].items():  # type: ignore[attr-defined]
            report.faults[kind] = report.faults.get(kind, 0) + count
        client.close()
    del server_stats
    store.close()
    report.elapsed = time.monotonic() - started
    return report


#: The default sweep: one profile per fault family plus a combined
#: storm and a kill-shard degradation drill.
SWEEP_PROFILES: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("clean", {}),
    ("drops", {"drop_rate": 0.15, "drop_after_rate": 0.1}),
    ("delays", {"delay_rate": 0.2, "fault_delay": 0.02}),
    ("duplicates", {"duplicate_rate": 0.2}),
    ("reorders", {"reorder_rate": 0.2}),
    ("truncates", {"truncate_rate": 0.15}),
    (
        "storm",
        {
            "drop_rate": 0.08,
            "drop_after_rate": 0.08,
            "delay_rate": 0.08,
            "duplicate_rate": 0.08,
            "reorder_rate": 0.08,
            "truncate_rate": 0.08,
        },
    ),
    (
        "kill-shard",
        {
            "drop_rate": 0.05,
            "drop_after_rate": 0.05,
            "kill_at": 4,
            "kill_shard_id": 1,
        },
    ),
)


def run_sweep(
    seed: int = 0,
    total_ops: int = 120,
    threads: int = 3,
    profiles: Optional[Tuple[Tuple[str, Dict[str, Any]], ...]] = None,
) -> List[Tuple[str, ChaosReport]]:
    """Run every profile in the sweep; returns ``(name, report)`` pairs."""
    reports: List[Tuple[str, ChaosReport]] = []
    for name, overrides in profiles if profiles is not None else SWEEP_PROFILES:
        config = ChaosConfig(
            seed=seed, total_ops=total_ops, threads=threads, **overrides
        )
        reports.append((name, run_chaos(config)))
    return reports
